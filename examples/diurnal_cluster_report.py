#!/usr/bin/env python
"""Day/night cluster demand, analyzed with the one-call report API.

Scenario: a 16-core service cluster whose job stream follows a diurnal
demand cycle (calm nights, overloaded days).  The example generates the
trace, asks :func:`repro.analysis.scheduler_report` for the full
comparison (workload characterization, scheduler-vs-OPT-bound table,
Gantt of S's schedule), then answers a capacity-planning question with
the augmentation helpers: *how much faster must the cluster be for EDF
to match what S already earns at speed 1?*

Run:  python examples/diurnal_cluster_report.py
"""

from repro.analysis import (
    min_speed_for_fraction,
    opt_bound,
    scheduler_report,
)
from repro.baselines import GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.sim import Simulator
from repro.workloads.traces import DiurnalConfig, generate_diurnal_trace


def main() -> None:
    m = 16
    specs = generate_diurnal_trace(
        DiurnalConfig(
            n_jobs=120,
            m=m,
            base_load=1.5,
            swing=0.8,
            day_length=768,
            profit="heavy_tailed",
            seed=21,
        )
    )

    print(
        scheduler_report(
            specs,
            m,
            {
                "S(eps=1)": lambda: SNSScheduler(epsilon=1.0),
                "EDF": GlobalEDF,
                "GreedyDensity": GreedyDensity,
            },
            bound_method="lp",
            gantt_for="S(eps=1)",
            gantt_width=72,
        )
    )

    # Capacity planning: how much faster must the cluster be for each
    # scheduler to earn 85% of the clairvoyant bound?  (The empirical
    # version of the corollaries' s-speed c-competitive statements.)
    bound = opt_bound(specs, m, method="lp")
    print()
    print("Speed needed to reach 85% of the OPT bound (speed-1 bound):")
    for name, factory in [
        ("S(eps=1)", lambda: SNSScheduler(epsilon=1.0)),
        ("EDF", GlobalEDF),
        ("GreedyDensity", GreedyDensity),
    ]:
        needed = min_speed_for_fraction(
            specs, m, factory, 0.85, bound=bound, speed_hi=4.0
        )
        label = f"> 4x" if needed is None else f"~{needed:.2f}x"
        print(f"  {name:14s} {label}")
    print(
        "\nOn this benign trace (slack ~2x) the work-conserving baselines"
        "\nlead at speed 1 -- the paper's guarantee is about worst cases;"
        "\nsee examples/cluster_batch_scheduling.py for the trap streams"
        "\nwhere the ordering flips dramatically."
    )


if __name__ == "__main__":
    main()
