#!/usr/bin/env python
"""Sharded serving: route, migrate, kill and recover a cluster.

Walks the :mod:`repro.cluster` subsystem end to end on one overloaded
stream:

1. route the same trace through a 4-shard cluster under each router and
   compare profit against the single monolithic service;
2. turn migration on under a deliberately skewed router and watch the
   queue balancer rescue shed jobs from the hot shard;
3. kill a shard mid-stream and recover it from its latest JSON
   checkpoint plus submission-log replay -- finishing bit-identically
   to the fault-free run.

Run:  python examples/sharded_cluster.py
"""

from repro.analysis import format_table
from repro.cluster import (
    ClusterService,
    FaultInjector,
    QueueBalancer,
    Router,
    ShardConfig,
    make_router,
)
from repro.cluster.router import ROUTERS
from repro.core import SNSScheduler
from repro.service import SchedulingService
from repro.workloads import WorkloadConfig, generate_workload

M, K = 16, 4
CONFIG = ShardConfig(
    m=1,
    scheduler="sns",
    scheduler_kwargs={"epsilon": 1.0},
    capacity=8,
    max_in_flight=8,
)


class HotSpotRouter(Router):
    """Worst-case placement: every job to shard 0."""

    name = "hotspot"
    needs_stats = False

    def route(self, spec, stats):
        return 0


def main() -> None:
    specs = generate_workload(
        WorkloadConfig(n_jobs=400, m=M, load=3.0, epsilon=1.0, seed=7)
    )

    # -- 1. routers vs the monolithic service ---------------------------
    single = SchedulingService(
        M,
        SNSScheduler(epsilon=1.0),
        capacity=CONFIG.capacity * K,
        max_in_flight=CONFIG.max_in_flight * K,
    ).run_stream(specs)
    rows = [["single", 1, single.num_shed, round(single.total_profit, 2)]]
    for name in sorted(ROUTERS):
        result = ClusterService(
            M, K, config=CONFIG, router=make_router(name), mode="inprocess"
        ).run_stream(specs)
        rows.append(
            [name, K, result.num_shed, round(result.total_profit, 2)]
        )
    print("Routers vs single service (same stream):")
    print(format_table(["router", "shards", "shed", "profit"], rows))

    # -- 2. migration rescues a hot shard -------------------------------
    print("\nMigration under a hotspot router (everything to shard 0):")
    for migrate in (False, True):
        cluster = ClusterService(
            M,
            K,
            config=CONFIG,
            router=HotSpotRouter(),
            mode="inprocess",
            migration=QueueBalancer() if migrate else None,
            migrate_every=2 if migrate else 0,
        )
        result = cluster.run_stream(specs)
        moved = cluster.cluster_metrics.values().get("migrations_total", 0)
        print(
            f"  migration={'on ' if migrate else 'off'}  "
            f"shed={result.num_shed:3d}  migrated={int(moved):3d}  "
            f"profit={result.total_profit:.2f}"
        )

    # -- 3. kill shard 1 mid-stream, recover, lose nothing --------------
    print("\nFault injection (kill shard 1 mid-stream, process mode):")
    mid = sorted(s.arrival for s in specs)[len(specs) // 2]

    def run(injector):
        return ClusterService(
            M,
            K,
            config=CONFIG,
            router="consistent-hash",
            mode="process",
            fault_injector=injector,
            checkpoint_every=64 if injector else None,
        ).run_stream(specs)

    clean = run(None)
    injector = FaultInjector().add(shard=1, at=mid)
    faulted = run(injector)
    event = faulted.recoveries[0]
    print(
        f"  killed shard {event.shard} at t={event.time}, restored from "
        f"checkpoint t={event.checkpoint_time}, replayed "
        f"{event.replayed} submissions in {event.wall_seconds * 1e3:.1f} ms"
    )
    print(
        f"  fault-free profit={clean.total_profit:.4f}  "
        f"faulted profit={faulted.total_profit:.4f}"
    )
    identical = (
        faulted.records == clean.records
        and faulted.total_profit == clean.total_profit
    )
    print(f"  bit-identical to fault-free run: {identical}")


if __name__ == "__main__":
    main()
