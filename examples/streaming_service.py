#!/usr/bin/env python
"""Serving mode: an online scheduling service under a diurnal stream.

Streams a day-night demand cycle through the :class:`SchedulingService`
-- the long-running counterpart to the batch simulator.  A bounded
ingest queue with density-aware shedding handles the overload peaks,
telemetry samples the queue and machine as simulated time advances, and
halfway through the run the whole service is checkpointed to JSON,
thrown away, restored, and finishes bit-identically -- the
kill-and-restore property the service guarantees.

Run:  python examples/streaming_service.py
"""

import json

from repro.analysis import format_table
from repro.core import SNSScheduler
from repro.service import (
    SchedulingService,
    SubmissionLog,
    drive,
    make_shed_policy,
    service_from_dict,
    service_to_dict,
)
from repro.workloads.traces import DiurnalConfig, generate_diurnal_trace, phase_of


def make_service(recorder=None):
    """One fixed service configuration, reused for every run below."""
    return SchedulingService(
        m=8,
        scheduler=SNSScheduler(epsilon=1.0),
        capacity=16,
        shed_policy=make_shed_policy("reject-lowest-density"),
        max_in_flight=24,
        sample_every=200,
        recorder=recorder,
    )


def main() -> None:
    config = DiurnalConfig(
        n_jobs=400, m=8, base_load=2.0, swing=0.9, day_length=600, seed=7
    )
    specs = sorted(
        generate_diurnal_trace(config), key=lambda s: (s.arrival, s.job_id)
    )
    print(
        f"Diurnal stream: {len(specs)} jobs, m={config.m}, "
        f"load {config.base_load * (1 - config.swing):.1f}x to "
        f"{config.base_load * (1 + config.swing):.1f}x over "
        f"{config.day_length}-step days"
    )

    # ------------------------------------------------------------------
    # 1. Uninterrupted run, recording every submission for replay.
    # ------------------------------------------------------------------
    log = SubmissionLog()
    baseline = make_service(log).run_stream(specs)

    peak = sum(
        1 for r in baseline.shed
        if phase_of(next(s for s in specs if s.job_id == r.job_id),
                    config.day_length) == "peak"
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["completed", int(baseline.result.counters.completions)],
                ["expired", int(baseline.result.counters.expiries)],
                ["shed by service", baseline.num_shed],
                ["...of which at peak", peak],
                ["profit earned", f"{baseline.total_profit:.2f}"],
                ["profit shed (bound)", f"{baseline.profit_shed:.2f}"],
                ["telemetry samples", len(baseline.metrics.samples)],
            ],
            title="Serving a full diurnal cycle",
        )
    )

    # ------------------------------------------------------------------
    # 2. Kill-and-restore at mid-stream: snapshot -> JSON -> new process.
    # ------------------------------------------------------------------
    checkpoint_t = specs[len(specs) // 2].arrival
    first = make_service()
    first.start()
    resume = drive(first, log, stop_time=checkpoint_t)
    if first.now < checkpoint_t:
        first.advance_to(checkpoint_t)
    blob = json.dumps(service_to_dict(first))
    del first  # simulate the process dying here

    restored = service_from_dict(json.loads(blob), SNSScheduler(epsilon=1.0))
    drive(restored, log, start_index=resume)
    result = restored.finish()

    print(f"\nCheckpoint at t={checkpoint_t}: {len(blob)} bytes of JSON")
    print(f"restored run profit:      {result.total_profit:.6f}")
    print(f"uninterrupted run profit: {baseline.total_profit:.6f}")
    exact = (
        result.total_profit == baseline.total_profit
        and result.result.records == baseline.result.records
    )
    print(f"bit-identical after restore: {exact}")

    # ------------------------------------------------------------------
    # 3. What telemetry saw at the last sample.
    # ------------------------------------------------------------------
    final = baseline.metrics.samples[-1]
    print(
        "\nfinal telemetry sample: "
        f"t={final['t']} released={final['released_total']:.0f} "
        f"shed={final['shed_total']:.0f} "
        f"utilization={final['utilization']:.2f} "
        f"profit_rate={final['profit_rate']:.3f}"
    )
    print("done")


if __name__ == "__main__":
    main()
