#!/usr/bin/env python
"""Cluster batch scheduling under overload with SLA deadlines.

Scenario: a 32-core analytics cluster receives parallel query plans
(fork-join / series-parallel DAGs) from many tenants.  Each job carries
a payment (profit) collected only if it finishes within its SLA
deadline.  Demand bursts to 4x capacity, so the scheduler must *choose*
which jobs to serve -- exactly the throughput problem the paper solves.

The example compares the paper's admission-controlled scheduler S
against EDF and greedy-density across a demand sweep, and shows the
"trap" regime (dense-but-doomed jobs) where admission control is the
whole game.

Run:  python examples/cluster_batch_scheduling.py
"""

import numpy as np

from repro import SNSScheduler, Simulator
from repro.analysis import format_table, interval_lp_upper_bound
from repro.baselines import GlobalEDF, GreedyDensity, SNSNoAdmission
from repro.workloads import WorkloadConfig, admission_trap, generate_workload


def demand_sweep() -> None:
    m = 32
    print(f"== Demand sweep on a {m}-core cluster ==")
    rows = []
    for load in (0.5, 1.0, 2.0, 4.0):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=120,
                m=m,
                load=load,
                family="mixed",
                epsilon=1.0,
                deadline_policy="slack",
                slack_range=(1.0, 2.0),
                profit="heavy_tailed",  # a few jobs pay far more
                seed=7,
            )
        )
        bound = interval_lp_upper_bound(specs, m)
        row = [f"{load:.1f}x"]
        for scheduler in (
            SNSScheduler(epsilon=1.0),
            GlobalEDF(),
            GreedyDensity(),
        ):
            result = Simulator(m=m, scheduler=scheduler).run(list(specs))
            row.append(f"{result.total_profit / bound:.3f}")
        rows.append(row)
    print(
        format_table(
            ["demand", "S(eps=1)", "EDF", "GreedyDensity"],
            rows,
            title="Revenue as fraction of the clairvoyant bound",
        )
    )


def trap_regime() -> None:
    m = 32
    print("\n== Trap regime: dense jobs with impossible SLAs ==")
    print("(a buggy tenant submits huge-payment jobs whose SLAs cannot be")
    print(" met; a scheduler without admission control chases them)\n")
    specs = admission_trap(m, n_pairs=40, block_steps=16, trap_profit=25.0)
    payload_profit = sum(
        sp.profit for sp in specs if sp.structure.name == "payload"
    )
    rows = []
    for name, scheduler in [
        ("S (paper)", SNSScheduler(epsilon=1.0)),
        ("S without admission", SNSNoAdmission(epsilon=1.0)),
        ("Global EDF", GlobalEDF()),
    ]:
        result = Simulator(m=m, scheduler=scheduler).run(list(specs))
        rows.append(
            [
                name,
                f"{result.total_profit:.1f}",
                f"{result.total_profit / payload_profit:.2f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "revenue", "fraction of feasible"],
            rows,
            title=f"Feasible revenue on this stream: {payload_profit:.0f}",
        )
    )


if __name__ == "__main__":
    demand_sweep()
    trap_regime()
