#!/usr/bin/env python
"""Render-farm scheduling with decaying payouts (general profit, §5).

Scenario: a render farm executes scene-rendering jobs, each a
recursive fork-join DAG (tiles render in parallel, compositing joins
them).  Clients pay a full rate for delivery within the contractual
window and progressively less afterwards -- a non-increasing profit
function per job, flat up to the Theorem 3 knee.

The example runs the paper's Section 5 scheduler (which *assigns* each
arriving job a deadline and a set of execution slots) against a
work-conserving greedy baseline, across three payout-decay shapes.

Run:  python examples/video_rendering_profit.py
"""

import numpy as np

from repro import GeneralProfitScheduler, Simulator
from repro.analysis import format_table, interval_lp_upper_bound
from repro.baselines import GreedyDensity
from repro.dag import recursive_fork_join
from repro.profit import FlatThenExponential, FlatThenLinear, Staircase
from repro.sim import JobSpec
from repro.workloads.deadlines import sequential_bound


def make_jobs(m: int, decay: str, n_jobs: int, seed: int) -> list[JobSpec]:
    rng = np.random.default_rng(seed)
    specs = []
    t = 0.0
    for i in range(n_jobs):
        depth = int(rng.integers(2, 5))
        dag = recursive_fork_join(depth, branching=2, node_work=2.0)
        knee = 2.0 * sequential_bound(dag, m)  # (1+eps) slack with eps=1
        rate = float(rng.uniform(5.0, 20.0))
        if decay == "linear":
            fn = FlatThenLinear(rate, knee, decay_span=2 * knee)
        elif decay == "exponential":
            fn = FlatThenExponential(rate, knee, tau=knee)
        else:  # contractual penalty tiers
            fn = Staircase(
                rate, [(knee, 0.6 * rate), (2 * knee, 0.25 * rate), (4 * knee, 0.0)]
            )
        t += rng.exponential(knee / 8)  # brisk arrivals: contention
        specs.append(JobSpec(i, dag, arrival=int(t), profit_fn=fn))
    return specs


def main() -> None:
    m = 8
    n_jobs = 40
    print(f"== Render farm: {n_jobs} scenes on {m} cores, decaying payouts ==\n")
    rows = []
    for decay in ("linear", "exponential", "staircase"):
        specs = make_jobs(m, decay, n_jobs, seed=3)
        bound = interval_lp_upper_bound(specs, m)
        horizon = max(sp.arrival for sp in specs) * 2 + 5000

        s_result = Simulator(
            m=m, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run(list(specs))
        g_result = Simulator(
            m=m, scheduler=GreedyDensity(), horizon=horizon
        ).run(list(specs))

        rows.append(
            [
                decay,
                f"{bound:.0f}",
                f"{s_result.total_profit:.0f}",
                f"{s_result.total_profit / bound:.3f}",
                f"{g_result.total_profit:.0f}",
                sum(1 for r in s_result.records.values() if r.completed),
            ]
        )
    print(
        format_table(
            ["payout decay", "OPT bound", "S §5", "S/bound", "greedy", "S done"],
            rows,
            title="Revenue by payout-decay shape",
        )
    )
    print(
        "\nThe Section 5 scheduler trades some easy revenue for its"
        "\nguarantee: it reserves (1+delta)x_i execution slots per accepted"
        "\nscene, so accepted scenes deliver at their locked-in payout even"
        "\nwhen later, richer scenes arrive."
    )


if __name__ == "__main__":
    main()
