#!/usr/bin/env python
"""Quickstart: schedule a random DAG workload with the paper's algorithm.

Generates a mixed workload of parallel DAG jobs with deadlines that
satisfy Theorem 2's slack assumption, runs the paper's scheduler S and
Global EDF side by side, and compares both against the LP upper bound
on the clairvoyant optimum.

Run:  python examples/quickstart.py
"""

from repro import (
    SNSScheduler,
    Simulator,
    WorkloadConfig,
    generate_workload,
    summarize,
)
from repro.analysis import format_table, interval_lp_upper_bound
from repro.baselines import GlobalEDF


def main() -> None:
    m = 8
    epsilon = 1.0

    # 1. A workload: 60 DAG jobs (mixed shapes), 2x overload, deadlines
    #    with slack (1 + epsilon) as Theorem 2 assumes.
    config = WorkloadConfig(
        n_jobs=60,
        m=m,
        load=2.0,
        family="mixed",
        epsilon=epsilon,
        deadline_policy="slack",
        profit="heavy_tailed",
        seed=42,
    )
    specs = generate_workload(config)
    print(f"workload: {len(specs)} jobs on m={m} processors, ~2x overload")

    # 2. An upper bound on what a clairvoyant optimal scheduler could earn.
    bound = interval_lp_upper_bound(specs, m)
    print(f"OPT upper bound (LP relaxation): {bound:.2f}\n")

    # 3. Run the paper's scheduler S and EDF on identical copies.
    rows = []
    for name, scheduler in [
        (f"S(eps={epsilon})", SNSScheduler(epsilon=epsilon)),
        ("Global EDF", GlobalEDF()),
    ]:
        result = Simulator(m=m, scheduler=scheduler).run(list(specs))
        s = summarize(result)
        rows.append(
            [
                name,
                f"{s.total_profit:.2f}",
                f"{s.total_profit / bound:.3f}",
                f"{s.on_time}/{s.jobs}",
                f"{s.utilization:.2f}",
                s.preemptions,
            ]
        )

    print(
        format_table(
            ["scheduler", "profit", "vs bound", "on-time", "util", "preempts"],
            rows,
            title="Throughput under 2x overload",
        )
    )
    print(
        "\nS admits selectively (conditions 1+2 of the paper) and therefore"
        "\nnever wastes the machine on doomed jobs; EDF is work-conserving"
        "\nbut deadline-blind to profit. Try load=8.0 or the admission_trap"
        "\nworkload to see the gap widen."
    )


if __name__ == "__main__":
    main()
