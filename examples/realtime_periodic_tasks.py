#!/usr/bin/env python
"""Recurring real-time DAG tasks, with an ASCII Gantt chart.

Scenario: an embedded vision pipeline runs recurring parallel tasks
(sensor fusion, detection, tracking) as periodic DAG jobs on an 8-core
board -- the workload model of the real-time literature the paper
builds on (federated / global scheduling of DAG tasks).  Every instance
must finish by its period; we sweep the task-set utilization and
compare the paper's scheduler S with online federated scheduling and
the fully non-clairvoyant doubling variant, then draw the schedule S
produces at moderate utilization.

Run:  python examples/realtime_periodic_tasks.py
"""

import numpy as np

from repro import SNSScheduler, Simulator
from repro.analysis import format_table, render_gantt, render_utilization
from repro.baselines import DoublingNonClairvoyant, FederatedScheduler
from repro.dag import fork_join, recursive_fork_join
from repro.workloads import harmonic_taskset, taskset_utilization, unroll_periodic

SCHEDULERS = {
    "S(eps=0.5)": lambda: SNSScheduler(epsilon=0.5),
    "Federated": FederatedScheduler,
    "NC-doubling": lambda: DoublingNonClairvoyant(epsilon=0.5),
}


def pipeline_structures():
    """Three task shapes of the vision pipeline."""
    return [
        fork_join(8, node_work=2.0, name="fusion"),
        recursive_fork_join(3, branching=2, node_work=1.0, name="detect"),
        fork_join(4, node_work=4.0, name="track"),
    ]


def utilization_sweep(m: int = 8) -> None:
    print(f"== Utilization sweep: on-time instance fraction (m={m}) ==\n")
    rows = []
    for target in (0.3, 0.5, 0.7, 0.9):
        tasks = harmonic_taskset(
            pipeline_structures() * 2, base_period=48, m=m,
            target_utilization=target,
        )
        specs = unroll_periodic(tasks, horizon=1024)
        row = [f"{taskset_utilization(tasks) / m:.2f}"]
        for factory in SCHEDULERS.values():
            result = Simulator(m=m, scheduler=factory()).run(list(specs))
            row.append(f"{result.completed_on_time / len(specs):.3f}")
        rows.append(row)
    print(
        format_table(
            ["utilization/m"] + list(SCHEDULERS),
            rows,
            title="On-time fraction of periodic DAG instances",
        )
    )


def gantt_demo(m: int = 8) -> None:
    print("\n== The schedule S builds (one hyperperiod) ==\n")
    # Implicit deadlines (D = period) get tight as utilization rises;
    # Theorem 2 needs D >= (1+eps)((W-L)/m + L), so the drawing uses a
    # utilization where every task keeps that slack.
    tasks = harmonic_taskset(
        pipeline_structures(), base_period=48, m=m, target_utilization=0.35
    )
    specs = unroll_periodic(tasks, horizon=256)
    result = Simulator(
        m=m, scheduler=SNSScheduler(epsilon=0.5), record_trace=True
    ).run(specs)
    print(render_gantt(result, width=72, max_jobs=16))
    print(render_utilization(result, width=72))
    print(
        "\nGlyph intensity = fraction of the machine a job holds;"
        " '|' marks a met deadline bin, 'x' an expiry."
        "\nAt high utilization the implicit deadlines violate Theorem 2's"
        "\nslack assumption and S (rightly) declines those instances --"
        "\nthe utilization sweep above quantifies the resulting misses."
    )


if __name__ == "__main__":
    utilization_sweep()
    gantt_demo()
