#!/usr/bin/env python
"""Reproduce the paper's Section 4 lower-bound constructions (Figures 1-2).

Figure 1: a chain of length W/m in parallel with a fully parallel block.
A semi-non-clairvoyant scheduler cannot tell chain nodes from block
nodes; an unlucky pick order drains the block first and needs
(W-L)/m + L time, while the clairvoyant order finishes in W/m.  The
separation factor is exactly 2 - 1/m (Theorem 1's speed lower bound).

Figure 2: a chain of L - eps then a block.  Even a clairvoyant scheduler
needs ~ (W-L)/m + L, so deadlines below that bound are unmeetable by
anyone -- the justification for Theorem 2's slack assumption.

Run:  python examples/adversarial_lower_bound.py
"""

from repro.analysis import format_table
from repro.baselines import FIFOScheduler
from repro.dag import chain_then_block
from repro.sim import (
    AdversarialPicker,
    CriticalPathPicker,
    JobSpec,
    RandomPicker,
    Simulator,
)
from repro.workloads import fig1_jobs


def completion_time(m, specs, picker, speed=1.0):
    result = Simulator(
        m=m, scheduler=FIFOScheduler(), picker=picker, speed=speed
    ).run(list(specs))
    (record,) = result.records.values()
    return record.completion_time


def figure1() -> None:
    print("== Figure 1: the cost of semi-non-clairvoyance ==\n")
    rows = []
    for m in (2, 4, 8, 16):
        specs = fig1_jobs(m, deadline_factor=10.0)
        t_clair = completion_time(m, specs, CriticalPathPicker())
        t_rand = completion_time(m, specs, RandomPicker(0))
        t_adv = completion_time(m, specs, AdversarialPicker())
        rows.append(
            [
                m,
                t_clair,
                t_rand,
                t_adv,
                f"{t_adv / t_clair:.4f}",
                f"{2 - 1 / m:.4f}",
            ]
        )
    print(
        format_table(
            ["m", "clairvoyant", "random", "adversarial", "ratio", "2-1/m"],
            rows,
            title="Completion time of the Figure 1 DAG (deadline = W/m)",
        )
    )
    print(
        "\nThe adversarial/clairvoyant ratio matches Theorem 1's 2 - 1/m"
        "\nexactly: no semi-non-clairvoyant scheduler can be O(1)-"
        "\ncompetitive below that speed augmentation.\n"
    )


def figure2() -> None:
    print("== Figure 2: deadlines below (W-L)/m + L are hopeless ==\n")
    m = 8
    span, total = 64.0, 512.0
    rows = []
    for eps in (16.0, 8.0, 4.0, 2.0, 1.0):
        dag = chain_then_block(total, span, eps)
        bound = (total - span) / m + span
        spec = JobSpec(0, dag, arrival=0, deadline=10 ** 9, profit=1.0)
        best = min(
            completion_time(m, [spec], picker)
            for picker in (CriticalPathPicker(), AdversarialPicker())
        )
        rows.append([eps, f"{bound:.0f}", best, f"{best / bound:.4f}"])
    print(
        format_table(
            ["node size", "(W-L)/m+L", "best completion", "ratio"],
            rows,
            title=f"Clairvoyant completion of the Figure 2 DAG (m={m})",
        )
    )
    print(
        "\nAs node size shrinks the best possible completion time climbs"
        "\nto the bound: assuming D >= (1+eps)((W-L)/m + L) (Theorem 2) is"
        "\nthe weakest slack assumption that leaves any algorithm a chance."
    )


if __name__ == "__main__":
    figure1()
    print()
    figure2()
