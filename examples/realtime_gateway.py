#!/usr/bin/env python
"""Real-time gateway: a 30-second flash crowd against an elastic cluster.

Drives the :mod:`repro.gateway` front end through a full flash-crowd
cycle: open-loop traffic at 1.2x saturation with a mid-trace arrival
spike, served by an elastic cluster that starts at one shard and lets
the autoscaler ride the crowd up to four and back down.  The run is
paced by a :class:`VirtualClock`, so the "30 seconds" of wall time --
600 ticks at 50 ms -- replay at CPU speed and the whole demo finishes
in about a second.

Along the way the gateway publishes KPI snapshots to a feed; the same
feed the ``repro-gateway`` CLI serves over SSE is consumed here to
print an autoscaler timeline.  The demo closes by re-running the exact
configuration and checking the two fingerprints match -- the
determinism contract that makes a *real-time* system regression-
testable.

Run:  python examples/realtime_gateway.py
"""

import json
import http.client

from repro.analysis import format_table
from repro.cluster import ElasticCluster, ShardConfig
from repro.gateway import (
    Autoscaler,
    Gateway,
    KpiFeed,
    KpiServer,
    LoadConfig,
    LoadGenerator,
    VirtualClock,
)

#: 30 wall seconds at 50 ms per tick.
TICKS = 600
TICK_SECONDS = 0.05
STEPS_PER_TICK = 10


def build(feed=None):
    """One fixed gateway configuration, rebuilt for every run below."""
    load = LoadGenerator(
        LoadConfig(
            n_jobs=1200,
            m=8,
            load=1.2,
            seed=7,
            process="flash-crowd",
            spike_fraction=0.25,
        )
    )
    cluster = ElasticCluster(
        m=8,
        k_max=4,
        k_initial=1,
        config=ShardConfig(
            m=1, scheduler="sns", capacity=64, max_in_flight=8
        ),
        router="least-loaded",
    )
    return Gateway(
        cluster,
        load,
        clock=VirtualClock(),
        tick_seconds=TICK_SECONDS,
        steps_per_tick=STEPS_PER_TICK,
        autoscaler=Autoscaler(k_min=1, k_max=4),
        feed=feed,
        kpi_every=5,
    )


def main() -> None:
    gateway = build(feed := KpiFeed())
    print(
        f"Flash crowd: {len(gateway.load)} jobs at 1.2x saturation, "
        f"spike of {gateway.load.config.spike_fraction:.0%} extra "
        "arrivals mid-trace"
    )
    print(
        f"Gateway: {TICKS} ticks x {TICK_SECONDS * 1e3:.0f} ms "
        f"({TICKS * TICK_SECONDS:.0f} s of wall time, virtual clock), "
        f"{STEPS_PER_TICK} simulated steps per tick"
    )

    # ------------------------------------------------------------------
    # 1. The run, with the KPI history served the way a dashboard
    #    would read it: over HTTP from the feed the loop publishes to.
    # ------------------------------------------------------------------
    with KpiServer(feed) as server:
        result = gateway.run(max_ticks=TICKS)
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.request("GET", "/kpi.jsonl")
        served = [
            json.loads(line)
            for line in conn.getresponse().read().decode().splitlines()
        ]

    # ------------------------------------------------------------------
    # 2. Autoscaler timeline, sampled from the served KPI history.
    # ------------------------------------------------------------------
    stride = max(1, len(served) // 10)
    rows = [
        [
            snap["tick"],
            snap["active_shards"],
            snap["queue_depth"],
            f"{snap['arrival_rate']:.2f}",
            f"{snap['shed_fraction']:.3f}",
            f"{snap['profit_total']:.1f}",
        ]
        for snap in served[::stride]
        if not snap.get("final")
    ]
    print(
        format_table(
            ["tick", "shards", "depth", "arrivals/step", "shed", "profit"],
            rows,
            title="Autoscaler timeline",
        )
    )
    path = " -> ".join(["1"] + [str(e.k_after) for e in result.scale_events])
    print(f"scale path: {path}")

    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [
                ["ticks", summary["ticks"]],
                ["jobs generated", summary["generated"]],
                ["delivered to cluster", summary["delivered"]],
                ["shed (front door)", summary["gateway_shed"]],
                ["shed (scheduler)", summary["shed"]],
                ["completed", summary["completed"]],
                ["profit", f"{summary['total_profit']:.2f}"],
                ["admission p99 (steps)",
                 f"{summary['admission_latency_p99'] or 0.0:.1f}"],
                ["kpi snapshots served", len(served)],
            ],
            title="Run summary",
        )
    )

    # ------------------------------------------------------------------
    # 3. Same seed, same clock => same run, bit for bit.
    # ------------------------------------------------------------------
    repeat = build().run(max_ticks=TICKS)
    print(f"\nfingerprint: {result.fingerprint()[:16]}...")
    print(f"fingerprint match: {repeat.fingerprint() == result.fingerprint()}")
    print("done")


if __name__ == "__main__":
    main()
