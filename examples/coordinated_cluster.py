#!/usr/bin/env python
"""Cluster-wide band-aware scheduling on a flash-crowd trace.

Sharding a 16-machine service into 4 pools buys process-level
parallelism but fragments the paper's band condition: each shard
admits and parks against its own quarter-size band capacity, blind to
slack elsewhere.  This example measures what that costs on a seeded
flash-crowd stream and how much the cluster coordinator
(:mod:`repro.cluster.coordinator`, docs/SCHEDULING.md) recovers:

1. serve the trace on the monolithic k=1 service (the profit ceiling);
2. serve it on an uncoordinated k=4 cluster (the sharding profit gap);
3. attach the coordinator -- ledger-fed band-aware routing plus
   density-aware steals of parked/starved jobs -- and close the gap;
4. let a candidate trial (Albers--Hellwig parallel schedules) pick the
   best configuration online from a short mirrored trial window.

Run:  python examples/coordinated_cluster.py
"""

from repro.analysis import format_table
from repro.cluster import (
    CandidateTrial,
    ClusterService,
    ShardConfig,
    coordinate,
)
from repro.gateway import LoadConfig, LoadGenerator

M, K = 16, 4
CONFIG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

#: a Poisson background with 30% of all jobs landing in one spike --
#: the regime where shard-local band views are most wrong
TRAFFIC = LoadConfig(
    n_jobs=1200,
    m=M,
    load=3.0,
    family="mixed",
    epsilon=1.0,
    seed=11,
    process="flash-crowd",
    spike_fraction=0.3,
)


def build(k: int, coordinated: bool = False) -> ClusterService:
    cluster = ClusterService(
        M,
        k,
        config=CONFIG,
        router="band-aware" if coordinated else "consistent-hash",
    )
    if coordinated:
        coordinate(cluster)
    return cluster


def main() -> None:
    specs = LoadGenerator(TRAFFIC).specs()
    print(
        f"Flash crowd: {len(specs)} jobs on m={M}, "
        f"{TRAFFIC.spike_fraction:.0%} of them in one spike\n"
    )

    runs = [
        ("monolith k=1", build(1)),
        ("sharded  k=4", build(K)),
        ("coordinated k=4", build(K, coordinated=True)),
    ]
    rows = []
    baseline = None
    for name, cluster in runs:
        result = cluster.run_stream(specs)
        if baseline is None:
            baseline = result.total_profit
        counters = cluster.cluster_metrics.values()
        rows.append(
            [
                name,
                f"{result.total_profit:.1f}",
                f"{result.total_profit / baseline:.1%}",
                str(int(counters.get("steals_total", 0))),
                str(int(counters.get("steals_displaced_total", 0))),
            ]
        )
    print("Coordinated cluster vs the sharding profit gap")
    print(
        format_table(
            ["config", "profit", "% of k=1", "steals", "displaced"], rows
        )
    )

    print("\nCandidate trial: commit to the best schedule online")
    trial = CandidateTrial(
        [
            ("sharded-k2", lambda: build(2)),
            ("sharded-k4", lambda: build(K)),
            ("coordinated-k4", lambda: build(K, coordinated=True)),
        ],
        trial_jobs=200,
    )
    result = trial.run_stream(specs)
    for report in trial.reports:
        marker = "->" if report.committed else "  "
        print(
            f"  {marker} {report.name:<16} "
            f"trial profit {report.trial_profit:8.1f}"
            f"{'   (committed)' if report.committed else ''}"
        )
    print(
        f"winner '{trial.winner_name}' served the rest of the stream: "
        f"final profit {result.total_profit:.1f}"
    )
    print("done")


if __name__ == "__main__":
    main()
