"""Tests for the eager-promotion ablation and engine logging."""

import logging

import pytest

from repro.baselines import EagerPromotionSNS
from repro.core import SNSScheduler
from repro.dag import block, chain
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob


class TestEagerPromotion:
    def test_promotes_at_arrival(self):
        """A parked job becomes fresh room when a blocker expires -- the
        plain S only notices at completions, the eager variant at the
        next arrival."""
        sched = EagerPromotionSNS(epsilon=1.0)
        sched.on_start(m=16, speed=1.0)
        # blocker takes n=13 of the ~13.9-capacity band; the parked job
        # (n=3, same band) overflows it and parks
        blocker = ActiveJob(
            JobSpec(0, block(144, node_work=1.0), arrival=0, deadline=18)
        ).view
        parked = ActiveJob(
            JobSpec(1, block(80, node_work=1.0), arrival=0, deadline=60)
        ).view
        sched.on_arrival(blocker, 0)
        sched.on_arrival(parked, 0)
        assert 1 in sched.queue_parked
        # blocker expires (frees the band) -- no completion happens
        sched.on_expiry(blocker, 18)
        # plain S would keep job 1 parked until a completion; the eager
        # variant promotes it when anything else arrives
        newcomer = ActiveJob(
            JobSpec(2, chain(4), arrival=18, deadline=100, profit=0.001)
        ).view
        sched.on_arrival(newcomer, 18)
        assert 1 in sched.queue_started

    def test_plain_s_does_not_promote_at_arrival(self):
        sched = SNSScheduler(epsilon=1.0)
        sched.on_start(m=16, speed=1.0)
        blocker = ActiveJob(
            JobSpec(0, block(144, node_work=1.0), arrival=0, deadline=18)
        ).view
        parked = ActiveJob(
            JobSpec(1, block(80, node_work=1.0), arrival=0, deadline=60)
        ).view
        sched.on_arrival(blocker, 0)
        sched.on_arrival(parked, 0)
        sched.on_expiry(blocker, 18)
        newcomer = ActiveJob(
            JobSpec(2, chain(4), arrival=18, deadline=100, profit=0.001)
        ).view
        sched.on_arrival(newcomer, 18)
        assert 1 in sched.queue_parked  # paper behaviour

    def test_eager_at_least_as_good_end_to_end(self):
        from repro.analysis import interval_lp_upper_bound
        from repro.workloads import WorkloadConfig, generate_workload

        wins = 0
        for seed in range(4):
            specs = generate_workload(
                WorkloadConfig(n_jobs=40, m=8, load=3.0, seed=seed)
            )
            plain = Simulator(
                m=8, scheduler=SNSScheduler(epsilon=1.0)
            ).run(specs)
            eager = Simulator(
                m=8, scheduler=EagerPromotionSNS(epsilon=1.0)
            ).run(specs)
            if eager.total_profit >= plain.total_profit - 1e-9:
                wins += 1
        assert wins >= 2  # eager promotion rarely hurts


class TestEngineLogging:
    def test_debug_events_logged(self, caplog):
        specs = [
            JobSpec(0, chain(3), arrival=0, deadline=10, profit=1.0),
            JobSpec(1, chain(50), arrival=0, deadline=5, profit=1.0),
        ]
        from repro.baselines import GlobalEDF

        with caplog.at_level(logging.DEBUG, logger="repro.sim.engine"):
            Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        text = caplog.text
        assert "arrival job=0" in text
        assert "completion job=0" in text
        assert "expiry job=1" in text

    def test_silent_by_default(self, caplog):
        specs = [JobSpec(0, chain(3), arrival=0, deadline=10)]
        from repro.baselines import GlobalEDF

        with caplog.at_level(logging.INFO, logger="repro.sim.engine"):
            Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        assert caplog.text == ""
