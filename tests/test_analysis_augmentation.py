"""Unit tests for the resource-augmentation analysis helpers."""

import pytest

from repro.analysis import (
    min_speed_for_fraction,
    profit_at_speed,
    speed_profile,
)
from repro.baselines import FIFOScheduler
from repro.core import SNSScheduler
from repro.sim import JobSpec
from repro.workloads import WorkloadConfig, fig1_jobs, generate_workload


def tight_workload(seed=4):
    return generate_workload(
        WorkloadConfig(
            n_jobs=30,
            m=8,
            load=1.5,
            epsilon=0.5,
            deadline_policy="tight",
            tight_factor=1.1,
            family="fork_join",
            family_kwargs={"min_node_work": 8, "max_node_work": 16},
            seed=seed,
        )
    )


class TestSpeedProfile:
    def test_profile_grid(self):
        specs = tight_workload()
        points = speed_profile(
            specs, 8, lambda: SNSScheduler(epsilon=0.5), [1.0, 2.0, 3.0]
        )
        assert [p.speed for p in points] == [1.0, 2.0, 3.0]
        fractions = [p.fraction for p in points]
        assert fractions[0] <= fractions[1] <= fractions[2] + 1e-9
        assert fractions[2] > 0.3

    def test_fraction_against_fixed_bound(self):
        specs = tight_workload()
        points = speed_profile(
            specs, 8, lambda: SNSScheduler(epsilon=0.5), [2.0], bound=100.0
        )
        assert points[0].fraction == pytest.approx(points[0].profit / 100.0)


class TestMinSpeed:
    def test_fig1_recovery_speed(self):
        """On the Figure 1 instance the FIFO/adversarial combination needs
        ~2 - 1/m speed to earn the job's profit (Theorem 1)."""
        from repro.sim import AdversarialPicker, Simulator

        m = 8
        specs = fig1_jobs(m, deadline_factor=1.0, node_work=64.0)

        def profit_at(speed):
            sim = Simulator(
                m=m,
                scheduler=FIFOScheduler(),
                picker=AdversarialPicker(),
                speed=speed,
            )
            return sim.run(list(specs)).total_profit

        # bisect manually against the adversarial picker (the helper's
        # Simulator uses the default picker, so replicate its logic)
        lo, hi = 1.0, 2.5
        assert profit_at(hi) == 1.0
        assert profit_at(lo) == 0.0
        while hi - lo > 0.01:
            mid = (lo + hi) / 2
            if profit_at(mid) >= 1.0:
                hi = mid
            else:
                lo = mid
        assert hi == pytest.approx(2.0 - 1.0 / m, abs=0.05)

    def test_min_speed_monotone_target(self):
        specs = tight_workload()
        factory = lambda: SNSScheduler(epsilon=0.5)
        s_low = min_speed_for_fraction(specs, 8, factory, 0.2)
        s_high = min_speed_for_fraction(specs, 8, factory, 0.6)
        assert s_low is not None and s_high is not None
        assert s_low <= s_high + 1e-9

    def test_unreachable_target(self):
        specs = tight_workload()
        result = min_speed_for_fraction(
            specs, 8, lambda: SNSScheduler(epsilon=0.5), 5.0, speed_hi=2.0
        )
        assert result is None

    def test_trivial_target(self):
        specs = tight_workload()
        result = min_speed_for_fraction(
            specs, 8, FIFOScheduler, 1e-9, bound=1e-6
        )
        assert result == 1.0

    def test_bad_args(self):
        specs = tight_workload()
        with pytest.raises(ValueError):
            min_speed_for_fraction(specs, 8, FIFOScheduler, 0.0)
        with pytest.raises(ValueError):
            min_speed_for_fraction(
                specs, 8, FIFOScheduler, 0.5, speed_lo=2.0, speed_hi=1.0
            )
