"""Edge-case and protocol coverage across small modules."""

import pytest

from repro.dag import chain
from repro.errors import (
    AllocationError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.sim import JobSpec, SchedulerBase, Simulator
from repro.sim.jobs import ActiveJob


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [AllocationError, SchedulingError, SimulationError, WorkloadError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestSchedulerBase:
    def test_defaults(self):
        base = SchedulerBase()
        base.on_start(4, 1.5)
        assert base.m == 4
        assert base.speed == 1.5
        view = ActiveJob(JobSpec(0, chain(2), arrival=0, deadline=9)).view
        base.on_arrival(view, 0)
        base.on_completion(view, 1)
        base.on_expiry(view, 2)
        assert base.wakeup_after(3) is None
        assert base.assign_deadline(view, 0) is None
        with pytest.raises(NotImplementedError):
            base.allocate(0)

    def test_protocol_conformance(self):
        from repro.baselines import (
            AdmissionEDF,
            DoublingNonClairvoyant,
            FederatedScheduler,
            FIFOScheduler,
            GlobalEDF,
            GreedyDensity,
            LeastLaxityFirst,
            RandomScheduler,
        )
        from repro.core import GeneralProfitScheduler, SNSScheduler
        from repro.sim.scheduler import Scheduler

        for factory in (
            AdmissionEDF,
            DoublingNonClairvoyant,
            FederatedScheduler,
            FIFOScheduler,
            GlobalEDF,
            GreedyDensity,
            LeastLaxityFirst,
            RandomScheduler,
            GeneralProfitScheduler,
            SNSScheduler,
        ):
            assert isinstance(factory(), Scheduler), factory


class TestEngineProtocolErrors:
    def test_bad_wakeup_rejected(self):
        class BadWakeup(SchedulerBase):
            def allocate(self, t):
                return {}

            def wakeup_after(self, t):
                return t  # not strictly in the future

        spec = JobSpec(0, chain(2), arrival=0, deadline=9)
        with pytest.raises(SimulationError, match="wakeup"):
            Simulator(m=1, scheduler=BadWakeup()).run([spec])

    def test_bad_assigned_deadline_rejected(self):
        from repro.profit import StepProfit

        class BadAssign(SchedulerBase):
            def allocate(self, t):
                return {}

            def assign_deadline(self, job, t):
                return t  # not in the future

        spec = JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(1, 20))
        with pytest.raises(SimulationError, match="deadline"):
            Simulator(m=1, scheduler=BadAssign()).run([spec])


class TestReprSmoke:
    def test_reprs_do_not_crash(self):
        from repro.core import Constants, DensityBands, SNSScheduler
        from repro.profit import FlatThenLinear, StepProfit

        assert "eps" in repr(Constants.from_epsilon(1.0))
        assert "DensityBands" in repr(DensityBands())
        assert "SNSScheduler" in repr(SNSScheduler())
        assert "StepProfit" in repr(StepProfit(1.0, 2.0))
        assert "FlatThenLinear" in repr(FlatThenLinear(1.0, 2.0, 3.0))
        job = ActiveJob(JobSpec(0, chain(2), arrival=0, deadline=9))
        assert "JobView" in repr(job.view)
        assert "DAGJob" in repr(job.dag)


class TestDocstringExample:
    def test_engine_docstring_example(self):
        """The example in the engine module docstring must stay true."""
        from repro.baselines import GlobalEDF
        from repro.dag import chain as chain_builder

        spec = JobSpec(0, chain_builder(4), arrival=0, deadline=10, profit=1.0)
        result = Simulator(m=2, scheduler=GlobalEDF()).run([spec])
        assert result.total_profit == 1.0

    def test_builder_docstring_example(self):
        from repro.dag import DAGBuilder

        b = DAGBuilder("diamond")
        top = b.add_node(1.0)
        left, right = b.add_node(2.0), b.add_node(3.0)
        bottom = b.add_node(1.0)
        b.add_edges([(top, left), (top, right), (left, bottom), (right, bottom)])
        assert b.build().span == 5.0
