"""Unit and scenario tests for the general-profit scheduler (paper §5)."""

import math

import pytest

from repro.core import Constants, GeneralProfitScheduler
from repro.dag import block, chain, fork_join
from repro.profit import FlatThenLinear, StepProfit, Staircase
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob


def make_view(dag, arrival=0, fn=None, job_id=0):
    if fn is None:
        fn = StepProfit(1.0, 100.0)
    return ActiveJob(JobSpec(job_id, dag, arrival=arrival, profit_fn=fn)).view


@pytest.fixture
def sched():
    s = GeneralProfitScheduler(epsilon=1.0)
    s.on_start(m=8, speed=1.0)
    return s


class TestAssignment:
    def test_basic_assignment(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        state = sched.states[0]
        assert not state.rejected
        assert state.allotment == 1
        assert state.x == pytest.approx(8.0)
        assert state.required_slots == 10  # ceil(1.25 * 8)
        assert len(state.slots) == 10
        # empty machine: earliest slots; the minimal deadline is capped
        # below by the paper's D > (1+eps)L requirement: floor(2*8)+1
        assert state.slots == list(range(10))
        assert state.assigned_relative_deadline == 17
        assert sched.assign_deadline(view, 0) == 17

    def test_deadline_at_least_required_minimum(self, sched):
        # relative deadline must exceed (1+eps) * span
        view = make_view(chain(8), fn=StepProfit(2.0, 100.0))
        sched.on_arrival(view, 0)
        d = sched.states[0].assigned_relative_deadline
        assert d > (1 + 1.0) * 8 - 8  # trivially; but also >= required slots
        assert d >= sched.states[0].required_slots

    def test_profit_locked_at_assigned_deadline(self, sched):
        fn = FlatThenLinear(2.0, 12.0, decay_span=24.0)
        view = make_view(chain(8), fn=fn)
        sched.on_arrival(view, 0)
        state = sched.states[0]
        assert state.density == pytest.approx(
            fn(state.assigned_relative_deadline) / (state.x * state.allotment)
        )

    def test_zero_profit_job_rejected(self, sched):
        view = make_view(chain(8), fn=StepProfit(0.0, 100.0))
        sched.on_arrival(view, 0)
        assert sched.states[0].rejected
        assert sched.assign_deadline(view, 0) == 1  # expires immediately

    def test_impossible_knee_rejected(self, sched):
        # profit hits zero before the job can possibly finish
        view = make_view(chain(50), fn=StepProfit(1.0, 10.0))
        sched.on_arrival(view, 0)
        assert sched.states[0].rejected

    def test_oversized_allotment_rejected(self):
        # m=2: b*m ~ 1.73; a wide block forces n=2 > capacity
        sched = GeneralProfitScheduler(epsilon=1.0)
        sched.on_start(m=2, speed=1.0)
        view = make_view(block(64, node_work=1.0), fn=StepProfit(1.0, 40.0))
        sched.on_arrival(view, 0)
        assert sched.states[0].rejected

    def test_slots_respect_band_condition(self, sched):
        # two identical jobs: slots must not overlap beyond band capacity
        a = make_view(block(48, node_work=1.0), fn=StepProfit(1.0, 24.0), job_id=0)
        b = make_view(block(48, node_work=1.0), fn=StepProfit(1.0, 24.0), job_id=1)
        sched.on_arrival(a, 0)
        sched.on_arrival(b, 0)
        sa, sb = sched.states[0], sched.states[1]
        if not (sa.rejected or sb.rejected):
            # same density => same band; both allotments in one slot
            # would exceed b*m, so slot sets must be disjoint
            assert not (set(sa.slots) & set(sb.slots)) or (
                sa.allotment + sb.allotment
                <= sched.constants.band_capacity(8) + 1e-9
            )

    def test_later_deadline_when_slots_taken(self, sched):
        a = make_view(block(48, node_work=1.0), fn=StepProfit(1.0, 100.0), job_id=0)
        b = make_view(block(48, node_work=1.0), fn=StepProfit(1.0, 100.0), job_id=1)
        sched.on_arrival(a, 0)
        da = sched.states[0].assigned_relative_deadline
        sched.on_arrival(b, 0)
        db = sched.states[1].assigned_relative_deadline
        if sched.states[0].allotment * 2 > sched.constants.band_capacity(8):
            assert db > da


class TestSlotRelease:
    def test_completion_releases_slots(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        slots = sched.states[0].slots
        sched.on_completion(view, 3)
        for t in slots:
            if t >= 3:
                bands = sched.slot_occupancy(t)
                assert bands is None or 0 not in bands

    def test_expiry_releases_slots(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        sched.on_expiry(view, 5)
        for t in sched.states[0].slots:
            if t >= 5:
                bands = sched.slot_occupancy(t)
                assert bands is None or 0 not in bands


class TestExecution:
    def test_allocate_only_in_slots(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        slots = set(sched.states[0].slots)
        for t in range(0, 12):
            alloc = sched.allocate(t)
            if t in slots:
                assert alloc == {0: 1}
            else:
                assert alloc == {}

    def test_wakeup_while_slots_remain(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        assert sched.wakeup_after(0) == 1
        last = max(sched.states[0].slots)
        assert sched.wakeup_after(last) is None

    def test_gc_drops_past_slots(self, sched):
        view = make_view(chain(8), fn=StepProfit(2.0, 50.0))
        sched.on_arrival(view, 0)
        sched.allocate(5)
        assert all(t >= 5 for t in sched._slots)


class TestEndToEnd:
    def test_single_job_earns_peak(self):
        fn = StepProfit(3.0, 60.0)
        spec = JobSpec(0, fork_join(8, node_work=2.0), arrival=0, profit_fn=fn)
        result = Simulator(
            m=8, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run([spec])
        assert result.records[0].completed
        assert result.records[0].profit == 3.0

    def test_decaying_profit_earned_correctly(self):
        fn = FlatThenLinear(2.0, 16.0, decay_span=64.0)
        spec = JobSpec(0, chain(12), arrival=0, profit_fn=fn)
        result = Simulator(
            m=4, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run([spec])
        rec = result.records[0]
        assert rec.completed
        assert rec.profit == pytest.approx(fn(rec.completion_time))

    def test_staircase_jobs(self):
        fn = Staircase(4.0, [(20.0, 2.0), (40.0, 0.0)])
        specs = [
            JobSpec(i, chain(10), arrival=i * 2, profit_fn=fn) for i in range(4)
        ]
        result = Simulator(
            m=4, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run(specs)
        assert result.total_profit > 0

    def test_deadline_jobs_accepted_as_step_profit(self):
        # the scheduler transparently treats deadline jobs as StepProfit
        spec = JobSpec(0, chain(8), arrival=0, deadline=50, profit=2.0)
        result = Simulator(
            m=4, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run([spec])
        assert result.records[0].profit == 2.0

    def test_overload_drops_some_jobs(self):
        # far more jobs than capacity in the profitable window
        fn = StepProfit(1.0, 30.0)
        specs = [
            JobSpec(i, block(16, node_work=2.0), arrival=0, profit_fn=fn)
            for i in range(10)
        ]
        result = Simulator(
            m=4, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run(specs)
        completed = sum(1 for r in result.records.values() if r.completed)
        assert 0 < completed < 10
