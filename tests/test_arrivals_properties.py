"""Property tests for the gateway's arrival processes.

Pins, for every seed and parameter combination hypothesis explores:

* **seed determinism** -- two generators built from the same seed
  produce bit-identical arrival arrays (the foundation the gateway's
  run-level determinism stands on);
* **shape invariants** -- arrivals are sorted, non-negative integer
  step counts of the requested length;
* **mean-rate bounds** -- thinning cannot exceed the peak rate
  (diurnal) and session streams track the configured overall rate
  within loose stochastic bounds.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import diurnal_arrivals, session_arrivals

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestDiurnalArrivals:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=SEEDS,
        n=st.integers(min_value=0, max_value=300),
        base_rate=st.floats(min_value=0.05, max_value=5.0),
        amplitude=st.floats(min_value=0.0, max_value=1.0),
        period=st.integers(min_value=1, max_value=2000),
    )
    def test_seed_determinism_and_shape(
        self, seed, n, base_rate, amplitude, period
    ):
        a = diurnal_arrivals(
            n,
            base_rate,
            np.random.default_rng(seed),
            amplitude=amplitude,
            period=period,
        )
        b = diurnal_arrivals(
            n,
            base_rate,
            np.random.default_rng(seed),
            amplitude=amplitude,
            period=period,
        )
        assert np.array_equal(a, b)
        assert len(a) == n
        assert np.all(a[:-1] <= a[1:])
        assert np.all(a >= 0)

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS)
    def test_mean_rate_bounded_by_peak(self, seed):
        """Thinning only removes arrivals: the realized rate cannot
        exceed the peak rate ``base * (1 + amplitude)`` (and should be
        in the ballpark of ``base`` over whole periods)."""
        n, base, amplitude = 600, 1.0, 0.8
        arr = diurnal_arrivals(
            n,
            base,
            np.random.default_rng(seed),
            amplitude=amplitude,
            period=100,
        )
        span = max(int(arr[-1]), 1)
        realized = n / span
        assert realized <= base * (1.0 + amplitude) * 1.5  # slack for luck
        assert realized >= base * 0.4

    def test_modulation_concentrates_arrivals_at_peaks(self):
        """With full amplitude, arrivals pile up in the sinusoid's high
        half -- the property that makes the traffic diurnal at all."""
        period = 200
        arr = diurnal_arrivals(
            4000, 1.0, np.random.default_rng(0), amplitude=1.0, period=period
        )
        phase = (np.asarray(arr) % period) / period
        # rate ~ 1 + sin(2 pi x): high half is x in [0, 0.5)
        high = np.count_nonzero(phase < 0.5)
        assert high / len(arr) > 0.75

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            diurnal_arrivals(-1, 1.0, rng)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(10, 0.0, rng)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(10, 1.0, rng, amplitude=1.5)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(10, 1.0, rng, period=0)

    def test_zero_amplitude_is_plain_poisson_rate(self, rng):
        arr = diurnal_arrivals(2000, 2.0, rng, amplitude=0.0)
        realized = len(arr) / max(int(arr[-1]), 1)
        assert realized == pytest.approx(2.0, rel=0.25)


class TestSessionArrivals:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=SEEDS,
        n=st.integers(min_value=0, max_value=300),
        session_rate=st.floats(min_value=0.01, max_value=1.0),
        alpha=st.floats(min_value=1.1, max_value=4.0),
        within_rate=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_seed_determinism_and_shape(
        self, seed, n, session_rate, alpha, within_rate
    ):
        a = session_arrivals(
            n,
            session_rate,
            np.random.default_rng(seed),
            alpha=alpha,
            within_rate=within_rate,
        )
        b = session_arrivals(
            n,
            session_rate,
            np.random.default_rng(seed),
            alpha=alpha,
            within_rate=within_rate,
        )
        assert np.array_equal(a, b)
        assert len(a) == n
        assert np.all(a[:-1] <= a[1:])
        assert np.all(a >= 0)

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS)
    def test_overall_rate_tracks_configuration(self, seed):
        """``session_rate * mean_session_length`` jobs per step, within
        loose bounds (heavy tails make tight bounds flaky by design)."""
        from scipy.special import zeta

        alpha = 2.5  # finite-variance regime for a stable check
        session_rate = 0.2
        mean_len = 1.0 + float(zeta(alpha))
        expected = session_rate * mean_len
        arr = session_arrivals(
            1500,
            session_rate,
            np.random.default_rng(seed),
            alpha=alpha,
            within_rate=2.0,
        )
        realized = len(arr) / max(int(arr[-1]), 1)
        assert 0.3 * expected < realized < 4.0 * expected

    def test_bursty_relative_to_poisson(self):
        """Session trains produce more duplicate-step arrivals than a
        memoryless stream of the same mean rate -- the heavy-tailed
        burstiness the gateway's flash behaviour feeds on."""
        from repro.workloads import poisson_arrivals

        rng = np.random.default_rng(42)
        arr = session_arrivals(
            2000, 0.2, rng, alpha=1.3, within_rate=4.0
        )
        span = max(int(arr[-1]), 1)
        rate = len(arr) / span
        pois = poisson_arrivals(2000, rate, np.random.default_rng(42))
        dup_sessions = len(arr) - len(np.unique(arr))
        dup_poisson = len(pois) - len(np.unique(pois))
        assert dup_sessions > dup_poisson

    def test_max_session_jobs_caps_trains(self, rng):
        arr = session_arrivals(
            500, 0.1, rng, alpha=1.05, within_rate=10.0, max_session_jobs=3
        )
        # a cap of 3 jobs per session forces many distinct session
        # starts; with alpha near 1 an uncapped run would collapse into
        # a few giant trains
        assert len(np.unique(np.asarray(arr) // 1000)) >= 1
        assert len(arr) == 500

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            session_arrivals(10, 0.0, rng)
        with pytest.raises(WorkloadError):
            session_arrivals(10, 0.5, rng, alpha=1.0)
        with pytest.raises(WorkloadError):
            session_arrivals(10, 0.5, rng, within_rate=0.0)
        with pytest.raises(WorkloadError):
            session_arrivals(10, 0.5, rng, max_session_jobs=0)

    def test_pareto_mean_session_length_math(self):
        """ceil(pareto(alpha) + 1) has mean 1 + zeta(alpha); the load
        generator's rate normalization depends on this identity."""
        from scipy.special import zeta

        rng = np.random.default_rng(7)
        alpha = 2.0
        lengths = np.ceil(rng.pareto(alpha, size=200_000) + 1.0)
        assert np.mean(lengths) == pytest.approx(
            1.0 + float(zeta(alpha)), rel=0.05
        )
