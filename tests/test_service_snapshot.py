"""Checkpoint/restore: a killed-and-restored engine or service must
finish with *bit-identical* results to the uninterrupted run.

All snapshots are pushed through ``json.dumps``/``json.loads`` so the
tests exercise the real serialization boundary, not object sharing.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AdmissionEDF,
    FIFOScheduler,
    GlobalEDF,
    GreedyDensity,
    RandomScheduler,
)
from repro.core import SNSScheduler
from repro.errors import SchedulingError, SimulationError
from repro.service import (
    SchedulingService,
    SubmissionLog,
    checkpoint_roundtrip,
    load_snapshot,
    make_shed_policy,
    save_snapshot,
    service_from_dict,
    service_to_dict,
)
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload

FACTORIES = {
    "admission-edf": AdmissionEDF,
    "edf": GlobalEDF,
    "fifo": FIFOScheduler,
    "greedy": GreedyDensity,
    "random": lambda: RandomScheduler(rng=42),
    "sns": lambda: SNSScheduler(epsilon=1.0),
}


def run_engine_with_checkpoint(name, specs, checkpoint_t, m=4):
    """Stream specs; at checkpoint_t serialize engine+scheduler through
    JSON, rebuild both from scratch, and continue."""
    ordered = sorted(specs, key=lambda s: (s.arrival, s.job_id))
    sim = Simulator(m=m, scheduler=FACTORIES[name]())
    sim.start()
    i = 0
    while i < len(ordered) and ordered[i].arrival < checkpoint_t:
        sim.submit(ordered[i], t=ordered[i].arrival)
        i += 1
    sim.advance_to(checkpoint_t)
    blob = json.dumps(
        {"engine": sim.snapshot_state(), "sched": sim.scheduler.snapshot_state()}
    )
    del sim

    data = json.loads(blob)
    restored = Simulator(m=m, scheduler=FACTORIES[name]())
    views = restored.restore_state(data["engine"])
    restored.scheduler.restore_state(data["sched"], views)
    for spec in ordered[i:]:
        restored.submit(spec, t=spec.arrival)
    return restored.finish()


class TestEngineSnapshot:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_kill_and_restore_is_bit_identical(self, name):
        specs = generate_workload(
            WorkloadConfig(n_jobs=40, m=4, load=2.5, seed=9)
        )
        baseline = Simulator(m=4, scheduler=FACTORIES[name]()).run(specs)
        mid = sorted(s.arrival for s in specs)[len(specs) // 2]
        restored = run_engine_with_checkpoint(name, specs, mid)
        assert restored.records == baseline.records
        assert restored.total_profit == baseline.total_profit
        assert restored.end_time == baseline.end_time

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.sampled_from(["sns", "edf", "random"]),
        st.integers(min_value=1, max_value=300),
    )
    def test_kill_and_restore_property(self, seed, name, checkpoint_t):
        specs = generate_workload(
            WorkloadConfig(n_jobs=15, m=4, load=2.0, seed=seed)
        )
        baseline = Simulator(m=4, scheduler=FACTORIES[name]()).run(specs)
        restored = run_engine_with_checkpoint(name, specs, checkpoint_t)
        assert restored.records == baseline.records
        assert restored.total_profit == baseline.total_profit

    @pytest.mark.parametrize("name", ["sns", "edf", "fifo"])
    def test_mid_gap_checkpoint_is_bit_identical(self, name):
        """Snapshot at a time that is *not* an event time (the event-
        driven engine skips over it), restore through JSON, and finish
        bit-identically -- counters included -- against a baseline that
        advances at exactly the same times."""
        specs = sorted(
            generate_workload(WorkloadConfig(n_jobs=40, m=4, load=2.5, seed=9)),
            key=lambda s: (s.arrival, s.job_id),
        )
        # pick a checkpoint time between events: not an arrival, not a
        # deadline, inside the stream
        events = {s.arrival for s in specs} | {
            s.deadline for s in specs if s.deadline is not None
        }
        mid = sorted(s.arrival for s in specs)[len(specs) // 2]
        checkpoint_t = mid + 1
        while checkpoint_t in events:
            checkpoint_t += 1

        def stream(with_checkpoint):
            sim = Simulator(m=4, scheduler=FACTORIES[name]())
            sim.start()
            i = 0
            while i < len(specs) and specs[i].arrival < checkpoint_t:
                sim.submit(specs[i], t=specs[i].arrival)
                i += 1
            sim.advance_to(checkpoint_t)
            if with_checkpoint:
                blob = json.dumps(
                    {
                        "engine": sim.snapshot_state(),
                        "sched": sim.scheduler.snapshot_state(),
                    }
                )
                sim = Simulator(m=4, scheduler=FACTORIES[name]())
                data = json.loads(blob)
                views = sim.restore_state(data["engine"])
                sim.scheduler.restore_state(data["sched"], views)
            for spec in specs[i:]:
                sim.submit(spec, t=spec.arrival)
            return sim.finish()

        baseline = stream(with_checkpoint=False)
        restored = stream(with_checkpoint=True)
        assert restored.records == baseline.records
        assert restored.total_profit == baseline.total_profit
        assert restored.end_time == baseline.end_time
        assert restored.counters == baseline.counters

    def test_restore_rejects_config_mismatch(self):
        sim = Simulator(m=4, scheduler=FIFOScheduler())
        sim.start()
        snap = sim.snapshot_state()
        sim.finish()
        other = Simulator(m=8, scheduler=FIFOScheduler())
        with pytest.raises(SimulationError):
            other.restore_state(snap)

    def test_snapshotless_scheduler_raises(self):
        from repro.sim.scheduler import SchedulerBase

        class Bare(SchedulerBase):
            """Minimal scheduler without snapshot support."""

            def allocate(self, t):
                """Allocate nothing."""
                return {}

        with pytest.raises(SchedulingError):
            Bare().snapshot_state()
        with pytest.raises(SchedulingError):
            Bare().restore_state({}, {})


class TestServiceSnapshot:
    def make_service(self, recorder=None):
        return SchedulingService(
            4,
            SNSScheduler(epsilon=1.0),
            capacity=8,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=6,
            recorder=recorder,
        )

    def test_checkpoint_roundtrip_exact_profit(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=80, m=4, load=3.5, seed=21)
        )
        log = SubmissionLog()
        baseline = self.make_service(log).run_stream(specs)
        assert baseline.num_shed > 0  # the interesting regime
        mid = sorted(s.arrival for s in specs)[len(specs) // 2]
        restored = checkpoint_roundtrip(
            log,
            self.make_service,
            lambda: SNSScheduler(epsilon=1.0),
            checkpoint_time=mid,
        )
        assert restored.total_profit == baseline.total_profit
        assert restored.result.records == baseline.result.records
        assert [(r.job_id, r.reason) for r in restored.shed] == [
            (r.job_id, r.reason) for r in baseline.shed
        ]

    def test_snapshot_file_roundtrip(self, tmp_path):
        specs = sorted(
            generate_workload(WorkloadConfig(n_jobs=40, m=4, load=3.0, seed=2)),
            key=lambda s: (s.arrival, s.job_id),
        )
        baseline_service = self.make_service()
        baseline = baseline_service.run_stream(specs)

        service = self.make_service()
        service.start()
        half = len(specs) // 2
        for spec in specs[:half]:
            service.submit(spec, t=spec.arrival)
        path = tmp_path / "service.json"
        save_snapshot(service, str(path))
        del service

        restored = load_snapshot(str(path), SNSScheduler(epsilon=1.0))
        for spec in specs[half:]:
            restored.submit(spec, t=spec.arrival)
        result = restored.finish()
        assert result.total_profit == baseline.total_profit
        assert result.result.records == baseline.result.records

    def test_restore_rejects_wrong_scheduler_type(self):
        service = self.make_service()
        service.start()
        data = service_to_dict(service)
        with pytest.raises(SimulationError):
            service_from_dict(data, GlobalEDF())

    def test_snapshot_requires_open_session(self):
        with pytest.raises(SimulationError):
            service_to_dict(self.make_service())

    def test_submission_log_roundtrip(self, tmp_path):
        specs = generate_workload(WorkloadConfig(n_jobs=10, m=4, seed=0))
        log = SubmissionLog()
        for spec in specs:
            log.record(spec.arrival, spec)
        path = tmp_path / "log.json"
        log.save(str(path))
        loaded = SubmissionLog.load(str(path))
        assert len(loaded) == len(log)
        for (ta, sa), (tb, sb) in zip(log, loaded):
            assert ta == tb
            assert sa.job_id == sb.job_id
            assert sa.work == sb.work
