"""Differential pin: tracing on vs off is bit-identical.

The observability layer's core contract is that recorders *read*
engine/service/cluster state but never influence it.  These tests run
the same workload with no recorder, with the disabled
:data:`~repro.observability.NULL_RECORDER`, and with a live
:class:`~repro.observability.TraceRecorder` (plus profiler), and demand
bit-identical observables everywhere:

* engine batch and streaming sessions, across DAG families, seeds and
  both service engine backends -- ``event`` and ``array``, via the
  ``service_backend`` conftest fixture -- (per-job completion records,
  counters, end time, total profit);
* the scheduling service under backpressure and shedding;
* an in-process sharded cluster;
* a 4-shard process-mode cluster (parent-side tracing only -- worker
  engines run untraced, so the pin is on results, not trace content).
"""

import os
from dataclasses import asdict

import pytest

from repro.cluster import ClusterService, ShardConfig
from repro.core import SNSScheduler
from repro.observability import NULL_RECORDER, Profiler, TraceRecorder
from repro.service import SchedulingService, make_shed_policy
from repro.sim import make_engine
from repro.workloads import WorkloadConfig, generate_workload

SNS_CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})


def record_tuple(rec):
    return (
        rec.job_id,
        rec.arrival,
        rec.deadline,
        rec.completion_time,
        rec.profit,
        rec.processor_steps,
        rec.expired,
        rec.abandoned,
        rec.assigned_deadline,
    )


def result_fingerprint(result):
    """Every observable of a simulation result, bitwise."""
    return (
        [record_tuple(r) for r in result.records.values()],
        asdict(result.counters),
        result.end_time,
        result.total_profit,
    )


def workload(n_jobs, m, family, seed, load=2.5):
    return generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=load, family=family,
            epsilon=1.0, seed=seed,
        )
    )


class TestEngineEquivalence:
    """Per service backend (``event`` and ``array``): a live recorder
    must not change a single observable bit.  On the array backend an
    enabled recorder also routes execution through the reference event
    loop (delegation), so these tests double as a pin that delegation
    and the arena hot path agree."""

    @pytest.mark.parametrize("family", ["chain", "fork_join", "mixed"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_batch_run_identical(self, service_backend, family, seed):
        specs = workload(60, 8, family, seed)

        def run(recorder=None, profiler=None):
            return make_engine(
                service_backend,
                m=8,
                scheduler=SNSScheduler(epsilon=1.0),
                recorder=recorder,
                profiler=profiler,
            ).run(list(specs))

        baseline = result_fingerprint(run())
        assert result_fingerprint(run(NULL_RECORDER)) == baseline
        assert result_fingerprint(run(TraceRecorder(), Profiler())) == baseline

    @pytest.mark.parametrize("seed", [1, 5])
    def test_streaming_session_identical(self, service_backend, seed):
        specs = sorted(
            workload(50, 4, "mixed", seed),
            key=lambda sp: (sp.arrival, sp.job_id),
        )

        def run_stream(recorder=None):
            sim = make_engine(
                service_backend,
                m=4,
                scheduler=SNSScheduler(epsilon=1.0),
                recorder=recorder,
            )
            sim.start()
            for spec in specs:
                sim.submit(spec, t=spec.arrival)
            return sim.finish()

        baseline = result_fingerprint(run_stream())
        assert result_fingerprint(run_stream(NULL_RECORDER)) == baseline
        assert result_fingerprint(run_stream(TraceRecorder())) == baseline

    def test_batch_equals_stream_traced(self, service_backend):
        """Tracing must not break the engine's batch/stream equivalence."""
        specs = workload(40, 4, "mixed", 3)

        def build():
            return make_engine(
                service_backend,
                m=4,
                scheduler=SNSScheduler(epsilon=1.0),
                recorder=TraceRecorder(),
            )

        batch = build().run(list(specs))
        sim = build()
        sim.start()
        for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
            sim.submit(spec, t=spec.arrival)
        stream = sim.finish()
        assert result_fingerprint(batch) == result_fingerprint(stream)


class TestServiceEquivalence:
    @pytest.mark.parametrize("seed", [2, 9])
    def test_shedding_service_identical(self, seed):
        specs = workload(80, 4, "mixed", seed, load=4.0)

        def run(tracer=None):
            service = SchedulingService(
                4,
                SNSScheduler(epsilon=1.0),
                capacity=8,
                shed_policy=make_shed_policy("reject-lowest-density"),
                max_in_flight=4,
                tracer=tracer,
            )
            result = service.run_stream(specs)
            return (
                result_fingerprint(result.result),
                result.num_shed,
                result.total_profit,
                result.profit_shed,
            )

        baseline = run()
        assert run(NULL_RECORDER) == baseline
        assert run(TraceRecorder()) == baseline


class TestClusterEquivalence:
    def _fingerprint(self, result):
        return (
            sorted(result.records),
            result.total_profit,
            result.num_shed,
            result.end_time,
        )

    @pytest.mark.parametrize("seed", [4, 11])
    def test_inprocess_cluster_identical(self, seed):
        specs = workload(80, 8, "mixed", seed)

        def run(tracer=None):
            return ClusterService(
                8, 2, config=SNS_CFG, router="consistent-hash",
                mode="inprocess", tracer=tracer,
            ).run_stream(specs)

        baseline = self._fingerprint(run())
        assert self._fingerprint(run(TraceRecorder())) == baseline

    @pytest.mark.skipif(
        os.environ.get("REPRO_SKIP_PROCESS_TESTS") == "1",
        reason="process-mode tests disabled",
    )
    def test_process_cluster_4_shards_identical(self):
        specs = workload(100, 8, "mixed", 6)

        def run(tracer=None):
            return ClusterService(
                8, 4, config=SNS_CFG, router="consistent-hash",
                mode="process", tracer=tracer,
            ).run_stream(specs)

        baseline = self._fingerprint(run())
        tracer = TraceRecorder()
        assert self._fingerprint(run(tracer)) == baseline
        # parent-side lifecycle only: every job was routed exactly once
        routes = [ev for ev in tracer.events if ev[3] == "route"]
        assert sorted(ev[4] for ev in routes) == sorted(
            sp.job_id for sp in specs
        )
