"""Lemma 15 slot-band invariant (general-profit scheduler) and the
experiment CLI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeneralProfitScheduler, check_lemma15_slot_bands
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload
from repro.workloads.profits import make_profit_fn_sampler


class TestLemma15:
    def _run(self, n_jobs, m, load, seed, decay="linear"):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=n_jobs,
                m=m,
                load=load,
                family="fork_join",
                epsilon=1.0,
                profit_fn_sampler=make_profit_fn_sampler(decay),
                seed=seed,
            )
        )
        sched = GeneralProfitScheduler(epsilon=1.0)

        # check the invariant at every event, not just post-mortem
        violations: list[str] = []
        original_arrival = sched.on_arrival

        def checked_arrival(job, t):
            original_arrival(job, t)
            violations.extend(check_lemma15_slot_bands(sched))

        sched.on_arrival = checked_arrival
        Simulator(m=m, scheduler=sched).run(specs)
        return violations

    @pytest.mark.parametrize("decay", ["linear", "exponential", "staircase"])
    def test_invariant_holds_per_decay(self, decay):
        assert self._run(25, 4, 2.0, seed=0, decay=decay) == []

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=8),
        st.sampled_from([1.0, 3.0]),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_invariant_property(self, n_jobs, m, load, seed):
        assert self._run(n_jobs, m, load, seed) == []


class TestCLI:
    def test_main_runs_selected(self, capsys):
        from repro.experiments.registry import main

        assert main(["E10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        assert "delta" in out

    def test_main_markdown(self, capsys):
        from repro.experiments.registry import main

        assert main(["E10", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "### E10" in out
        assert "|" in out

    def test_main_unknown_key(self):
        from repro.experiments.registry import main

        with pytest.raises(KeyError):
            main(["E99"])
