"""Smoke + shape tests for every experiment runner (quick mode)."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in quick mode (cached per module)."""
    return {key: run_experiment(key, quick=True) for key in EXPERIMENTS}


class TestAllExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize("key", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, results, key):
        result = results[key]
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert all(len(row) == len(result.headers) for row in result.rows)
        text = result.to_text()
        assert result.title in text
        md = result.to_markdown()
        assert md.startswith(f"### {key}")


class TestShapes:
    """The qualitative claims each experiment must regenerate."""

    def test_e1_ratio_matches_theorem1(self, results):
        for row in results["E1"].rows:
            m, ratio, predicted = row[0], row[6], row[7]
            assert ratio == pytest.approx(predicted, rel=0.02), f"m={m}"

    def test_e1_adversarial_slower_than_random(self, results):
        for row in results["E1"].rows:
            t_adv, t_rand, t_clair = row[4], row[5], row[3]
            assert t_clair <= t_rand <= t_adv

    def test_e2_ratio_approaches_one(self, results):
        ratios = [row[5] for row in results["E2"].rows]
        # monotone toward 1 as node size shrinks, final within 5%
        assert ratios[-1] >= 0.95
        assert ratios == sorted(ratios)

    def test_e3_fractions_positive_and_below_bound(self, results):
        for row in results["E3"].rows:
            frac = row[1]
            assert 0 < frac <= 1.0 + 1e-6

    def test_e4_speed_helps(self, results):
        fracs = [row[1] for row in results["E4"].rows]
        assert fracs[-1] > 3 * fracs[0]  # speed 3 vastly beats speed 1

    def test_e5_augmented_beats_unaugmented(self, results):
        rows = results["E5"].rows
        by_eps = {}
        for eps, speed, frac, *_ in rows:
            by_eps.setdefault(eps, {})[speed] = frac
        for eps, entry in by_eps.items():
            base = entry[1.0]
            augmented = entry[1.0 + eps]
            assert augmented >= base

    def test_e6_positive_fractions(self, results):
        for row in results["E6"].rows:
            assert row[2] > 0  # S earns something in every regime

    def test_e7_s_degrades_gracefully(self, results):
        load_rows = [r for r in results["E7"].rows if isinstance(r[0], float)]
        s_col = results["E7"].headers.index("S(eps=1)")
        fifo_col = results["E7"].headers.index("FIFO")
        s_vals = [r[s_col] for r in load_rows]
        fifo_vals = [r[fifo_col] for r in load_rows]
        # at the highest load S holds a better fraction than FIFO
        assert s_vals[-1] > fifo_vals[-1]

    def test_e8_zero_violations(self, results):
        for row in results["E8"].rows:
            assert row[3] == 0  # lemma violations
            assert row[5] == 0  # post-hoc violations

    def test_e9_trap_separation(self, results):
        trap = {r[1]: r[2] for r in results["E9"].rows if r[0] == "trap"}
        assert trap["S"] >= 3 * trap["S-no-admission"]

    def test_e10_ratio_growth(self, results):
        ratios = [float(row[6]) for row in results["E10"].rows]
        assert ratios == sorted(ratios, reverse=True)

    def test_e11_reports_throughput(self, results):
        for row in results["E11"].rows:
            assert row[5] > 0  # steps/s

    def test_e15_covers_single_and_all_routers(self, results):
        from repro.cluster.router import ROUTERS

        rows = results["E15"].rows
        assert [row[0] for row in rows] == ["single"] + sorted(ROUTERS)
        for row in rows:
            assert row[2] > 0  # completed
            assert row[4] > 0  # profit
