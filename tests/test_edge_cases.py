"""Remaining edge cases across metrics, traces and scheduler state."""

import math

import pytest

from repro.analysis import summarize
from repro.core import GeneralProfitScheduler, SNSScheduler
from repro.dag import chain
from repro.profit import StepProfit
from repro.sim import EventKind, JobSpec, Simulator
from repro.workloads import WorkloadConfig, generate_workload


class TestMetricsEdges:
    def test_summarize_empty_run(self):
        from repro.baselines import FIFOScheduler

        result = Simulator(m=2, scheduler=FIFOScheduler()).run([])
        summary = summarize(result)
        assert summary.jobs == 0
        assert summary.total_profit == 0.0
        assert summary.on_time_fraction == 0.0
        assert math.isnan(summary.mean_response)

    def test_summarize_all_expired(self):
        from repro.baselines import FIFOScheduler

        specs = [JobSpec(0, chain(50), arrival=0, deadline=5)]
        result = Simulator(m=1, scheduler=FIFOScheduler()).run(specs)
        summary = summarize(result)
        assert summary.expired == 1
        assert summary.completed == 0
        assert math.isnan(summary.mean_response)


class TestDeadlineAssignedEvent:
    def test_trace_records_assignment(self):
        spec = JobSpec(0, chain(6), arrival=0, profit_fn=StepProfit(1.0, 40.0))
        result = Simulator(
            m=2,
            scheduler=GeneralProfitScheduler(epsilon=1.0),
            record_trace=True,
        ).run([spec])
        kinds = [e.kind for e in result.trace.events]
        assert EventKind.DEADLINE_ASSIGNED in kinds
        event = next(
            e for e in result.trace.events
            if e.kind == EventKind.DEADLINE_ASSIGNED
        )
        assert event.value == result.records[0].assigned_deadline


class TestSNSStateConsistency:
    def test_bands_track_exactly_started_set(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=40, m=8, load=4.0, epsilon=1.0, seed=17)
        )
        sched = SNSScheduler(epsilon=1.0)

        class Watch:
            """Assert bands == Q after every event."""

            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                attr = getattr(self.inner, name)
                if name in ("on_arrival", "on_completion", "on_expiry"):
                    def wrapped(job, t):
                        attr(job, t)
                        q_ids = {
                            s.job_id for s in self.inner.started_states()
                        }
                        band_ids = {
                            jid for jid, _, _ in self.inner.bands.items()
                        }
                        assert q_ids == band_ids
                    return wrapped
                return attr

        Simulator(m=8, scheduler=Watch(sched)).run(specs)

    def test_started_ids_superset_of_completions(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=30, m=8, load=2.0, epsilon=1.0, seed=18)
        )
        sched = SNSScheduler(epsilon=1.0)
        result = Simulator(m=8, scheduler=sched).run(specs)
        completed = {
            jid for jid, rec in result.records.items() if rec.completed
        }
        assert completed <= sched.started_ids


class TestProfitSchedulerEdges:
    def test_all_jobs_rejected_run_terminates(self):
        # zero-peak functions: everything rejected, engine must not hang
        specs = [
            JobSpec(i, chain(4), arrival=i, profit_fn=StepProfit(0.0, 50.0))
            for i in range(5)
        ]
        result = Simulator(
            m=2, scheduler=GeneralProfitScheduler(epsilon=1.0)
        ).run(specs)
        assert result.total_profit == 0.0
        assert all(r.expired or r.abandoned for r in result.records.values())

    def test_sequential_arrival_chain_of_assignments(self):
        # many identical jobs: assigned deadlines must be non-decreasing
        # (later arrivals find earlier slots taken)
        fn = StepProfit(1.0, 200.0)
        specs = [
            JobSpec(i, chain(8), arrival=0, profit_fn=fn) for i in range(4)
        ]
        sched = GeneralProfitScheduler(epsilon=1.0)
        Simulator(m=2, scheduler=sched).run(specs)
        deadlines = [
            sched.states[i].assigned_relative_deadline
            for i in range(4)
            if not sched.states[i].rejected
        ]
        assert deadlines == sorted(deadlines)
