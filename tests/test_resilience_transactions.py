"""Transactional steal tests: journal durability, torn tails, replay.

The steal journal's promise is exactly-one placement for every
cross-shard move, no matter where a crash lands inside the
intent / transfer / commit triple.  These tests drive the journal and
its replay helpers directly over real in-process shards, including the
regression for a replayed submission hiding in the engine-pending heap
(invisible to both the active probe and the queue probes).
"""

import os
from dataclasses import replace

import pytest

from repro.cluster import ShardConfig
from repro.cluster.shard import InProcessShard
from repro.resilience.transactions import (
    StealJournal,
    reconcile_shard,
    resolve_pending,
)
from repro.workloads import WorkloadConfig, generate_workload


def make_spec(job_id=0, arrival=0, deadline=10_000):
    """One generated job with a generous deadline, renumbered."""
    base = generate_workload(
        WorkloadConfig(n_jobs=1, m=4, load=1.0, epsilon=1.0, seed=9)
    )[0]
    return replace(
        base, job_id=job_id, arrival=arrival, deadline=deadline
    )


def make_shard(index):
    shard = InProcessShard(
        index, ShardConfig(m=2, scheduler="sns", scheduler_kwargs={})
    )
    shard.start()
    return shard


class FakeCluster:
    def __init__(self, shards):
        self.shards = shards


def live_on(shard, job_id):
    """True when the job is live in the shard's engine (probe+restore)."""
    payload = shard.extract_running(job_id)
    if payload is None:
        return False
    shard.inject_running(payload, shard.stats().now)
    return True


class TestJournalLifecycle:
    def test_triple_settles_and_counts(self, tmp_path):
        journal = StealJournal(tmp_path / "steals.txn")
        txn_id = journal.begin(t=5, job_id=3, src=0, dst=1, kind="parked")
        journal.transfer(txn_id, {"spec": {"job_id": 3}})
        assert journal.pending() and journal.txns[txn_id].pending
        journal.commit(txn_id)
        assert not journal.pending()
        assert journal.txns[txn_id].settled_seq == journal.seq == 3
        assert journal.counts()["committed"] == 1
        journal.close()

    def test_durable_reopen_restores_states(self, tmp_path):
        path = tmp_path / "steals.txn"
        with StealJournal(path) as journal:
            a = journal.begin(t=1, job_id=1, src=0, dst=1, kind="parked")
            journal.transfer(a, {"spec": {"job_id": 1}})
            journal.commit(a)
            b = journal.begin(t=2, job_id=2, src=1, dst=0, kind="starved")
            journal.abort(b, "victim-vanished")
            c = journal.begin(t=3, job_id=3, src=0, dst=1, kind="parked")
            journal.transfer(c, {"spec": {"job_id": 3}})
        reopened = StealJournal(path)
        assert reopened.truncated_bytes == 0
        assert reopened.seq == 7
        assert reopened.txns[a].state == "committed"
        assert reopened.txns[a].settled_seq == 3
        assert reopened.txns[b].state == "aborted"
        assert reopened.txns[b].reason == "victim-vanished"
        assert reopened.txns[c].state == "transfer"
        assert [t.txn_id for t in reopened.pending()] == [c]
        reopened.close()

    def test_memory_mode_needs_no_file(self):
        journal = StealJournal(None)
        txn_id = journal.begin(t=0, job_id=0, src=0, dst=1, kind="parked")
        journal.abort(txn_id, "no-transfer")
        assert journal.counts()["aborted"] == 1
        journal.close()  # no-op


class TestTornTail:
    def test_commit_sheared_off_recovers_to_pending(self, tmp_path):
        """A torn tail inside the triple: intent+transfer survive, the
        commit frame is sheared off -- recovery reopens the move as
        *pending* (never as a phantom commit) and truncates the tear."""
        path = tmp_path / "steals.txn"
        journal = StealJournal(path, fsync_every=1)
        txn_id = journal.begin(t=7, job_id=4, src=0, dst=1, kind="parked")
        journal.transfer(txn_id, {"spec": {"job_id": 4}})
        journal.sync()
        intact = os.path.getsize(path)
        journal.commit(txn_id)
        journal.close()
        # shear the commit: keep a few garbage bytes of its frame
        with open(path, "r+b") as fh:
            fh.truncate(intact + 3)
        reopened = StealJournal(path)
        assert reopened.truncated_bytes == 3
        assert os.path.getsize(path) == intact
        txn = reopened.txns[txn_id]
        assert txn.state == "transfer" and txn.pending
        reopened.close()

    def test_torn_triple_aborts_not_duplicates(self, tmp_path):
        """End to end over real shards: extraction journaled, commit
        lost to a torn tail, donor still holds the job -- resolution
        aborts (src keeps it); the receiver never gets a copy."""
        path = tmp_path / "steals.txn"
        spec = make_spec(job_id=4, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        src.submit(spec, 0)
        src.advance_to(5)
        assert live_on(src, 4)

        journal = StealJournal(path, fsync_every=1)
        txn_id = journal.begin(t=5, job_id=4, src=0, dst=1, kind="parked")
        payload = src.extract_running(4)
        journal.transfer(txn_id, payload)
        src.inject_running(payload, 5)  # crash before phase 2: donor
        journal.sync()                  # kept it, nothing landed on dst
        intact = os.path.getsize(path)
        journal.commit(txn_id)
        journal.close()
        with open(path, "r+b") as fh:
            fh.truncate(intact + 2)

        reopened = StealJournal(path)
        outcomes = resolve_pending(reopened, cluster, 6)
        assert [o["outcome"] for o in outcomes] == ["aborted"]
        assert reopened.txns[txn_id].reason == "src-retained"
        assert live_on(src, 4)
        assert not live_on(dst, 4)
        reopened.close()

    def test_lost_intent_is_skipped(self, tmp_path):
        path = tmp_path / "steals.txn"
        journal = StealJournal(path, fsync_every=1)
        magic_plus_first = None
        journal.begin(t=1, job_id=1, src=0, dst=1, kind="parked")
        journal.sync()
        magic_plus_first = os.path.getsize(path)
        journal.begin(t=2, job_id=2, src=0, dst=1, kind="parked")
        journal.sync()
        second_intent_end = os.path.getsize(path)
        journal.commit(1)
        journal.close()
        # tear out the second intent but keep its commit unreadable too:
        # drop everything from the second intent on, then re-append the
        # commit bytes so recovery sees a commit for an unknown txn
        with open(path, "rb") as fh:
            data = fh.read()
        commit_bytes = data[second_intent_end:]
        with open(path, "wb") as fh:
            fh.write(data[:magic_plus_first] + commit_bytes)
        reopened = StealJournal(path)
        assert 1 not in reopened.txns  # commit for a lost intent: skipped
        assert reopened.txns[0].state == "intent"
        reopened.close()


class TestResolvePending:
    def test_no_transfer_aborts(self):
        spec = make_spec(job_id=7)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        journal = StealJournal(None)
        # intent only, and the donor lost the job with a crash
        journal.begin(t=3, job_id=7, src=0, dst=1, kind="parked")
        outcomes = resolve_pending(journal, cluster, 4)
        assert [o["outcome"] for o in outcomes] == ["aborted"]
        assert journal.txns[0].reason == "no-transfer"

    def test_payload_lands_on_dst_as_commit(self):
        spec = make_spec(job_id=8)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        src.submit(spec, 0)
        src.advance_to(5)
        journal = StealJournal(None)
        txn_id = journal.begin(t=5, job_id=8, src=0, dst=1, kind="parked")
        journal.transfer(txn_id, src.extract_running(8))
        # donor extracted and crashed; receiver never got the inject
        outcomes = resolve_pending(journal, cluster, 6)
        assert [o["outcome"] for o in outcomes] == ["committed"]
        assert live_on(dst, 8)
        assert not live_on(src, 8)

    def test_replay_pending_copy_on_src_aborts(self):
        """Donor recovery replayed the job at the current instant: it
        is engine-pending (invisible to the active and queue probes)
        yet must still count as 'src retained'."""
        spec = make_spec(job_id=9, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        src.submit(spec, 0)
        src.advance_to(5)
        journal = StealJournal(None)
        txn_id = journal.begin(t=5, job_id=9, src=0, dst=1, kind="parked")
        journal.transfer(txn_id, src.extract_running(9))
        # the replayed copy re-enters at now: pending, not active
        src.submit(replace(spec, arrival=5), 5)
        assert src.extract_running(9) is None  # invisible to the probe
        outcomes = resolve_pending(journal, cluster, 5)
        assert [o["outcome"] for o in outcomes] == ["aborted"]
        assert journal.txns[txn_id].reason == "src-pending"
        src.advance_to(7)
        assert live_on(src, 9)
        assert not live_on(dst, 9)


class TestReconcileShard:
    def _committed_move(self, journal, src, dst, spec, t=5):
        src.submit(spec, 0)
        src.advance_to(t)
        txn_id = journal.begin(
            t=t, job_id=spec.job_id, src=0, dst=1, kind="parked"
        )
        payload = src.extract_running(spec.job_id)
        journal.transfer(txn_id, payload)
        dst.inject_running(payload, t)
        journal.commit(txn_id)
        return txn_id

    def test_pending_replay_copy_is_purged(self):
        """Regression: a donor recovered *after* the steal tick replays
        the stolen job's submission; the copy sits in the engine-pending
        heap where neither extract nor take_queued can see it, and used
        to survive reconciliation as a duplicate terminal record."""
        spec = make_spec(job_id=11, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        journal = StealJournal(None)
        self._committed_move(journal, src, dst, spec)
        # post-recovery replay resurrects the submission at now
        src.submit(replace(spec, arrival=5), 5)
        actions = reconcile_shard(journal, cluster, 0, 5)
        assert actions == [{"job": 11, "action": "purged-pending"}]
        src.advance_to(50)
        assert not live_on(src, 11)
        assert live_on(dst, 11)

    def test_active_replay_copy_is_discarded(self):
        spec = make_spec(job_id=12, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        journal = StealJournal(None)
        self._committed_move(journal, src, dst, spec)
        src.submit(replace(spec, arrival=5), 5)
        src.advance_to(8)  # the copy is released: live on the donor
        actions = reconcile_shard(journal, cluster, 0, 8)
        assert actions == [{"job": 12, "action": "discarded"}]
        assert not live_on(src, 12)

    def test_receiver_restore_reinjects_lost_commit(self):
        """The receiver rolled back to a checkpoint that predates the
        injection: the committed payload is re-injected from the
        journal."""
        spec = make_spec(job_id=13, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        journal = StealJournal(None)
        self._committed_move(journal, src, dst, spec)
        dst.restore(None)  # receiver lost everything after its start
        actions = reconcile_shard(journal, cluster, 1, 6)
        assert actions == [{"job": 13, "action": "reinjected"}]
        assert live_on(dst, 13)

    def test_checkpoint_mark_skips_settled_moves(self):
        spec = make_spec(job_id=14, arrival=0)
        src, dst = make_shard(0), make_shard(1)
        cluster = FakeCluster([src, dst])
        journal = StealJournal(None)
        txn_id = self._committed_move(journal, src, dst, spec)
        settled = journal.txns[txn_id].settled_seq
        # a checkpoint taken after the commit bakes the move in: the
        # reconcile pass must not "repair" it back
        actions = reconcile_shard(
            journal, cluster, 1, 6, since_seq=settled
        )
        assert actions == []
        assert live_on(dst, 14)


class TestForgetPending:
    def test_forget_frees_the_id(self):
        shard = make_shard(0)
        spec = make_spec(job_id=21, arrival=0)
        shard.submit(spec, 0)
        withdrawn = shard.forget_pending(21)
        assert withdrawn is not None and withdrawn.job_id == 21
        assert shard.forget_pending(21) is None
        # the id is free again: a resubmission is legal, not a duplicate
        shard.submit(spec, 0)
        shard.advance_to(3)
        assert live_on(shard, 21)

    def test_forget_misses_released_jobs(self):
        shard = make_shard(0)
        shard.submit(make_spec(job_id=22, arrival=0), 0)
        shard.advance_to(3)
        assert shard.forget_pending(22) is None
        assert live_on(shard, 22)
