"""Property-based tests of the DAG substrate (hypothesis).

The key property is the paper's Observation 2 / Graham bound: executing
a job greedily on ``n`` dedicated processors finishes within
``(W - L)/n + L`` time *regardless* of which ready nodes are picked.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DAGJob, validate_structure
from repro.dag.validate import validate_job_state
from tests.conftest import random_dags


@given(random_dags())
def test_structure_invariants(dag):
    validate_structure(dag)
    assert dag.span <= dag.total_work + 1e-9
    assert dag.span >= float(dag.work.max()) - 1e-9
    assert dag.num_nodes >= len(dag.sources()) >= 1
    assert len(dag.sinks()) >= 1


@given(random_dags())
def test_tail_lengths_bound_span(dag):
    tails = dag.tail_lengths()
    assert float(tails.max()) == dag.span
    for u in range(dag.num_nodes):
        for v in dag.successors(u):
            assert tails[u] >= tails[v] + dag.work[u] - 1e-9


@given(random_dags(), st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_serialization_round_trip(dag, _seed):
    from repro.dag import structure_from_json, structure_to_json

    assert structure_from_json(structure_to_json(dag)) == dag


def _greedy_run(dag, n: int, rng: np.random.Generator) -> int:
    """Execute with n processors and random ready picks; unit steps."""
    job = DAGJob(dag)
    steps = 0
    while not job.is_complete():
        ready = list(job.ready_nodes())
        if len(ready) > n:
            idx = rng.choice(len(ready), size=n, replace=False)
            picked = [ready[i] for i in idx]
        else:
            picked = ready
        job.mark_running(picked)
        for node in picked:
            job.process(node, 1.0)
        job.mark_preempted(job.ready_nodes())
        steps += 1
        assert steps <= dag.total_work + 1  # absolute sanity
    validate_job_state(job)
    return steps


@settings(max_examples=60, deadline=None)
@given(
    random_dags(max_nodes=10, max_work=4),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_observation2_graham_bound(dag, n, seed):
    """Greedy n-processor execution finishes within ceil((W-L)/n + L)
    steps for integer node works, no matter the pick order."""
    rng = np.random.default_rng(seed)
    steps = _greedy_run(dag, n, rng)
    bound = math.ceil((dag.total_work - dag.span) / n + dag.span)
    assert steps <= bound
    # ... and never below the trivial per-step work lower bound
    assert steps >= math.ceil(dag.total_work / n / dag.work.max())


@settings(max_examples=40, deadline=None)
@given(random_dags(max_nodes=10, max_work=4))
def test_observation1_span_decreases_when_all_ready_run(dag):
    """Running *all* ready nodes reduces the remaining span by exactly
    the step size (speed 1, unit steps, integer works)."""
    job = DAGJob(dag)
    while not job.is_complete():
        before = job.remaining_span()
        ready = list(job.ready_nodes())
        job.mark_running(ready)
        for node in ready:
            job.process(node, 1.0)
        after = job.remaining_span()
        assert after <= before - 1.0 + 1e-9
