"""Tests for the HPC DAG shapes, preemption overhead, and AdmissionEDF."""

import pytest

from repro.baselines import AdmissionEDF, FIFOScheduler, GlobalEDF
from repro.dag import (
    pipeline,
    reduction_tree,
    validate_structure,
    wavefront,
)
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob


class TestWavefront:
    def test_shape(self):
        dag = wavefront(3, 4)
        assert dag.num_nodes == 12
        assert dag.span == 3 + 4 - 1  # anti-diagonal frontier
        assert dag.total_work == 12.0
        validate_structure(dag)

    def test_corner_dependencies(self):
        dag = wavefront(3, 3)
        assert dag.sources() == (0,)
        assert dag.sinks() == (8,)
        # center node (1,1)=4 depends on (0,1)=1 and (1,0)=3
        assert set(dag.predecessors(4)) == {1, 3}

    def test_single_row_is_chain(self):
        dag = wavefront(1, 5)
        assert dag.span == 5.0

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            wavefront(0, 3)

    def test_execution_follows_diagonals(self):
        spec = JobSpec(0, wavefront(4, 4), arrival=0, deadline=1000)
        result = Simulator(m=4, scheduler=FIFOScheduler()).run([spec])
        # with enough processors, completion = span
        assert result.records[0].completion_time == 7


class TestReductionTree:
    def test_shape(self):
        dag = reduction_tree(8)
        assert dag.num_nodes == 8 + 4 + 2 + 1
        assert dag.span == 4.0  # leaf + 3 levels
        assert len(dag.sinks()) == 1
        validate_structure(dag)

    def test_single_leaf(self):
        assert reduction_tree(1).num_nodes == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            reduction_tree(6)
        with pytest.raises(ValueError):
            reduction_tree(0)

    def test_parallel_completion(self):
        spec = JobSpec(0, reduction_tree(8), arrival=0, deadline=1000)
        result = Simulator(m=8, scheduler=FIFOScheduler()).run([spec])
        assert result.records[0].completion_time == 4


class TestPipeline:
    def test_shape(self):
        dag = pipeline(3, 4)
        # 3 stages x (fork + join + 4 mids)
        assert dag.num_nodes == 18
        assert dag.span == 9.0  # 3 per stage
        validate_structure(dag)

    def test_stages_serialize(self):
        dag = pipeline(2, 8)
        spec = JobSpec(0, dag, arrival=0, deadline=1000)
        result = Simulator(m=8, scheduler=FIFOScheduler()).run([spec])
        assert result.records[0].completion_time == 6

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            pipeline(0, 4)


class TestPreemptionOverhead:
    def test_zero_overhead_is_default_model(self):
        from repro.dag import chain

        spec = JobSpec(0, chain(10), arrival=0, deadline=100)
        a = Simulator(m=1, scheduler=FIFOScheduler()).run([spec])
        b = Simulator(
            m=1, scheduler=FIFOScheduler(), preemption_overhead=0.0
        ).run([spec])
        assert a.records[0].completion_time == b.records[0].completion_time

    def test_overhead_slows_preempted_jobs(self):
        from repro.dag import block

        # EDF preempts job 1 when the earlier-deadline job 0 arrives
        specs = [
            JobSpec(1, block(1, node_work=10.0), arrival=0, deadline=100),
            JobSpec(0, block(1, node_work=4.0), arrival=2, deadline=8),
        ]
        free = Simulator(m=1, scheduler=GlobalEDF()).run(list(specs))
        costly = Simulator(
            m=1, scheduler=GlobalEDF(), preemption_overhead=3.0
        ).run(list(specs))
        assert costly.counters.preemptions >= 1
        assert (
            costly.records[1].completion_time
            > free.records[1].completion_time
        )

    def test_overhead_capped_at_node_work(self):
        from repro.dag import DAGJob, chain

        job = DAGJob(chain(1, node_work=5.0))
        job.mark_running([0])
        job.process(0, 2.0)
        job.mark_preempted([0])
        job.add_overhead(0, 100.0)
        assert job.node_remaining(0) == 5.0

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            Simulator(
                m=1, scheduler=FIFOScheduler(), preemption_overhead=-1.0
            )


class TestAdmissionEDF:
    def _view(self, spec):
        return ActiveJob(spec).view

    def test_admits_feasible(self):
        from repro.dag import chain

        sched = AdmissionEDF()
        sched.on_start(4, 1.0)
        v = self._view(JobSpec(0, chain(4), arrival=0, deadline=20))
        sched.on_arrival(v, 0)
        assert 0 in sched.admitted

    def test_rejects_span_infeasible(self):
        from repro.dag import chain

        sched = AdmissionEDF()
        sched.on_start(4, 1.0)
        v = self._view(JobSpec(0, chain(10), arrival=0, deadline=5))
        sched.on_arrival(v, 0)
        assert 0 not in sched.admitted
        assert sched.allocate(0) == {}

    def test_rejects_overcommitment(self):
        from repro.dag import block

        sched = AdmissionEDF()
        sched.on_start(2, 1.0)
        # each job: 16 work due in 10 steps on m=2 => one fits, two don't
        v0 = self._view(JobSpec(0, block(16), arrival=0, deadline=10))
        v1 = self._view(JobSpec(1, block(16), arrival=0, deadline=10))
        sched.on_arrival(v0, 0)
        sched.on_arrival(v1, 0)
        assert 0 in sched.admitted
        assert 1 not in sched.admitted

    def test_end_to_end_beats_edf_on_trap(self):
        from repro.workloads import admission_trap

        specs = admission_trap(8, 15)
        ac = Simulator(m=8, scheduler=AdmissionEDF()).run(list(specs))
        edf = Simulator(m=8, scheduler=GlobalEDF()).run(list(specs))
        assert ac.total_profit > edf.total_profit

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            AdmissionEDF(utilization_cap=0.0)


class TestE13:
    def test_runs_and_s_is_flat(self):
        from repro.experiments.e13_preemption_cost import run

        result = run(quick=True)
        overhead_col = 0
        s_col = result.headers.index("S(eps=1)")
        values = [row[s_col] for row in result.rows]
        # S's profit must not degrade materially with overhead
        assert min(values) >= max(values) - 0.05
