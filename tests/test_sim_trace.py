"""Unit tests for repro.sim.trace."""

from repro.sim.trace import AllocationSlice, EventKind, Trace


class TestSliceRecording:
    def test_contiguous_identical_slices_merge(self):
        trace = Trace(m=4, speed=1.0)
        entries = ((0, 2, 2),)
        trace.slice(0, 5, entries)
        trace.slice(5, 9, entries)
        assert len(trace.slices) == 1
        assert trace.slices[0].t0 == 0
        assert trace.slices[0].t1 == 9

    def test_different_entries_do_not_merge(self):
        trace = Trace(m=4, speed=1.0)
        trace.slice(0, 5, ((0, 2, 2),))
        trace.slice(5, 9, ((0, 2, 1),))
        assert len(trace.slices) == 2

    def test_gap_prevents_merge(self):
        trace = Trace(m=4, speed=1.0)
        entries = ((0, 2, 2),)
        trace.slice(0, 5, entries)
        trace.slice(7, 9, entries)
        assert len(trace.slices) == 2

    def test_empty_slice_dropped(self):
        trace = Trace(m=4, speed=1.0)
        trace.slice(5, 5, ((0, 1, 1),))
        assert trace.slices == []


class TestQueries:
    def _trace(self) -> Trace:
        trace = Trace(m=4, speed=1.0)
        trace.event(0, EventKind.ARRIVAL, 0)
        trace.event(0, EventKind.ARRIVAL, 1)
        trace.slice(0, 4, ((0, 2, 2), (1, 1, 1)))
        trace.slice(4, 6, ((1, 3, 2),))
        trace.event(6, EventKind.COMPLETION, 1)
        trace.event(9, EventKind.EXPIRY, 0)
        return trace

    def test_processor_steps_of(self):
        trace = self._trace()
        assert trace.processor_steps_of(0) == 8  # 2 procs * 4 steps
        assert trace.processor_steps_of(1) == 4 + 6

    def test_busy_steps_of(self):
        trace = self._trace()
        assert trace.busy_steps_of(1) == 4 + 4

    def test_utilization(self):
        trace = self._trace()
        busy = (2 + 1) * 4 + 2 * 2
        assert trace.utilization() == busy / (4 * 6)

    def test_utilization_empty(self):
        assert Trace(m=4, speed=1.0).utilization() == 0.0

    def test_events_of_kind(self):
        trace = self._trace()
        arrivals = list(trace.events_of_kind(EventKind.ARRIVAL))
        assert [e.job_id for e in arrivals] == [0, 1]

    def test_job_events(self):
        trace = self._trace()
        assert [e.kind for e in trace.job_events(0)] == [
            EventKind.ARRIVAL,
            EventKind.EXPIRY,
        ]

    def test_max_concurrent_allocation(self):
        assert self._trace().max_concurrent_allocation() == 3


class TestAllocationSlice:
    def test_aggregates(self):
        sl = AllocationSlice(2, 6, ((0, 3, 2), (1, 1, 1)))
        assert sl.duration == 4
        assert sl.allocated == 4
        assert sl.busy == 3
