"""Tests for the metrics registry, JSONL export, and the repro-serve CLI."""

import io
import json

import pytest

from repro.core import SNSScheduler
from repro.service import MetricsRegistry, SchedulingService, make_shed_policy
from repro.service.cli import main as serve_main
from repro.workloads import WorkloadConfig, generate_workload


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert reg.values()["x"] == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(1)
        assert reg.values()["depth"] == 1.0

    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")

    def test_sample_and_jsonl(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.sample(10)
        reg.counter("n").inc()
        reg.sample(20)
        lines = reg.to_jsonl().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"t": 10, "n": 2.0}
        assert json.loads(lines[1]) == {"t": 20, "n": 3.0}

    def test_streaming_sink(self):
        sink = io.StringIO()
        reg = MetricsRegistry(sink=sink, keep_samples=False)
        reg.gauge("g").set(7)
        reg.sample(1)
        assert reg.samples == []
        assert json.loads(sink.getvalue()) == {"t": 1, "g": 7.0}

    def test_write_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.sample(5)
        path = tmp_path / "m.jsonl"
        reg.write_jsonl(str(path))
        assert json.loads(path.read_text().strip()) == {"t": 5, "n": 1.0}

    def test_state_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(4)
        reg.gauge("g").set(2)
        fresh = MetricsRegistry()
        fresh.restore_from_dict(reg.state_to_dict())
        assert fresh.values() == reg.values()


class TestCrashSafeExport:
    def test_export_is_atomic_on_failure(self, tmp_path, monkeypatch):
        """An export interrupted mid-write leaves the previous complete
        file intact and no temp file behind."""
        import os

        from repro.service import telemetry

        path = tmp_path / "m.jsonl"
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.sample(1)
        reg.write_jsonl(str(path))
        good = path.read_text()

        reg.sample(2)
        # make to_jsonl blow up after write_jsonl opened the temp file
        monkeypatch.setattr(
            MetricsRegistry,
            "to_jsonl",
            lambda self: (_ for _ in ()).throw(OSError("disk gone")),
        )
        with pytest.raises(OSError):
            reg.write_jsonl(str(path))
        assert path.read_text() == good  # old export untouched
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []

    def test_export_replaces_whole_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"stale": true}\n' * 100)
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.sample(7)
        reg.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {"t": 7, "n": 2.0}


class TestMergeRegistries:
    def _shardlike(self, completed, utilization):
        reg = MetricsRegistry()
        reg.counter("completed_total").inc(completed)
        reg.gauge("utilization").set(utilization)
        return reg

    def test_counters_sum_and_mean_gauges_average(self):
        from repro.service.telemetry import merge_registries

        merged = merge_registries(
            [self._shardlike(3, 0.5), self._shardlike(4, 1.0)]
        )
        values = merged.values()
        assert values["completed_total"] == 7.0
        assert values["utilization"] == pytest.approx(0.75)

    def test_plain_gauges_sum(self):
        from repro.service.telemetry import merge_registries

        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("queue_depth").set(3)
        b.gauge("queue_depth").set(5)
        assert merge_registries([a, b]).values()["queue_depth"] == 8.0

    def test_inputs_not_modified(self):
        from repro.service.telemetry import merge_registries

        a = self._shardlike(3, 0.5)
        before = a.values()
        merge_registries([a, self._shardlike(4, 1.0)])
        assert a.values() == before

    def test_single_registry_passthrough(self):
        from repro.service.telemetry import merge_registries

        merged = merge_registries([self._shardlike(3, 0.5)])
        assert merged.values() == {
            "completed_total": 3.0,
            "utilization": 0.5,
        }

    def test_mean_gauges_iterator_not_exhausted(self):
        """Regression: a single-use iterator as ``mean_gauges``.

        ``merge_from`` materializes ``mean_gauges`` per call, so before
        the fix an iterator was drained by the first registry's merge
        and every later registry's ratio gauge was *summed* instead of
        averaged (0.5 + 1.0 + 0.9 instead of their mean).
        """
        from repro.service.telemetry import merge_registries

        shards = [
            self._shardlike(3, 0.5),
            self._shardlike(4, 1.0),
            self._shardlike(5, 0.9),
        ]
        merged = merge_registries(shards, mean_gauges=iter(["utilization"]))
        values = merged.values()
        assert values["completed_total"] == 12.0
        assert values["utilization"] == pytest.approx((0.5 + 1.0 + 0.9) / 3)

    def test_mean_gauge_defined_on_single_shard_survives(self):
        """A ratio gauge only one registry defines is not averaged away
        (count 1 means no division)."""
        from repro.service.telemetry import merge_registries

        plain = MetricsRegistry()
        plain.counter("completed_total").inc(2)
        merged = merge_registries([plain, self._shardlike(3, 0.8)])
        assert merged.values()["utilization"] == pytest.approx(0.8)

    def test_merge_from_accumulates(self):
        target = MetricsRegistry()
        target.merge_from(self._shardlike(1, 0.2))
        target.merge_from(self._shardlike(2, 0.4))
        assert target.values()["completed_total"] == 3.0


class TestRegistryHistograms:
    def test_histogram_lazily_created_and_shared(self):
        reg = MetricsRegistry()
        hist = reg.histogram("decision_seconds")
        assert reg.histogram("decision_seconds") is hist
        hist.observe(0.25)
        hist.observe(0.75)
        summary = reg.histograms()["decision_seconds"]
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(0.5)

    def test_histograms_stay_out_of_values_and_samples(self):
        """Observing a histogram must not perturb samples, values or
        checkpoints -- they stay bit-identical with observability on."""
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        before_values = reg.values()
        before_state = reg.state_to_dict()
        reg.histogram("queue_depth").observe(7.0)
        assert reg.values() == before_values
        assert reg.state_to_dict() == before_state
        assert reg.sample(5) == {"t": 5, "n": 3.0}

    def test_merge_from_combines_histograms(self):
        from repro.service.telemetry import merge_registries

        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            a.histogram("admission_latency").observe(v)
        for v in (10.0, 20.0):
            b.histogram("admission_latency").observe(v)
        merged = merge_registries([a, b])
        summary = merged.histograms()["admission_latency"]
        assert summary["count"] == 5
        assert summary["min"] == 1.0
        assert summary["max"] == 20.0
        assert summary["mean"] == pytest.approx(36.0 / 5)

    def test_merge_histograms_inputs_untouched(self):
        from repro.service.telemetry import merge_registries

        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        merge_registries([a, b])
        assert a.histograms()["h"]["count"] == 1
        assert b.histograms()["h"]["count"] == 1

    def test_merge_histogram_window_keeps_newest(self):
        """The merged window holds the newest ``capacity`` observations
        (lifetime aggregates stay exact beyond it)."""
        from repro.service.telemetry import merge_registries

        a, b = MetricsRegistry(), MetricsRegistry()
        for v in range(6):
            a.histogram("h", capacity=4).observe(float(v))
        b.histogram("h", capacity=4).observe(100.0)
        merged = merge_registries([a, b])
        hist = merged.histogram("h", capacity=4)
        assert hist.count == 7
        assert hist.total == pytest.approx(sum(range(6)) + 100.0)
        # a's own window holds its newest 4 (2..5); merging b's 100 on
        # top keeps the newest 4 of the concatenation
        assert hist.window() == [3.0, 4.0, 5.0, 100.0]
        assert hist.summary()["max"] == 100.0

    def test_histogram_only_registry_merges(self):
        """A registry with histograms but no counters/gauges still
        contributes (regression guard for the merge loop ordering)."""
        from repro.service.telemetry import merge_registries

        a = MetricsRegistry()
        a.histogram("h").observe(2.0)
        merged = merge_registries([a, MetricsRegistry()])
        assert merged.histograms()["h"]["count"] == 1

    def test_service_populates_queue_depth_histogram(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=60, m=4, load=3.0, seed=2)
        )
        service = SchedulingService(
            4,
            SNSScheduler(epsilon=1.0),
            capacity=8,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=4,
        )
        service.run_stream(specs)
        summary = service.metrics.histograms()["queue_depth"]
        assert summary["count"] > 0
        assert summary["max"] >= summary["min"] >= 0.0

    def test_service_records_admission_latency(self):
        """Backpressured releases record queue-wait in the
        ``admission_latency`` histogram; pass-through admits are 0."""
        specs = generate_workload(
            WorkloadConfig(n_jobs=80, m=4, load=3.0, seed=3)
        )
        service = SchedulingService(
            4,
            SNSScheduler(epsilon=1.0),
            capacity=16,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=2,
        )
        service.run_stream(specs)
        summary = service.metrics.histograms()["admission_latency"]
        assert summary["count"] > 0
        assert summary["min"] >= 0.0
        # with in-flight capped at 2 under 3x load, some job waited
        assert summary["max"] > 0.0


class TestServiceTelemetry:
    def test_overload_run_populates_metrics(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=100, m=4, load=4.0, seed=8)
        )
        service = SchedulingService(
            4,
            SNSScheduler(epsilon=1.0),
            capacity=6,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=5,
            sample_every=25,
        )
        result = service.run_stream(specs)
        assert len(result.metrics.samples) >= 2
        final = result.metrics.samples[-1]
        assert final["submitted_total"] == len(specs)
        assert final["released_total"] + final["shed_total"] == len(specs)
        assert final["shed_total"] == result.num_shed
        assert final["profit_total"] == pytest.approx(result.total_profit)
        assert final["queue_depth"] == 0.0
        assert final["in_flight"] == 0.0
        assert 0.0 <= final["utilization"] <= 1.0
        # monotone time stamps
        stamps = [s["t"] for s in result.metrics.samples]
        assert stamps == sorted(stamps)


class TestCLI:
    def test_smoke_with_metrics_and_checkpoint(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        rc = serve_main(
            [
                "--n-jobs", "120",
                "--m", "4",
                "--load", "3.0",
                "--seed", "1",
                "--capacity", "8",
                "--max-in-flight", "6",
                "--policy", "reject-lowest-density",
                "--metrics", str(metrics_path),
                "--report-every", "50",
                "--checkpoint-at", "50",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-serve:" in out
        assert "checkpoint:" in out
        assert "total_profit:" in out
        lines = metrics_path.read_text().strip().splitlines()
        assert lines
        record = json.loads(lines[-1])
        assert record["submitted_total"] == 120

    def test_cli_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            serve_main(["--policy", "bogus"])
