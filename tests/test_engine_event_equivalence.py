"""Every engine backend vs the event-driven reference.

``repro.sim.backends`` exposes three interchangeable cores: the event
engine (reference semantics), the frozen legacy stepper (pre-rewrite
oracle) and the numpy array engine (struct-of-arrays hot path).  Each
must be *bit-identical* to the others -- every record field, every
counter, the end time and the float profit sum -- across DAG families,
seeds, schedulers, speeds, preemption overheads, and both the batch
and streaming drivers.  The ``engine_backend`` conftest fixture runs
every test here once per backend (the ``event`` leg doubles as a
determinism check of the reference itself).

Also here: the parallel-sweep regression tests -- a 2-worker
process-pool sweep must equal the serial sweep cell for cell, and the
adaptive worker probe must never fan out on hardware that cannot
profit from it.

The deeper hypothesis matrix (all-pairs, lockstep divergence location,
snapshot round-trips) lives in ``tests/test_engine_differential.py``.
"""

from dataclasses import asdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import run_sweep, sweep_values
from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.experiments.e03_thm2 import _thm2_value
from repro.sim import make_engine
from repro.workloads import WorkloadConfig, generate_workload

FACTORIES = {
    "edf": GlobalEDF,
    "fifo": FIFOScheduler,
    "greedy": GreedyDensity,
    "sns": lambda: SNSScheduler(epsilon=1.0),
}


def _observables(result):
    """Everything a caller can see, as one comparable structure."""
    return (
        {
            jid: (
                rec.arrival,
                rec.deadline,
                rec.completion_time,
                rec.profit,
                rec.processor_steps,
                rec.expired,
                rec.abandoned,
                rec.assigned_deadline,
            )
            for jid, rec in result.records.items()
        },
        asdict(result.counters),
        result.end_time,
        result.total_profit,
    )


def _run_batch(backend, specs, m, scheduler=None, **kw):
    scheduler = scheduler if scheduler is not None else SNSScheduler(epsilon=1.0)
    return make_engine(backend, m=m, scheduler=scheduler, **kw).run(specs)


def _run_stream(backend, specs, m, scheduler=None, **kw):
    """Drive the streaming API: submit in arrival order, advance between."""
    scheduler = scheduler if scheduler is not None else SNSScheduler(epsilon=1.0)
    sim = make_engine(backend, m=m, scheduler=scheduler, **kw)
    sim.start()
    for spec in sorted(specs, key=lambda sp: sp.arrival):
        sim.submit(spec, t=spec.arrival)
    return sim.finish()


class TestBitIdenticalAcrossBackends:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_schedulers_batch(self, engine_backend, name):
        specs = generate_workload(
            WorkloadConfig(n_jobs=40, m=8, load=2.0, epsilon=1.0, seed=7)
        )
        reference = _run_batch("event", specs, 8, FACTORIES[name]())
        subject = _run_batch(engine_backend, specs, 8, FACTORIES[name]())
        assert _observables(subject) == _observables(reference)

    @pytest.mark.parametrize(
        "family",
        ["chain", "fork_join", "layered", "gnp", "wavefront", "mixed"],
    )
    def test_dag_families_batch(self, engine_backend, family):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=25, m=8, load=2.0, family=family, epsilon=1.0, seed=3
            )
        )
        reference = _run_batch("event", specs, 8)
        subject = _run_batch(engine_backend, specs, 8)
        assert _observables(subject) == _observables(reference)

    # the fixture is an immutable backend-name string, so sharing it
    # across generated examples is sound
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        family=st.sampled_from(
            ["chain", "block", "fork_join", "layered", "gnp", "mixed"]
        ),
        load=st.sampled_from([0.5, 2.0, 6.0]),
        speed=st.sampled_from([1.0, 1.5, 2.0]),
        overhead=st.sampled_from([0.0, 1.0]),
        stream=st.booleans(),
    )
    def test_property(
        self, engine_backend, seed, family, load, speed, overhead, stream
    ):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=15, m=4, load=load, family=family, epsilon=1.0, seed=seed
            )
        )
        drive = _run_stream if stream else _run_batch
        reference = drive(
            "event", specs, 4, speed=speed, preemption_overhead=overhead
        )
        subject = drive(
            engine_backend, specs, 4, speed=speed, preemption_overhead=overhead
        )
        assert _observables(subject) == _observables(reference)

    def test_stream_equals_batch(self, engine_backend):
        specs = generate_workload(
            WorkloadConfig(n_jobs=30, m=8, load=2.5, epsilon=1.0, seed=11)
        )
        batch = _run_batch(engine_backend, specs, 8)
        stream = _run_stream(engine_backend, specs, 8)
        reference = _run_batch("event", specs, 8)
        assert _observables(batch) == _observables(reference)
        # the streaming driver takes one extra decision round per submit,
        # so counters differ; records and profit must not
        assert _observables(stream)[0] == _observables(batch)[0]
        assert stream.total_profit == batch.total_profit


class TestParallelSweepRegression:
    GRID = {
        "epsilon": [0.5, 1.0],
        "n_jobs": [15],
        "m": [4],
        "load": [2.0],
    }
    SEEDS = [0, 1, 2]

    def test_two_workers_equal_serial_cell_for_cell(self):
        serial = run_sweep(_thm2_value, self.GRID, self.SEEDS, workers=1)
        parallel = run_sweep(_thm2_value, self.GRID, self.SEEDS, workers=2)
        assert len(serial) == len(parallel)
        for cell_s, cell_p in zip(serial, parallel):
            assert cell_s.point == cell_p.point
            assert cell_s.aggregate == cell_p.aggregate

    def test_sweep_values_two_workers_equal_serial(self):
        serial = sweep_values(_thm2_value, self.GRID, self.SEEDS, workers=1)
        parallel = sweep_values(_thm2_value, self.GRID, self.SEEDS, workers=2)
        assert serial == parallel

    def test_env_var_resolution(self, monkeypatch):
        from repro.analysis.sweep import resolve_workers
        from repro.errors import SweepError

        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        assert resolve_workers() == 2
        assert resolve_workers(4) == 4  # explicit argument wins
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        assert resolve_workers() >= 1
        assert resolve_workers(0) >= 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "banana")
        with pytest.raises(SweepError):
            resolve_workers()
        with pytest.raises(SweepError):
            resolve_workers(-1)
