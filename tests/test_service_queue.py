"""Unit tests for the ingest queue and shed policies."""

import pytest

from repro.core import Constants, SNSScheduler
from repro.errors import WorkloadError
from repro.service import (
    IngestQueue,
    QueuedJob,
    RejectLowestDensity,
    RejectNewest,
    SHED_POLICIES,
    make_shed_policy,
    sns_density,
)
from repro.sim.jobs import JobSpec
from repro.workloads import WorkloadConfig, generate_workload
from repro.workloads.dag_families import make_family

import numpy as np


def make_entry(job_id, density, enqueued_at=0):
    structure = make_family("chain")(np.random.default_rng(job_id))
    spec = JobSpec(job_id, structure, arrival=0, deadline=1000, profit=1.0)
    return QueuedJob(spec=spec, enqueued_at=enqueued_at, density=density)


class TestDensity:
    def test_matches_scheduler_state(self):
        """sns_density must equal the density S computes at arrival."""
        from repro.sim.jobs import ActiveJob

        specs = generate_workload(
            WorkloadConfig(n_jobs=10, m=4, load=1.0, seed=3)
        )
        sched = SNSScheduler(epsilon=1.0)
        sched.on_start(4, 1.0)
        for spec in specs:
            state = sched.compute_state(ActiveJob(spec).view)
            assert sns_density(spec, 4, sched.constants) == pytest.approx(
                state.density
            )

    def test_profit_fn_job_falls_back_to_work_density(self):
        from repro.profit.functions import FlatThenLinear

        structure = make_family("chain")(np.random.default_rng(0))
        spec = JobSpec(
            0,
            structure,
            arrival=0,
            profit_fn=FlatThenLinear(2.0, 10.0, 20.0),
        )
        d = sns_density(spec, 4, Constants.from_epsilon(1.0))
        assert d == pytest.approx(spec.profit / spec.work)


class TestPolicies:
    def test_registry(self):
        assert set(SHED_POLICIES) == {"reject-newest", "reject-lowest-density"}
        assert isinstance(make_shed_policy("reject-newest"), RejectNewest)
        with pytest.raises(ValueError):
            make_shed_policy("nope")

    def test_reject_newest_keeps_queue(self):
        q = IngestQueue(2, RejectNewest())
        a, b, c = make_entry(1, 1.0), make_entry(2, 2.0), make_entry(3, 9.0)
        assert q.offer(a) is None
        assert q.offer(b) is None
        assert q.offer(c) is c  # full: incoming is the victim
        assert [e.job_id for e in q.entries()] == [1, 2]
        assert q.shed == 1 and q.accepted == 2

    def test_reject_lowest_density_displaces(self):
        q = IngestQueue(2, RejectLowestDensity())
        low, mid = make_entry(1, 0.1), make_entry(2, 0.5)
        high = make_entry(3, 2.0)
        q.offer(low)
        q.offer(mid)
        victim = q.offer(high)
        assert victim is low  # queued lowest-density job displaced
        assert [e.job_id for e in q.entries()] == [2, 3]

    def test_reject_lowest_density_sheds_incoming_when_lowest(self):
        q = IngestQueue(1, RejectLowestDensity())
        q.offer(make_entry(1, 5.0))
        weak = make_entry(2, 0.01)
        assert q.offer(weak) is weak


class TestQueue:
    def test_capacity_validation(self):
        with pytest.raises(WorkloadError):
            IngestQueue(0)

    def test_fifo_release_order(self):
        q = IngestQueue(10)
        for i in range(5):
            q.offer(make_entry(i, float(i)))
        assert [q.pop().job_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_and_depth(self):
        q = IngestQueue(4)
        assert q.peek() is None
        entry = make_entry(7, 1.0)
        q.offer(entry)
        assert q.peek() is entry
        assert q.depth == 1 and len(q) == 1
