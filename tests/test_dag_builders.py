"""Unit tests for repro.dag.builders."""

import numpy as np
import pytest

from repro.dag import (
    DAGBuilder,
    block,
    block_with_chain,
    chain,
    chain_then_block,
    fork_join,
    from_networkx,
    layered_random,
    random_dag_gnp,
    recursive_fork_join,
    series_parallel_random,
    single_node,
    validate_structure,
)


class TestBuilder:
    def test_incremental(self):
        b = DAGBuilder("t")
        ids = b.add_nodes([1.0, 2.0])
        b.add_edge(ids[0], ids[1])
        dag = b.build()
        assert dag.num_nodes == 2
        assert dag.span == 3.0
        assert dag.name == "t"

    def test_add_chain(self):
        b = DAGBuilder()
        ids = b.add_chain([1.0, 1.0, 1.0])
        dag = b.build()
        assert dag.span == 3.0
        assert list(dag.edges()) == [(ids[0], ids[1]), (ids[1], ids[2])]

    def test_rejects_non_positive_work(self):
        with pytest.raises(ValueError):
            DAGBuilder().add_node(0.0)

    def test_num_nodes(self):
        b = DAGBuilder()
        assert b.num_nodes == 0
        b.add_node()
        assert b.num_nodes == 1


class TestElementaryShapes:
    def test_single(self):
        dag = single_node(4.0)
        assert dag.num_nodes == 1
        assert dag.span == 4.0

    def test_chain(self):
        dag = chain(4, node_work=3.0)
        assert dag.num_nodes == 4
        assert dag.total_work == 12.0
        assert dag.span == 12.0
        validate_structure(dag)

    def test_chain_length_one(self):
        assert chain(1).num_edges == 0

    def test_chain_rejects_zero_length(self):
        with pytest.raises(ValueError):
            chain(0)

    def test_block(self):
        dag = block(6, node_work=2.0)
        assert dag.total_work == 12.0
        assert dag.span == 2.0
        assert dag.num_edges == 0

    def test_block_rejects_zero_width(self):
        with pytest.raises(ValueError):
            block(0)

    def test_fork_join(self):
        dag = fork_join(3, node_work=2.0, fork_work=1.0, join_work=1.0)
        assert dag.num_nodes == 5
        assert dag.total_work == 8.0
        assert dag.span == 4.0  # fork + middle + join
        assert dag.sources() == (0,)
        assert dag.sinks() == (4,)
        validate_structure(dag)


class TestPaperExamples:
    def test_fig1_parameters(self):
        m = 4
        dag = block_with_chain(64.0, m)
        assert dag.total_work == 64.0
        assert dag.span == 16.0  # W/m
        # chain of 16 unit nodes, block of 48 unit nodes
        assert dag.num_nodes == 64
        assert dag.num_edges == 15
        validate_structure(dag)

    def test_fig1_chain_independent_of_block(self):
        dag = block_with_chain(64.0, 4)
        # the chain head and every block node are sources
        assert len(dag.sources()) == 1 + 48

    def test_fig1_coarse_nodes(self):
        dag = block_with_chain(128.0, 4, node_work=2.0)
        assert dag.span == 32.0
        assert dag.total_work == 128.0

    def test_fig1_rejects_indivisible(self):
        with pytest.raises(ValueError):
            block_with_chain(65.0, 4)

    def test_fig1_rejects_single_processor(self):
        with pytest.raises(ValueError):
            block_with_chain(64.0, 1)

    def test_fig2_parameters(self):
        dag = chain_then_block(64.0, 16.0, 1.0)
        assert dag.total_work == 64.0
        assert dag.span == 16.0
        # chain of 15, block of 49, all depending on chain end
        assert dag.num_nodes == 64
        validate_structure(dag)

    def test_fig2_block_depends_on_chain(self):
        dag = chain_then_block(64.0, 16.0, 1.0)
        last_chain = 14
        assert len(dag.successors(last_chain)) == 49

    def test_fig2_rejects_indivisible(self):
        with pytest.raises(ValueError):
            chain_then_block(64.0, 16.5, 1.0)


class TestRandomFamilies:
    def test_layered(self, rng):
        dag = layered_random(4, 5, rng)
        assert dag.num_nodes == 20
        validate_structure(dag)
        # span spans all layers: at least 4 nodes deep
        assert dag.span >= 4 * 0.5

    def test_layered_every_node_connected(self, rng):
        dag = layered_random(3, 4, rng, edge_prob=0.0)
        # even with p=0 every layer-k node has >= 1 predecessor
        for v in range(4, 12):
            assert dag.indegree(v) >= 1

    def test_layered_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            layered_random(0, 5, rng)

    def test_series_parallel(self, rng):
        dag = series_parallel_random(20, rng)
        validate_structure(dag)
        assert dag.num_nodes >= 20  # parallel composition adds joins

    def test_series_parallel_single(self, rng):
        dag = series_parallel_random(1, rng)
        assert dag.num_nodes == 1

    def test_recursive_fork_join(self):
        dag = recursive_fork_join(2, branching=2)
        validate_structure(dag)
        # 4 leaves + 3 fork/join pairs
        assert dag.num_nodes == 4 + 6
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1

    def test_recursive_fork_join_depth_zero(self):
        assert recursive_fork_join(0).num_nodes == 1

    def test_recursive_fork_join_rejects_negative(self):
        with pytest.raises(ValueError):
            recursive_fork_join(-1)

    def test_gnp(self, rng):
        dag = random_dag_gnp(30, 0.2, rng)
        assert dag.num_nodes == 30
        validate_structure(dag)

    def test_gnp_zero_prob(self, rng):
        dag = random_dag_gnp(10, 0.0, rng)
        assert dag.num_edges == 0

    def test_gnp_full_prob(self, rng):
        dag = random_dag_gnp(5, 1.0, rng)
        assert dag.num_edges == 10

    def test_gnp_rejects_bad_prob(self, rng):
        with pytest.raises(ValueError):
            random_dag_gnp(5, 1.5, rng)

    def test_determinism(self):
        a = layered_random(3, 4, np.random.default_rng(7))
        b = layered_random(3, 4, np.random.default_rng(7))
        assert a == b


class TestFromNetworkx:
    def test_arbitrary_labels(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_node("start", work=2.0)
        g.add_node("end", work=3.0)
        g.add_edge("start", "end")
        dag = from_networkx(g)
        assert dag.num_nodes == 2
        assert dag.total_work == 5.0
        assert dag.span == 5.0

    def test_missing_work_defaults_to_one(self):
        import networkx as nx

        g = nx.path_graph(3, create_using=nx.DiGraph)
        dag = from_networkx(g)
        assert dag.total_work == 3.0
