"""Tests for the real-time gateway: clock, load, ingest, autoscaling.

The heavyweight invariants pinned here:

* the gateway loop under a :class:`VirtualClock` is *equivalent* to the
  offline ``run_stream`` replay of the same trace when nothing
  overflows -- pacing changes when work is handed over, not what the
  schedulers decide;
* elastic scaling conserves jobs: every submission is completed, shed,
  or expired exactly once through arbitrary up/down cycles;
* backpressure engages under overload: a tight ingest buffer sheds at
  the front door instead of growing without bound;
* the autoscaler ramps up under pressure, shrinks in quiet, and its
  hysteresis prevents flapping.
"""

import numpy as np
import pytest

from repro.cluster import ClusterService, ElasticCluster, ShardConfig
from repro.errors import ClusterError, GatewayError
from repro.gateway import (
    ARRIVAL_PROCESSES,
    Autoscaler,
    Gateway,
    IngestBuffer,
    KpiFeed,
    LoadConfig,
    LoadGenerator,
    VirtualClock,
    WallClock,
)
from repro.cluster.router import ShardStats
from repro.sim.jobs import JobSpec
from repro.workloads.dag_families import make_family


def _spec(job_id, arrival=0, profit=1.0):
    rng = np.random.default_rng(job_id)
    return JobSpec(
        job_id,
        make_family("chain")(rng),
        arrival=arrival,
        deadline=arrival + 1000,
        profit=profit,
    )


def _shard_config(**kw):
    kw.setdefault("scheduler", "sns")
    kw.setdefault("capacity", 64)
    kw.setdefault("max_in_flight", 8)
    return ShardConfig(m=1, **kw)


def _cluster(m=8, k_max=4, k_initial=None, **kw):
    return ElasticCluster(
        m=m,
        k_max=k_max,
        k_initial=k_initial,
        config=_shard_config(**kw),
        router="least-loaded",
    )


class TestClocks:
    def test_virtual_clock_jumps_instantly(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.sleep_until(5.0)
        assert clock.now() == 5.0
        clock.sleep_until(2.0)  # never backward
        assert clock.now() == 5.0

    def test_wall_clock_monotonic_and_sleeps(self):
        clock = WallClock()
        t0 = clock.now()
        clock.sleep_until(t0 + 0.01)
        assert clock.now() >= t0 + 0.01
        clock.sleep_until(t0)  # in the past: returns immediately
        from repro.gateway.clock import Clock

        assert isinstance(clock, Clock)
        assert isinstance(VirtualClock(), Clock)


class TestLoadGenerator:
    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_every_process_generates_sorted_specs(self, process):
        load = LoadGenerator(
            LoadConfig(n_jobs=120, m=8, seed=3, process=process)
        )
        specs = load.specs()
        assert len(specs) == 120
        keys = [(sp.arrival, sp.job_id) for sp in specs]
        assert keys == sorted(keys)
        assert all(sp.deadline > sp.arrival for sp in specs)
        assert all(sp.profit > 0 for sp in specs)
        assert load.horizon == specs[-1].arrival

    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_seed_determinism(self, process):
        def fingerprint(seed):
            load = LoadGenerator(
                LoadConfig(n_jobs=80, m=8, seed=seed, process=process)
            )
            return [
                (sp.job_id, sp.arrival, sp.deadline, sp.profit)
                for sp in load
            ]

        assert fingerprint(5) == fingerprint(5)
        assert fingerprint(5) != fingerprint(6)

    def test_flash_crowd_has_a_spike(self):
        load = LoadGenerator(
            LoadConfig(
                n_jobs=400, m=8, seed=1, process="flash-crowd",
                spike_fraction=0.3,
            )
        )
        arrivals = [sp.arrival for sp in load]
        values, counts = np.unique(arrivals, return_counts=True)
        # 30% of all jobs land on one step
        assert counts.max() >= 0.3 * 400

    def test_rejects_unknown_process(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            LoadConfig(process="bogus")

    def test_specs_cached(self):
        load = LoadGenerator(LoadConfig(n_jobs=10, seed=0))
        assert load.specs() is load.specs()
        assert len(load) == 10


class TestIngestBuffer:
    def test_fifo_and_bounds(self):
        buf = IngestBuffer(capacity=2)
        s0, s1, s2 = _spec(0), _spec(1), _spec(2)
        assert buf.offer(s0) and buf.offer(s1)
        assert not buf.offer(s2)  # full: refused
        assert buf.rejected == 1 and buf.accepted == 2
        assert buf.drain() == [s0, s1]
        assert buf.depth == 0
        assert buf.peak_depth == 2

    def test_drain_cap(self):
        buf = IngestBuffer(capacity=8)
        specs = [_spec(i) for i in range(5)]
        for sp in specs:
            buf.offer(sp)
        assert buf.drain(2) == specs[:2]
        assert buf.drain(None) == specs[2:]

    def test_capacity_validated(self):
        with pytest.raises(GatewayError):
            IngestBuffer(capacity=0)


class TestElasticCluster:
    def test_requires_even_partition(self):
        with pytest.raises(ClusterError):
            ElasticCluster(m=10, k_max=4, config=_shard_config())
        with pytest.raises(ClusterError):
            ElasticCluster(m=8, k_max=4, k_initial=0, config=_shard_config())

    def test_starts_only_active_prefix(self):
        cluster = _cluster(k_initial=2)
        cluster.start()
        alive = [shard.alive for shard in cluster.shards]
        assert alive == [True, True, False, False]
        assert len(cluster.active_stats()) == 2
        cluster.finish()

    def test_scale_up_activates_and_splits(self):
        cluster = _cluster(k_initial=1)
        cluster.start()
        for i in range(12):
            cluster.submit(_spec(i), t=0)
        events = cluster.scale_to(2, t=0)
        assert [e.direction for e in events] == ["up"]
        assert cluster.k_active == 2
        assert cluster.shards[1].alive
        # the deepest queue was split into the newcomer
        assert events[0].moved > 0
        result = cluster.finish()
        assert len(result.records) == 12

    def test_scale_down_drains_victim(self):
        cluster = _cluster(k_initial=4)
        cluster.start()
        for i in range(16):
            cluster.submit(_spec(i), t=0)
        events = cluster.scale_to(2, t=0)
        assert [e.direction for e in events] == ["down", "down"]
        assert cluster.k_active == 2
        # victims' ingest queues emptied into the remaining prefix
        for shard in cluster.shards[2:]:
            assert shard.stats().queue_depth == 0
        result = cluster.finish()
        assert len(result.records) == 16

    def test_job_conservation_through_scale_cycles(self):
        cluster = _cluster(k_initial=1)
        cluster.start()
        n = 60
        t = 0
        for i in range(n):
            cluster.submit(_spec(i, arrival=t), t=t)
            if i % 10 == 9:
                t += 5
                cluster.advance_to(t)
                cluster.scale_to(1 + (i // 10) % 4, t=t)
        result = cluster.finish()
        accounted = len(result.records) + result.num_shed
        assert accounted == n
        ids = set(result.records) | {s.job_id for s in result.shed}
        assert ids == set(range(n))

    def test_scale_bounds_enforced(self):
        cluster = _cluster(k_initial=2)
        with pytest.raises(ClusterError):
            cluster.scale_to(0)
        with pytest.raises(ClusterError):
            cluster.scale_to(5)
        cluster.finish()

    def test_scale_events_in_result_extra(self):
        cluster = _cluster(k_initial=1)
        cluster.start()
        cluster.scale_to(3, t=0)
        result = cluster.finish()
        assert [e.k_after for e in result.extra["scale_events"]] == [2, 3]

    def test_router_only_sees_active_prefix(self):
        cluster = _cluster(k_initial=2)
        cluster.start()
        for i in range(20):
            index = cluster.submit(_spec(i), t=0)
            assert 0 <= index < 2
        cluster.finish()

    def test_live_metrics_includes_active_shard_gauge(self):
        cluster = _cluster(k_initial=3)
        cluster.start()
        values = cluster.live_metrics().values()
        assert values["active_shards"] == 3.0
        cluster.finish()


class TestAutoscaler:
    def _stats(self, k, depth_each, m=2, in_flight=0):
        return [
            ShardStats(
                index=i, m=m, queue_depth=depth_each, in_flight=in_flight,
                alive=True,
            )
            for i in range(k)
        ]

    def test_scales_up_under_pressure(self):
        auto = Autoscaler(k_min=1, k_max=4, high_water=2.0, up_patience=1)
        target = auto.decide(1, 1, self._stats(1, depth_each=20))
        assert target == 2

    def test_holds_in_band(self):
        auto = Autoscaler(k_min=1, k_max=4, high_water=4.0)
        for tick in range(10):
            assert auto.decide(tick, 2, self._stats(2, depth_each=3)) == 2

    def test_down_needs_patience(self):
        auto = Autoscaler(
            k_min=1, k_max=4, high_water=4.0, down_patience=5, cooldown=0
        )
        idle = self._stats(3, depth_each=0)
        for tick in range(4):
            assert auto.decide(tick, 3, idle) == 3
        assert auto.decide(4, 3, idle) == 2  # fifth consecutive vote

    def test_cooldown_blocks_immediate_followup(self):
        auto = Autoscaler(
            k_min=1, k_max=4, high_water=2.0, up_patience=1, cooldown=3
        )
        hot = self._stats(1, depth_each=50)
        assert auto.decide(0, 1, hot) == 2
        hot2 = self._stats(2, depth_each=50)
        for tick in range(1, 4):
            assert auto.decide(tick, 2, hot2) == 2  # cooling
        assert auto.decide(4, 2, hot2) == 3

    def test_in_flight_excess_counts_as_pressure(self):
        auto = Autoscaler(k_min=1, k_max=4, high_water=2.0, up_patience=1)
        stats = self._stats(1, depth_each=0, m=2, in_flight=30)
        assert auto.decide(0, 1, stats) == 2

    def test_decisions_recorded(self):
        auto = Autoscaler(k_min=1, k_max=2, high_water=2.0, up_patience=1)
        auto.decide(0, 1, self._stats(1, depth_each=10))
        assert len(auto.decisions) == 1
        d = auto.decisions[0]
        assert (d.vote, d.target, d.pressure) == (2, 2, 10)

    def test_validation(self):
        with pytest.raises(GatewayError):
            Autoscaler(k_min=3, k_max=2)
        with pytest.raises(GatewayError):
            Autoscaler(high_water=0.0)
        with pytest.raises(GatewayError):
            Autoscaler(up_patience=0)


class TestGatewayLoop:
    def _run(self, *, load=None, k_initial=4, autoscaler=None,
             buffer_capacity=4096, max_dispatch=None, feed=None,
             max_ticks=None, steps_per_tick=10):
        load = load or LoadGenerator(
            LoadConfig(n_jobs=200, m=8, load=1.0, seed=9)
        )
        gateway = Gateway(
            _cluster(k_initial=k_initial),
            load,
            clock=VirtualClock(),
            tick_seconds=0.01,
            steps_per_tick=steps_per_tick,
            buffer_capacity=buffer_capacity,
            max_dispatch_per_tick=max_dispatch,
            autoscaler=autoscaler,
            feed=feed,
        )
        return gateway.run(max_ticks=max_ticks)

    def test_serves_whole_stream(self):
        result = self._run()
        assert result.generated == 200
        assert result.delivered == 200
        assert result.gateway_shed == 0
        assert result.ticks > 0
        assert result.sim_end == result.ticks * 10
        accounted = len(result.cluster.records) + result.cluster.num_shed
        assert accounted == 200

    def test_no_overflow_run_equals_offline_replay(self):
        """Pacing must not change scheduling: a virtual-clock gateway
        run with ample buffer is bit-equal in profit and per-job
        outcomes to ``run_stream`` over the same trace and cluster.

        Pass-through config (no in-flight cap) and a stats-independent
        router: with backpressure, release times legitimately depend on
        *when* the clock advances (``run_stream`` only advances a shard
        at its own submissions; the gateway advances every shard every
        tick), and a load-aware router legitimately reads those fresher
        stats.  Round-robin placement + pass-through admission leave
        pacing no channel to influence outcomes -- so none is allowed.
        """
        load = LoadGenerator(LoadConfig(n_jobs=150, m=8, load=1.2, seed=4))
        config = _shard_config(max_in_flight=None)
        paced = Gateway(
            ElasticCluster(m=8, k_max=4, config=config,
                           router="round-robin"),
            load,
            clock=VirtualClock(),
            tick_seconds=0.01,
            steps_per_tick=10,
        ).run()

        offline = ClusterService(
            m=8, k=4, config=config, router="round-robin"
        ).run_stream(load.specs())

        assert paced.total_profit == offline.total_profit
        paced_records = {
            (r.job_id, r.completion_time, r.profit)
            for r in paced.cluster.records.values()
        }
        offline_records = {
            (r.job_id, r.completion_time, r.profit)
            for r in offline.records.values()
        }
        assert paced_records == offline_records

    def test_overload_hits_front_door_backpressure(self):
        load = LoadGenerator(
            LoadConfig(
                n_jobs=300, m=8, load=3.0, seed=2, process="flash-crowd",
                spike_fraction=0.4,
            )
        )
        result = self._run(
            load=load, buffer_capacity=16, max_dispatch=4
        )
        assert result.gateway_shed > 0
        assert result.delivered + result.gateway_shed == result.generated
        dropped_ids = {d.job_id for d in result.dropped}
        delivered_ids = {job_id for _, job_id, _ in result.submissions}
        assert dropped_ids.isdisjoint(delivered_ids)
        assert dropped_ids | delivered_ids == set(range(300))

    def test_max_ticks_stops_early(self):
        result = self._run(max_ticks=3)
        assert result.ticks == 3
        assert result.sim_end == 30

    def test_kpi_feed_published_and_closed(self):
        feed = KpiFeed()
        result = self._run(feed=feed)
        assert feed.closed
        history = feed.history()
        assert history[-1].get("final") is True
        assert history[-1]["total_profit"] == result.total_profit
        ticks = [s["tick"] for s in history[:-1]]
        assert ticks == sorted(ticks)
        # KPI snapshots carry the admission-latency percentiles
        assert "admission_latency_p99" in history[-2]

    def test_autoscaler_ramps_up_under_load(self):
        load = LoadGenerator(
            LoadConfig(n_jobs=400, m=8, load=1.5, seed=7)
        )
        result = self._run(
            load=load,
            k_initial=1,
            autoscaler=Autoscaler(k_min=1, k_max=4),
        )
        assert any(e.direction == "up" for e in result.scale_events)
        assert result.kpis[-1]["active_shards"] > 1

    def test_autoscaler_scales_down_when_quiet(self):
        """A stream with a long silent tail lets the down-patience
        expire and the cluster shrink."""
        load = LoadGenerator(LoadConfig(n_jobs=60, m=8, load=2.0, seed=3))
        auto = Autoscaler(
            k_min=1, k_max=4, high_water=2.0, up_patience=1,
            down_patience=3, cooldown=0,
        )
        gateway = Gateway(
            _cluster(k_initial=4),
            load,
            clock=VirtualClock(),
            tick_seconds=0.01,
            steps_per_tick=10,
            autoscaler=auto,
        )
        # run past the stream's end so the cluster idles
        result = gateway.run(max_ticks=(load.horizon // 10) + 40)
        assert any(e.direction == "down" for e in result.scale_events)

    def test_summary_shape(self):
        result = self._run(max_ticks=5)
        summary = result.summary()
        for key in (
            "ticks", "generated", "delivered", "gateway_shed", "shed",
            "total_profit", "admission_latency_p99", "fingerprint",
        ):
            assert key in summary

    def test_validation(self):
        load = LoadGenerator(LoadConfig(n_jobs=5, seed=0))
        with pytest.raises(GatewayError):
            Gateway(_cluster(), load, tick_seconds=0.0)
        with pytest.raises(GatewayError):
            Gateway(_cluster(), load, steps_per_tick=0)
        with pytest.raises(GatewayError):
            Gateway(_cluster(), load, max_dispatch_per_tick=0)
