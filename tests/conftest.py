"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.dag import DAGBuilder, DAGStructure


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=["legacy", "event", "array"])
def engine_backend(request) -> str:
    """Engine backend name, parametrized over all three cores.

    Tests taking this fixture run once per backend (the name lands in
    the test id), so differential suites cover the full
    :data:`repro.sim.ENGINE_BACKENDS` surface without triplicating
    test bodies.  Resolve with :func:`repro.sim.make_engine`.
    """
    return request.param


@pytest.fixture(params=["event", "array"])
def service_backend(request) -> str:
    """Like ``engine_backend`` but only the service-grade backends
    (:data:`repro.sim.SERVICE_BACKENDS`): the legacy oracle predates
    the observability/snapshot surface those tests exercise."""
    return request.param


@pytest.fixture
def diamond() -> DAGStructure:
    """4-node diamond: 0 -> {1, 2} -> 3, works 1/2/3/1 (span 5)."""
    b = DAGBuilder("diamond")
    n0 = b.add_node(1.0)
    n1 = b.add_node(2.0)
    n2 = b.add_node(3.0)
    n3 = b.add_node(1.0)
    b.add_edges([(n0, n1), (n0, n2), (n1, n3), (n2, n3)])
    return b.build()


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def random_dags(
    draw,
    max_nodes: int = 12,
    integer_works: bool = True,
    max_work: int = 8,
):
    """Random DAG structures: works in [1, max_work], edges low -> high."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    if integer_works:
        works = draw(
            st.lists(
                st.integers(min_value=1, max_value=max_work),
                min_size=n,
                max_size=n,
            )
        )
        works = [float(w) for w in works]
    else:
        works = draw(
            st.lists(
                st.floats(
                    min_value=0.25,
                    max_value=float(max_work),
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n,
                max_size=n,
            )
        )
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True)) if possible else []
    return DAGStructure(works, edges, name="hypo")


@st.composite
def job_parameters(draw, m_max: int = 16):
    """(work, span, m, epsilon) quadruples satisfying W >= L > 0."""
    m = draw(st.integers(min_value=1, max_value=m_max))
    span = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
    extra = draw(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
    epsilon = draw(st.floats(min_value=0.05, max_value=8.0, allow_nan=False))
    return span + extra, span, m, epsilon
