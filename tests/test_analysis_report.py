"""Unit tests for the run-report builder and MMPP arrivals."""

import numpy as np
import pytest

from repro.analysis import scheduler_report, workload_summary
from repro.baselines import GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.errors import WorkloadError
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    mmpp_arrivals,
)


class TestWorkloadSummary:
    def test_contains_key_stats(self):
        specs = generate_workload(WorkloadConfig(n_jobs=20, m=8, seed=0))
        text = workload_summary(specs, 8)
        assert "jobs" in text
        assert "offered load" in text
        assert "slack" in text

    def test_empty(self):
        assert "empty" in workload_summary([], 4)


class TestSchedulerReport:
    def test_full_report(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=8, load=2.0, seed=1)
        )
        text = scheduler_report(
            specs,
            8,
            {"S": lambda: SNSScheduler(epsilon=1.0), "EDF": GlobalEDF},
            bound_method="feasible",
            gantt_for="S",
        )
        assert "Workload" in text
        assert "Comparison" in text
        assert "Schedule of S" in text
        assert "util [" in text
        assert "EDF" in text

    def test_without_gantt(self):
        specs = generate_workload(WorkloadConfig(n_jobs=10, m=4, seed=2))
        text = scheduler_report(
            specs, 4, {"greedy": GreedyDensity}, bound_method="feasible"
        )
        assert "Schedule of" not in text

    def test_unknown_gantt_target(self):
        specs = generate_workload(WorkloadConfig(n_jobs=5, m=4, seed=3))
        with pytest.raises(KeyError):
            scheduler_report(
                specs, 4, {"edf": GlobalEDF}, bound_method="feasible",
                gantt_for="nope",
            )


class TestMMPP:
    def test_sorted_and_sized(self):
        rng = np.random.default_rng(0)
        times = mmpp_arrivals(200, 0.05, 1.0, 0.1, rng)
        assert len(times) == 200
        assert np.all(np.diff(times) >= 0)

    def test_burstier_than_poisson(self):
        """Gap variance of an MMPP with well-separated rates exceeds a
        rate-matched Poisson's."""
        rng = np.random.default_rng(1)
        times = mmpp_arrivals(3000, 0.05, 2.0, 0.05, rng)
        gaps = np.diff(times).astype(float)
        cv2 = gaps.var() / (gaps.mean() ** 2)
        assert cv2 > 1.2  # Poisson has cv^2 ~ 1

    def test_determinism(self):
        a = mmpp_arrivals(50, 0.1, 1.0, 0.2, np.random.default_rng(7))
        b = mmpp_arrivals(50, 0.1, 1.0, 0.2, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            mmpp_arrivals(10, 0.0, 1.0, 0.1, rng)
        with pytest.raises(WorkloadError):
            mmpp_arrivals(10, 0.1, 1.0, 1.5, rng)
        with pytest.raises(WorkloadError):
            mmpp_arrivals(-1, 0.1, 1.0, 0.1, rng)
