"""End-to-end tests of the KPI feed, the SSE/JSONL server, and the CLI.

The SSE test is the acceptance path: a gateway run publishes to a
:class:`KpiFeed`, a :class:`KpiServer` serves it over HTTP, and a
plain-socket client consumes the ``text/event-stream`` frames while the
run is live -- no test doubles between the loop and the wire.
"""

import http.client
import json
import threading

import pytest

from repro.cluster import ElasticCluster, ShardConfig
from repro.gateway import (
    Gateway,
    KpiFeed,
    KpiServer,
    LoadConfig,
    LoadGenerator,
    VirtualClock,
)
from repro.gateway.cli import main as gateway_main


def _parse_sse(body):
    """Parse SSE frames into (id, event, data-dict) tuples."""
    frames = []
    for chunk in body.strip().split("\n\n"):
        fields = {}
        for line in chunk.splitlines():
            key, _, value = line.partition(": ")
            fields[key] = value
        if "data" in fields:
            frames.append(
                (int(fields["id"]), fields["event"], json.loads(fields["data"]))
            )
    return frames


class TestKpiFeed:
    def test_publish_sequences_and_history(self):
        feed = KpiFeed()
        assert feed.publish({"tick": 1}) == 1
        assert feed.publish({"tick": 2}) == 2
        assert feed.last_seq == 2
        assert [s["tick"] for s in feed.history()] == [1, 2]

    def test_wait_for_returns_only_newer(self):
        feed = KpiFeed()
        feed.publish({"tick": 1})
        feed.publish({"tick": 2})
        got = feed.wait_for(1, timeout=0.1)
        assert [seq for seq, _ in got] == [2]

    def test_wait_for_blocks_until_publish(self):
        feed = KpiFeed()
        results = []

        def consumer():
            results.extend(feed.wait_for(0, timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        feed.publish({"tick": 1})
        thread.join(timeout=5.0)
        assert [seq for seq, _ in results] == [1]

    def test_close_wakes_and_rejects_publish(self):
        feed = KpiFeed()
        feed.close()
        assert feed.wait_for(0, timeout=0.05) == []
        with pytest.raises(RuntimeError):
            feed.publish({})

    def test_history_bounded(self):
        feed = KpiFeed(history=3)
        for i in range(6):
            feed.publish({"tick": i})
        assert [s["tick"] for s in feed.history()] == [3, 4, 5]
        assert feed.last_seq == 6

    def test_jsonl_roundtrip(self, tmp_path):
        feed = KpiFeed()
        feed.publish({"tick": 1, "profit_total": 2.5})
        path = tmp_path / "kpi.jsonl"
        feed.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0]) == {"tick": 1, "profit_total": 2.5}


class TestKpiServer:
    def test_healthz_and_jsonl(self):
        feed = KpiFeed()
        feed.publish({"tick": 1})
        with KpiServer(feed) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=5
            )
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
            assert health["ok"] is True and health["seq"] == 1
            conn.request("GET", "/kpi.jsonl")
            body = conn.getresponse().read().decode()
            assert json.loads(body.strip()) == {"tick": 1}
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404

    def test_sse_stream_consumed_end_to_end(self):
        """A live gateway run, served over HTTP, consumed concurrently:
        the client sees every snapshot the loop published, in order,
        and the stream terminates when the feed closes."""
        load = LoadGenerator(LoadConfig(n_jobs=120, m=8, load=1.0, seed=6))
        cluster = ElasticCluster(
            m=8, k_max=2,
            config=ShardConfig(m=1, scheduler="sns", capacity=64,
                               max_in_flight=8),
            router="least-loaded",
        )
        feed = KpiFeed()
        gateway = Gateway(
            cluster, load, clock=VirtualClock(), tick_seconds=0.01,
            steps_per_tick=20, feed=feed,
        )
        frames = []
        with KpiServer(feed, poll_seconds=0.05) as server:
            def consume():
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=10
                )
                conn.request("GET", "/kpi")
                resp = conn.getresponse()
                assert resp.headers["Content-Type"] == "text/event-stream"
                frames.extend(_parse_sse(resp.read().decode()))

            consumer = threading.Thread(target=consume)
            consumer.start()
            result = gateway.run()
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()

        assert frames, "consumer saw no SSE frames"
        seqs = [seq for seq, _, _ in frames]
        assert seqs == sorted(seqs)
        assert all(event == "kpi" for _, event, _ in frames)
        # the final frame carries the run's total profit
        final = frames[-1][2]
        assert final.get("final") is True
        assert final["total_profit"] == result.total_profit
        # live snapshots match what the run recorded
        ticks_seen = [d["tick"] for _, _, d in frames if not d.get("final")]
        assert ticks_seen == [k["tick"] for k in result.kpis]

    def test_sse_resume_from_last_event_id(self):
        feed = KpiFeed()
        for i in range(4):
            feed.publish({"tick": i})
        feed.close()
        with KpiServer(feed, poll_seconds=0.05) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=5
            )
            conn.request("GET", "/kpi", headers={"Last-Event-ID": "2"})
            frames = _parse_sse(conn.getresponse().read().decode())
        assert [seq for seq, _, _ in frames] == [3, 4]


class TestGatewayCLI:
    def test_smoke_virtual_clock_autoscale(self, tmp_path, capsys):
        kpi_path = tmp_path / "kpi.jsonl"
        rc = gateway_main(
            [
                "--n-jobs", "200",
                "--m", "8",
                "--process", "flash-crowd",
                "--shards-max", "4",
                "--shards-initial", "2",
                "--autoscale",
                "--clock", "virtual",
                "--max-in-flight", "8",
                "--seed", "3",
                "--kpi", str(kpi_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-gateway:" in out
        assert "total_profit:" in out
        assert "fingerprint:" in out
        lines = kpi_path.read_text().strip().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert {"tick", "active_shards", "shed_fraction"} <= set(first)

    def test_smoke_with_server(self, capsys):
        rc = gateway_main(
            [
                "--n-jobs", "60",
                "--m", "8",
                "--shards-max", "2",
                "--clock", "virtual",
                "--serve", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kpi feed:" in out

    def test_rejects_unknown_process(self):
        with pytest.raises(SystemExit):
            gateway_main(["--process", "bogus"])
