"""Unit tests for experiment-result persistence and regression compare."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.persist import (
    compare_results,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture
def sample():
    return ExperimentResult(
        key="EX",
        title="sample",
        headers=["a", "b", "c"],
        rows=[[1, 0.5, "yes"], [2, 0.25, "no"]],
        claim="something holds",
        notes=["a note"],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, sample):
        back = result_from_dict(result_to_dict(sample))
        assert back == sample

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "result.json"
        save_result(sample, str(path))
        back = load_result(str(path))
        assert back.key == "EX"
        assert back.rows == sample.rows
        assert back.notes == ["a note"]

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            result_from_dict({"version": 9, "key": "X", "title": "t",
                              "headers": [], "rows": []})


class TestCompare:
    def test_identical_clean(self, sample):
        assert compare_results(sample, sample) == []

    def test_within_tolerance_clean(self, sample):
        current = result_from_dict(result_to_dict(sample))
        current.rows[0][1] = 0.55  # +10% < 25% tolerance
        assert compare_results(sample, current) == []

    def test_numeric_regression_detected(self, sample):
        current = result_from_dict(result_to_dict(sample))
        current.rows[0][1] = 0.1  # -80%
        problems = compare_results(sample, current)
        assert len(problems) == 1
        assert "'b'" in problems[0]

    def test_string_change_detected(self, sample):
        current = result_from_dict(result_to_dict(sample))
        current.rows[1][2] = "maybe"
        assert compare_results(sample, current)

    def test_structure_changes_reported(self, sample):
        current = ExperimentResult(
            key="EX", title="sample", headers=["a", "b"], rows=[[1, 2]]
        )
        assert "headers changed" in compare_results(sample, current)[0]
        current2 = result_from_dict(result_to_dict(sample))
        current2.rows.append([3, 0.1, "yes"])
        assert "row count" in compare_results(sample, current2)[0]

    def test_numeric_strings_compared_numerically(self, sample):
        a = result_from_dict(result_to_dict(sample))
        b = result_from_dict(result_to_dict(sample))
        a.rows[0][1] = "0.5"
        b.rows[0][1] = 0.52
        assert compare_results(a, b) == []

    def test_real_experiment_round_trip(self, tmp_path):
        from repro.experiments.registry import run_experiment

        result = run_experiment("E10", quick=True)
        path = tmp_path / "e10.json"
        save_result(result, str(path))
        again = run_experiment("E10", quick=True)
        assert compare_results(load_result(str(path)), again) == []
