"""Write-ahead log tests: durability framing, torn-tail recovery."""

import os
import struct

import pytest

from repro.errors import WALError
from repro.resilience import WAL_MAGIC, WriteAheadLog, open_wal
from repro.workloads import WorkloadConfig, generate_workload


def specs(n=12, seed=5):
    return generate_workload(
        WorkloadConfig(n_jobs=n, m=8, load=2.0, epsilon=1.0, seed=seed)
    )


class TestRoundtrip:
    def test_record_returns_index_and_reopens(self, tmp_path):
        path = tmp_path / "s.wal"
        jobs = specs()
        with WriteAheadLog(path) as wal:
            for i, spec in enumerate(jobs):
                assert wal.record(spec.arrival, spec) == i
            assert len(wal) == len(jobs)

        reopened = WriteAheadLog(path)
        assert reopened.truncated_bytes == 0
        assert [(t, sp.job_id) for t, sp in reopened] == [
            (sp.arrival, sp.job_id) for sp in jobs
        ]
        # the reloaded specs are full equal objects, not just ids
        for (_, got), want in zip(reopened, jobs):
            assert got == want
        reopened.close()

    def test_key_for_is_stable(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "s.wal")
        assert wal.key_for(0) == wal.key_for(0)
        assert wal.key_for(0) != wal.key_for(1)
        wal.close()

    def test_empty_file_gets_magic(self, tmp_path):
        path = tmp_path / "s.wal"
        WriteAheadLog(path).close()
        assert path.read_bytes() == WAL_MAGIC

    def test_open_wal_helper(self, tmp_path):
        wal = open_wal(tmp_path / "s.wal", fsync_every=1)
        assert wal.fsync_every == 1
        wal.close()


class TestDurability:
    def test_fsync_batching_defers_pending(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        wal = WriteAheadLog(tmp_path / "s.wal", fsync_every=4)
        baseline = len(synced)
        for spec in specs(3):
            wal.record(spec.arrival, spec)
        assert len(synced) == baseline  # below the batch threshold
        wal.record(specs(4)[-1].arrival, specs(4)[-1])
        assert len(synced) == baseline + 1  # batch boundary fsyncs
        wal.close()

    def test_rejects_bad_fsync_every(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path / "s.wal", fsync_every=0)

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not.wal"
        path.write_bytes(b"definitely not a wal file")
        with pytest.raises(WALError):
            WriteAheadLog(path)


class TestTornTail:
    def _filled(self, tmp_path, n=6):
        path = tmp_path / "s.wal"
        wal = WriteAheadLog(path)
        for spec in specs(n):
            wal.record(spec.arrival, spec)
        wal.close()
        return path

    def test_truncated_frame_is_cut(self, tmp_path):
        path = self._filled(tmp_path)
        clean = path.read_bytes()
        path.write_bytes(clean[:-3])  # tear the last record's payload

        wal = WriteAheadLog(path)
        assert len(wal) == 5
        assert wal.truncated_bytes > 0
        # the file itself was repaired: reopening is clean
        wal.close()
        again = WriteAheadLog(path)
        assert again.truncated_bytes == 0
        assert len(again) == 5
        again.close()

    def test_crc_corruption_truncates_from_there(self, tmp_path):
        path = self._filled(tmp_path)
        data = bytearray(path.read_bytes())
        # corrupt one payload byte inside the 3rd record: find its offset
        offset = len(WAL_MAGIC)
        frame = struct.Struct("<II")
        for _ in range(2):
            length, _ = frame.unpack(data[offset : offset + frame.size])
            offset += frame.size + length
        data[offset + frame.size + 1] ^= 0xFF
        path.write_bytes(bytes(data))

        wal = WriteAheadLog(path)
        # records after the corrupt one are unreachable: longest valid prefix
        assert len(wal) == 2
        assert wal.truncated_bytes > 0
        wal.close()

    def test_appends_after_truncation_are_valid(self, tmp_path):
        path = self._filled(tmp_path)
        path.write_bytes(path.read_bytes()[:-1])
        wal = WriteAheadLog(path)
        survivors = len(wal)
        extra = specs(8)[-1]
        wal.record(extra.arrival, extra)
        wal.close()
        reopened = WriteAheadLog(path)
        assert len(reopened) == survivors + 1
        assert reopened.entries[-1][1] == extra
        reopened.close()
