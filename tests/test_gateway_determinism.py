"""Bit-identity of seeded virtual-clock gateway runs.

A real-time system normally forfeits exact regression testing; the
gateway buys it back by funnelling all nondeterminism through the seed
and the clock.  These tests pin the contract: two runs from the same
seed under a :class:`VirtualClock` agree *bit for bit* -- submissions,
placements, front-door drops, scheduler sheds, per-job profits, KPI
snapshots, and the autoscaler's entire up/down trajectory.
"""

import pytest

from repro.cluster import ElasticCluster, ShardConfig
from repro.gateway import (
    Autoscaler,
    Gateway,
    KpiFeed,
    LoadConfig,
    LoadGenerator,
    VirtualClock,
)


def _run(seed=11, *, autoscale=True, process="sessions", n_jobs=350,
         buffer_capacity=64, with_feed=False):
    load = LoadGenerator(
        LoadConfig(n_jobs=n_jobs, m=8, load=1.3, seed=seed, process=process)
    )
    cluster = ElasticCluster(
        m=8,
        k_max=4,
        k_initial=1,
        config=ShardConfig(
            m=1, scheduler="sns", capacity=48, max_in_flight=8
        ),
        router="least-loaded",
    )
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            k_min=1, k_max=4, high_water=2.0, up_patience=1,
            down_patience=12, cooldown=6,
        )
    feed = KpiFeed() if with_feed else None
    gateway = Gateway(
        cluster,
        load,
        clock=VirtualClock(),
        tick_seconds=0.01,
        steps_per_tick=10,
        buffer_capacity=buffer_capacity,
        autoscaler=autoscaler,
        feed=feed,
    )
    result = gateway.run()
    return result, feed


class TestGatewayDeterminism:
    def test_identical_seeds_identical_fingerprints(self):
        a, _ = _run()
        b, _ = _run()
        assert a.fingerprint() == b.fingerprint()

    def test_every_observable_identical(self):
        a, _ = _run()
        b, _ = _run()
        assert a.submissions == b.submissions
        assert a.dropped == b.dropped
        assert a.generated == b.generated
        assert a.delivered == b.delivered
        assert a.ticks == b.ticks
        assert a.total_profit == b.total_profit  # bit-equal floats
        assert a.kpis == b.kpis
        recs_a = {
            j: (r.completion_time, r.profit)
            for j, r in a.cluster.records.items()
        }
        recs_b = {
            j: (r.completion_time, r.profit)
            for j, r in b.cluster.records.items()
        }
        assert recs_a == recs_b

    def test_autoscale_trajectory_reproduced(self):
        """The up/down cycle itself is part of the fingerprint: same
        seed, same resize steps at the same simulated times."""
        a, _ = _run()
        b, _ = _run()
        assert a.scale_events == b.scale_events
        assert any(e.direction == "up" for e in a.scale_events)

    def test_different_seeds_differ(self):
        a, _ = _run(seed=11)
        b, _ = _run(seed=12)
        assert a.fingerprint() != b.fingerprint()

    def test_feed_attachment_does_not_perturb(self):
        """Publishing KPIs to a feed (the SSE server's input) must not
        change the run."""
        a, _ = _run(with_feed=False)
        b, feed = _run(with_feed=True)
        assert a.fingerprint() == b.fingerprint()
        assert feed is not None and feed.closed

    def test_overflow_drops_deterministic(self):
        """Front-door sheds under a tight buffer are part of the
        reproducible surface, not a race artifact."""
        a, _ = _run(process="flash-crowd", buffer_capacity=8, n_jobs=400)
        b, _ = _run(process="flash-crowd", buffer_capacity=8, n_jobs=400)
        assert len(a.dropped) > 0
        assert a.dropped == b.dropped
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("process", ["poisson", "diurnal"])
    def test_processes_deterministic(self, process):
        a, _ = _run(process=process, n_jobs=200)
        b, _ = _run(process=process, n_jobs=200)
        assert a.fingerprint() == b.fingerprint()
