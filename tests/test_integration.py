"""End-to-end integration tests reproducing the paper's headline shapes
at small scale (the full-size versions live in benchmarks/)."""

import pytest

from repro.analysis import interval_lp_upper_bound
from repro.baselines import FIFOScheduler, GlobalEDF, SNSNoAdmission
from repro.core import SNSScheduler
from repro.sim import (
    AdversarialPicker,
    CriticalPathPicker,
    JobSpec,
    Simulator,
)
from repro.workloads import (
    WorkloadConfig,
    admission_trap,
    fig1_jobs,
    fig2_jobs,
    generate_workload,
)


class TestTheorem1Shape:
    """Figure 1: the 2 - 1/m separation is exact in our engine."""

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_exact_separation(self, m):
        specs = fig1_jobs(m, deadline_factor=10.0)
        t = {}
        for name, picker in [
            ("clairvoyant", CriticalPathPicker()),
            ("adversarial", AdversarialPicker()),
        ]:
            result = Simulator(
                m=m, scheduler=FIFOScheduler(), picker=picker
            ).run(specs)
            t[name] = result.records[0].completion_time
        assert t["clairvoyant"] == specs[0].work / m
        assert t["adversarial"] / t["clairvoyant"] == pytest.approx(
            2.0 - 1.0 / m
        )

    def test_deadline_at_wm_missed_by_adversary(self):
        m = 4
        specs = fig1_jobs(m, deadline_factor=1.0)
        adv = Simulator(
            m=m, scheduler=FIFOScheduler(), picker=AdversarialPicker()
        ).run(specs)
        clair = Simulator(
            m=m, scheduler=FIFOScheduler(), picker=CriticalPathPicker()
        ).run(specs)
        assert adv.total_profit == 0.0
        assert clair.total_profit == 1.0

    def test_speed_two_recovers(self):
        m = 4
        specs = fig1_jobs(m, deadline_factor=1.0, node_work=64.0)
        adv = Simulator(
            m=m,
            scheduler=FIFOScheduler(),
            picker=AdversarialPicker(),
            speed=2.0,
        ).run(specs)
        assert adv.total_profit == 1.0


class TestFigure2Shape:
    def test_below_bound_unmeetable_by_anyone(self):
        m = 8
        # node size 1: bound is nearly tight
        specs = fig2_jobs(m, 512.0, 64.0, 1.0, deadline_factor=0.95)
        for picker in (CriticalPathPicker(), AdversarialPicker()):
            result = Simulator(
                m=m, scheduler=FIFOScheduler(), picker=picker
            ).run(specs)
            assert result.total_profit == 0.0

    def test_at_bound_meetable(self):
        m = 8
        specs = fig2_jobs(m, 512.0, 64.0, 1.0, deadline_factor=1.0)
        result = Simulator(
            m=m, scheduler=FIFOScheduler(), picker=CriticalPathPicker()
        ).run(specs)
        assert result.total_profit == 1.0


class TestTheorem2Shape:
    def test_s_earns_constant_fraction_under_assumption(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=50, m=8, load=2.0, epsilon=1.0, seed=11,
                deadline_policy="slack",
            )
        )
        bound = interval_lp_upper_bound(specs, 8)
        result = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
        assert result.total_profit >= 0.15 * bound

    def test_trap_stream_separates_admission(self):
        trap = admission_trap(8, 20)
        s = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(trap)
        naive = Simulator(m=8, scheduler=SNSNoAdmission(epsilon=1.0)).run(trap)
        assert s.total_profit >= 3 * naive.total_profit

    def test_s_beats_edf_under_overload_with_profits(self):
        import numpy as np

        from repro.workloads import overload_stream

        rng = np.random.default_rng(7)
        specs = overload_stream(16, 1.0, 120, 4.0, rng)
        s = Simulator(m=16, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
        edf = Simulator(m=16, scheduler=GlobalEDF()).run(specs)
        assert s.total_profit > 2 * edf.total_profit


class TestSpeedMonotonicity:
    def test_more_speed_more_profit_for_s(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=40,
                m=8,
                load=2.0,
                epsilon=0.5,
                seed=4,
                deadline_policy="tight",
                tight_factor=1.1,
                family="fork_join",
                family_kwargs={
                    "min_node_work": 8,
                    "max_node_work": 16,
                },
            )
        )
        profits = []
        for speed in (1.0, 2.0, 3.0):
            result = Simulator(
                m=8, scheduler=SNSScheduler(epsilon=0.5), speed=speed
            ).run(specs)
            profits.append(result.total_profit)
        assert profits[0] <= profits[1] <= profits[2] + 1e-9
