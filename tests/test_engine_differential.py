"""Three-backend differential harness: the array engine's pin.

:class:`~repro.sim.array_engine.ArraySimulator` (struct-of-arrays hot
path) claims *bit-identity* with the event engine and the frozen legacy
stepper -- every completion-record field, every counter, the end time
and the float profit sum.  This suite is the enforcement: hypothesis
drives workload family x seed x machine shape x speed x preemption
overhead x batch/stream through all three backends and compares the
full observable surface.

On a mismatch the plain ``assert a == b`` failure is useless for
debugging (two walls of records), so the harness re-runs the diverging
pair in *lockstep streaming*: one submission at a time, comparing live
counters/finished/profit after each, and fails with the first
diverging submission index and both probe tuples.  Combined with
hypothesis shrinking (which minimizes the workload parameters first)
that names the earliest observable decision divergence of a minimal
failing instance.

A separate arm pins mid-run ``snapshot_state``/``restore_state``
round-trips: a snapshot taken from one backend must restore into any
*service* backend (event or array -- the legacy oracle predates the
snapshot API) and finish bit-identically.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.sim import ENGINE_BACKENDS, SERVICE_BACKENDS, make_engine
from repro.workloads import WorkloadConfig, generate_workload

BACKENDS = tuple(sorted(ENGINE_BACKENDS))  # ("array", "event", "legacy")

FACTORIES = {
    "sns": lambda: SNSScheduler(epsilon=1.0),
    "edf": GlobalEDF,
    "fifo": FIFOScheduler,
    "greedy": GreedyDensity,
}

FAMILIES = ["chain", "block", "fork_join", "layered", "gnp", "wavefront", "mixed"]


def observables(result):
    """The full observable surface of a run, as one comparable value."""
    return (
        {
            jid: (
                rec.arrival,
                rec.deadline,
                rec.completion_time,
                rec.profit,
                rec.processor_steps,
                rec.expired,
                rec.abandoned,
                rec.assigned_deadline,
            )
            for jid, rec in result.records.items()
        },
        asdict(result.counters),
        result.end_time,
        result.total_profit,
    )


def _probe(sim):
    """Live mid-stream fingerprint (cheap, available on all backends)."""
    state = sim._require_session()
    return (
        state.t,
        sorted(state.finished),
        asdict(state.counters),
        sum(rec.profit for rec in state.finished.values()),
    )


def _workload(family, seed, n_jobs=15, m=4, load=2.0):
    return generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=load, family=family, epsilon=1.0, seed=seed
        )
    )


def _build(backend, m, scheduler_name, **kw):
    return make_engine(backend, m=m, scheduler=FACTORIES[scheduler_name](), **kw)


def _run(backend, specs, m, scheduler_name, stream, **kw):
    sim = _build(backend, m, scheduler_name, **kw)
    if not stream:
        return sim.run(specs)
    sim.start()
    for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
        sim.submit(spec, t=spec.arrival)
    return sim.finish()


def _first_divergence(backend_a, backend_b, specs, m, scheduler_name, **kw):
    """Lockstep streaming: the first submission after which the two
    backends' live states differ, or None.  This is the shrink-friendly
    locator behind the assertion messages."""
    sim_a = _build(backend_a, m, scheduler_name, **kw)
    sim_b = _build(backend_b, m, scheduler_name, **kw)
    sim_a.start()
    sim_b.start()
    ordered = sorted(specs, key=lambda sp: (sp.arrival, sp.job_id))
    for i, spec in enumerate(ordered):
        sim_a.submit(spec, t=spec.arrival)
        sim_b.submit(spec, t=spec.arrival)
        pa, pb = _probe(sim_a), _probe(sim_b)
        if pa != pb:
            return (
                f"first divergence after submission #{i} "
                f"(job {spec.job_id}, arrival {spec.arrival}):\n"
                f"  {backend_a}: {pa}\n  {backend_b}: {pb}"
            )
    ra, rb = sim_a.finish(), sim_b.finish()
    if observables(ra) != observables(rb):
        return (
            f"divergence only at finish(): "
            f"{backend_a}={observables(ra)!r} {backend_b}={observables(rb)!r}"
        )
    return None


def _assert_identical(backend_a, backend_b, specs, m, scheduler_name, stream, **kw):
    res_a = _run(backend_a, specs, m, scheduler_name, stream, **kw)
    res_b = _run(backend_b, specs, m, scheduler_name, stream, **kw)
    if observables(res_a) == observables(res_b):
        return
    where = _first_divergence(
        backend_a, backend_b, specs, m, scheduler_name, **kw
    )
    pytest.fail(
        f"{backend_a} vs {backend_b} diverged "
        f"(scheduler={scheduler_name}, stream={stream}): {where}"
    )


class TestThreeBackendMatrix:
    """The headline matrix: every backend pair, every scheduler family."""

    @pytest.mark.parametrize("scheduler_name", sorted(FACTORIES))
    @pytest.mark.parametrize("backend", ["array", "legacy"])
    def test_backend_vs_event_batch(self, backend, scheduler_name):
        specs = _workload("mixed", seed=7, n_jobs=40, m=8)
        _assert_identical("event", backend, specs, 8, scheduler_name, False)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_array_vs_event_families(self, family):
        specs = _workload(family, seed=3, n_jobs=25, m=8)
        _assert_identical("event", "array", specs, 8, "sns", False)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(FAMILIES),
        scheduler_name=st.sampled_from(sorted(FACTORIES)),
        load=st.sampled_from([0.5, 2.0, 6.0]),
        speed=st.sampled_from([1.0, 1.5, 2.0]),
        overhead=st.sampled_from([0.0, 1.0]),
        stream=st.booleans(),
    )
    def test_property_all_backends(
        self, seed, family, scheduler_name, load, speed, overhead, stream
    ):
        specs = _workload(family, seed, load=load)
        results = {
            backend: observables(
                _run(
                    backend,
                    specs,
                    4,
                    scheduler_name,
                    stream,
                    speed=speed,
                    preemption_overhead=overhead,
                )
            )
            for backend in BACKENDS
        }
        for backend in ("array", "legacy"):
            if results[backend] != results["event"]:
                where = _first_divergence(
                    "event",
                    backend,
                    specs,
                    4,
                    scheduler_name,
                    speed=speed,
                    preemption_overhead=overhead,
                )
                pytest.fail(
                    f"event vs {backend} diverged (family={family}, "
                    f"seed={seed}, scheduler={scheduler_name}, "
                    f"load={load}, speed={speed}, overhead={overhead}, "
                    f"stream={stream}): {where}"
                )

    def test_batch_equals_stream_per_backend(self):
        specs = _workload("mixed", seed=11, n_jobs=30, m=8, load=2.5)
        for backend in BACKENDS:
            batch = _run(backend, specs, 8, "sns", False)
            stream = _run(backend, specs, 8, "sns", True)
            # the streaming driver takes one extra decision round per
            # submission, so counters legitimately differ; records and
            # profit must not
            assert observables(batch)[0] == observables(stream)[0], backend
            assert batch.total_profit == stream.total_profit, backend


class TestSnapshotRestoreArm:
    """Mid-run snapshot/restore across the service backends."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(["mixed", "fork_join", "layered"]),
        source=st.sampled_from(SERVICE_BACKENDS),
        target=st.sampled_from(SERVICE_BACKENDS),
        scheduler_name=st.sampled_from(["sns", "edf"]),
    )
    def test_snapshot_roundtrip_property(
        self, seed, family, source, target, scheduler_name
    ):
        """Running to a midpoint, snapshotting from ``source`` and
        restoring into ``target`` must finish exactly like the same
        split protocol run event-to-event.

        (The reference is the *split* event run, not an uninterrupted
        one: stopping an advance at the midpoint legitimately splits
        one execution chunk into two, which changes decision counts --
        the pin is that backends agree, not that splitting is free.)
        """
        specs = _workload(family, seed, n_jobs=20, m=4)
        ordered = sorted(specs, key=lambda sp: (sp.arrival, sp.job_id))
        mid = ordered[len(ordered) // 2].arrival + 1

        def split_run(src, dst):
            first = _build(src, 4, scheduler_name)
            first.start()
            late = []
            for spec in ordered:
                if spec.arrival <= mid:
                    first.submit(spec, t=spec.arrival)
                else:
                    late.append(spec)
            first.advance_to(mid)
            snap = first.snapshot_state()
            second = _build(dst, 4, scheduler_name)
            second.restore_state(snap)
            for spec in late:
                second.submit(spec, t=spec.arrival)
            return second.finish()

        reference = split_run("event", "event")
        resumed = split_run(source, target)
        assert observables(resumed) == observables(reference), (
            f"{source}->{target} snapshot at t={mid} diverged from the "
            f"event->event split run (family={family}, seed={seed}, "
            f"scheduler={scheduler_name})"
        )

    def test_legacy_has_no_snapshot_surface(self):
        """The legacy oracle predates the snapshot API -- selecting it
        for service work must fail loudly, not silently degrade."""
        sim = make_engine("legacy", m=4, scheduler=SNSScheduler(epsilon=1.0))
        assert not hasattr(sim, "snapshot_state")
