"""Unit tests for ASCII Gantt rendering."""

import pytest

from repro.analysis import render_gantt, render_utilization
from repro.baselines import GlobalEDF
from repro.dag import block, chain
from repro.sim import JobSpec, Simulator


@pytest.fixture
def traced_result():
    specs = [
        JobSpec(0, block(8), arrival=0, deadline=30, profit=1.0),
        JobSpec(1, chain(6), arrival=2, deadline=40, profit=1.0),
        JobSpec(2, chain(50), arrival=0, deadline=10, profit=1.0),  # expires
    ]
    return Simulator(m=4, scheduler=GlobalEDF(), record_trace=True).run(specs)


class TestGantt:
    def test_renders_one_row_per_job(self, traced_result):
        text = render_gantt(traced_result)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 jobs
        assert lines[0].startswith("t = [")
        assert any("done" in line for line in lines)
        assert any("EXPIRED" in line for line in lines)

    def test_expiry_marker(self, traced_result):
        text = render_gantt(traced_result)
        expired_line = next(l for l in text.splitlines() if "EXPIRED" in l)
        assert "x" in expired_line

    def test_requires_trace(self):
        specs = [JobSpec(0, chain(2), arrival=0, deadline=10)]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        with pytest.raises(ValueError, match="record_trace"):
            render_gantt(result)

    def test_max_jobs_truncation(self, traced_result):
        text = render_gantt(traced_result, max_jobs=1)
        assert len(text.splitlines()) == 2

    def test_busy_bins_nonempty(self, traced_result):
        text = render_gantt(traced_result, width=16)
        body_lines = text.splitlines()[1:]
        assert any(
            any(ch not in " []" for ch in line.split("[", 1)[1].split("]")[0])
            for line in body_lines
        )


class TestUtilization:
    def test_sparkline(self, traced_result):
        text = render_utilization(traced_result, width=20)
        assert text.startswith("util [")
        assert text.endswith("]")
        inner = text[len("util ["):-1]
        assert len(inner) <= 20
        assert any(ch != " " for ch in inner)

    def test_requires_trace(self):
        specs = [JobSpec(0, chain(2), arrival=0, deadline=10)]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        with pytest.raises(ValueError):
            render_utilization(result)
