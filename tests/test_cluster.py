"""Tests for repro.cluster: partitioning, routers, shard handles, the
cluster service, migration, and the telemetry roll-up.

The two load-bearing pins:

* **determinism** -- with the consistent-hash router and migration off,
  a k-shard in-process cluster run over a fixed trace is bit-identical
  (per-job completion records and total profit) to k independent
  ``SchedulingService`` runs over the router's partition of the trace;
* **mode equivalence** -- the multiprocessing-backed cluster produces
  the same records and profit as the in-process one.
"""

import os

import pytest

from repro.cluster import (
    ClusterService,
    ConsistentHashRouter,
    DensityAwareRouter,
    FaultInjector,
    LeastLoadedRouter,
    MigrationMove,
    QueueBalancer,
    ROUTERS,
    RoundRobinRouter,
    Router,
    ShardConfig,
    ShardStats,
    make_router,
    make_scheduler,
    partition_machines,
)
from repro.core import SNSScheduler
from repro.errors import ClusterError
from repro.service import SchedulingService
from repro.workloads import WorkloadConfig, generate_workload

SNS_CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})


def workload(n_jobs=80, m=16, load=2.5, seed=3):
    return generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=load, epsilon=1.0, seed=seed)
    )


def independent_runs(specs, router, m, k):
    """k independent services over the router's partition of specs."""
    sizes = partition_machines(m, k)
    stats = [ShardStats(index=i, m=size) for i, size in enumerate(sizes)]
    router.reset()
    parts = [[] for _ in range(k)]
    for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
        parts[router.route(spec, stats)].append(spec)
    records, profit = {}, 0.0
    for i, part in enumerate(parts):
        result = SchedulingService(
            sizes[i], SNSScheduler(epsilon=1.0)
        ).run_stream(part)
        records.update(result.result.records)
        profit += result.total_profit
    return records, profit


class TestPartition:
    def test_even_split(self):
        assert partition_machines(16, 4) == [4, 4, 4, 4]

    def test_remainder_goes_first(self):
        assert partition_machines(10, 4) == [3, 3, 2, 2]

    def test_single_shard(self):
        assert partition_machines(7, 1) == [7]

    def test_rejects_more_shards_than_machines(self):
        with pytest.raises(ClusterError):
            partition_machines(3, 4)

    def test_rejects_zero_shards(self):
        with pytest.raises(ClusterError):
            partition_machines(4, 0)


class TestConfig:
    def test_build_service_roundtrip(self):
        service = SNS_CFG.with_machines(4).build_service()
        assert service.sim.m == 4
        assert type(service.sim.scheduler).__name__ == "SNSScheduler"

    def test_make_scheduler_known_names(self):
        for name in ("sns", "fifo", "edf", "greedy"):
            kwargs = {"epsilon": 1.0} if name == "sns" else {}
            make_scheduler(name, **kwargs)

    def test_make_scheduler_unknown(self):
        with pytest.raises(ClusterError):
            make_scheduler("nope")

    def test_rejects_unknown_shed_policy(self):
        with pytest.raises(ClusterError):
            ShardConfig(m=2, shed_policy="nope")


class TestRouters:
    def _stats(self, k=4, m=4):
        return [ShardStats(index=i, m=m) for i in range(k)]

    def test_registry_complete(self):
        assert sorted(ROUTERS) == [
            "band-aware",
            "consistent-hash",
            "density-aware",
            "least-loaded",
            "round-robin",
        ]
        for name in ROUTERS:
            assert make_router(name).name == name

    def test_unknown_router(self):
        with pytest.raises(ClusterError):
            make_router("nope")

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        stats = self._stats(3)
        specs = workload(n_jobs=6)
        picks = [router.route(sp, stats) for sp in specs[:6]]
        assert picks == [0, 1, 2, 0, 1, 2]
        router.reset()
        assert router.route(specs[0], stats) == 0

    def test_least_loaded_prefers_min_load(self):
        router = LeastLoadedRouter()
        stats = self._stats(3)
        stats[0].queue_depth = 5
        stats[1].in_flight = 2
        assert router.route(workload(n_jobs=1)[0], stats) == 2

    def test_consistent_hash_stable_and_spread(self):
        router = ConsistentHashRouter()
        stats = self._stats(4)
        specs = workload(n_jobs=200)
        first = [router.route(sp, stats) for sp in specs]
        second = [ConsistentHashRouter().route(sp, stats) for sp in specs]
        assert first == second  # placement is a pure function of the id
        assert len(set(first)) == 4  # every shard used

    def test_consistent_hash_minimal_disruption(self):
        specs = workload(n_jobs=300)
        router = ConsistentHashRouter()
        at4 = [router.route(sp, self._stats(4)) for sp in specs]
        at5 = [router.route(sp, self._stats(5)) for sp in specs]
        moved = sum(1 for a, b in zip(at4, at5) if a != b)
        # growing 4 -> 5 shards should move roughly 1/5 of jobs, not all
        assert moved < len(specs) // 2

    def test_density_aware_balances_value(self):
        router = DensityAwareRouter()
        stats = self._stats(2)
        specs = workload(n_jobs=40)
        for spec in specs:
            router.route(spec, stats)
        mass = router._mass
        assert mass[0] > 0 and mass[1] > 0
        assert abs(mass[0] - mass[1]) / max(mass) < 0.5


class TestClusterDeterminism:
    def test_matches_independent_services(self):
        """THE pin: k-shard cluster == k independent runs (records+profit)."""
        specs = workload(n_jobs=100)
        cluster = ClusterService(
            16, 4, config=SNS_CFG, router="consistent-hash", mode="inprocess"
        )
        result = cluster.run_stream(specs)
        records, profit = independent_runs(
            specs, ConsistentHashRouter(), m=16, k=4
        )
        assert result.records == records
        assert result.total_profit == profit
        assert result.num_jobs == len(specs)

    @pytest.mark.parametrize("k", [1, 2, 8])
    def test_matches_independent_services_across_k(self, k):
        specs = workload(n_jobs=60)
        cluster = ClusterService(
            16, k, config=SNS_CFG, router="consistent-hash", mode="inprocess"
        )
        result = cluster.run_stream(specs)
        records, profit = independent_runs(
            specs, ConsistentHashRouter(), m=16, k=k
        )
        assert result.records == records
        assert result.total_profit == profit

    def test_process_mode_matches_inprocess(self):
        specs = workload(n_jobs=60)
        in_proc = ClusterService(
            16, 4, config=SNS_CFG, router="consistent-hash", mode="inprocess"
        ).run_stream(specs)
        proc = ClusterService(
            16, 4, config=SNS_CFG, router="consistent-hash", mode="process"
        ).run_stream(specs)
        assert proc.records == in_proc.records
        assert proc.total_profit == in_proc.total_profit

    def test_repeat_runs_identical(self):
        specs = workload(n_jobs=50)
        results = [
            ClusterService(
                16, 4, config=SNS_CFG, router="density-aware", mode="inprocess"
            ).run_stream(specs)
            for _ in range(2)
        ]
        assert results[0].records == results[1].records


class TestClusterService:
    def test_router_validated(self):
        class Bad(Router):
            name = "bad"
            needs_stats = False

            def route(self, spec, stats):
                return 99

        cluster = ClusterService(8, 2, config=SNS_CFG, router=Bad())
        with pytest.raises(ClusterError):
            cluster.submit(workload(n_jobs=1)[0], t=0)

    def test_migration_requires_interval(self):
        with pytest.raises(ClusterError):
            ClusterService(8, 2, config=SNS_CFG, migration=QueueBalancer())

    def test_cluster_metrics_count_routing(self):
        specs = workload(n_jobs=30)
        cluster = ClusterService(
            8, 2, config=SNS_CFG, router="round-robin", mode="inprocess"
        )
        result = cluster.run_stream(specs)
        values = result.cluster_metrics.values()
        assert values["routed_total"] == 30.0
        assert values["routed_shard_0"] == 15.0
        assert values["routed_shard_1"] == 15.0

    def test_merged_metrics_roll_up(self):
        specs = workload(n_jobs=40)
        result = ClusterService(
            8, 2, config=SNS_CFG, router="round-robin", mode="inprocess"
        ).run_stream(specs)
        merged = result.metrics.values()
        per_shard = [r.metrics.values() for r in result.shard_results]
        assert merged["completed_total"] == sum(
            v["completed_total"] for v in per_shard
        )
        assert merged["routed_total"] == 40.0

    def test_advance_to_moves_all_shards(self):
        cluster = ClusterService(
            8, 2, config=SNS_CFG, router="round-robin", mode="inprocess"
        )
        cluster.start()
        cluster.advance_to(50)
        assert all(s.stats().now == 50 for s in cluster.shards)
        cluster.finish()


class HotSpotRouter(Router):
    """Degenerate router: everything to shard 0 (migration stressor)."""

    name = "hotspot"
    needs_stats = False

    def route(self, spec, stats):
        return 0


class TestMigration:
    CFG = ShardConfig(
        m=1,
        scheduler="sns",
        scheduler_kwargs={"epsilon": 1.0},
        capacity=8,
        max_in_flight=8,
    )

    def test_queue_balancer_plans_deterministically(self):
        stats = [
            ShardStats(index=0, m=4, queue_depth=10),
            ShardStats(index=1, m=4, queue_depth=0),
            ShardStats(index=2, m=4, queue_depth=0),
        ]
        policy = QueueBalancer(batch=4)
        moves = policy.plan(stats)
        assert moves == [
            MigrationMove(src=0, dst=1, n=4),
            MigrationMove(src=0, dst=2, n=3),
        ]

    def test_no_moves_when_balanced(self):
        stats = [ShardStats(index=i, m=4, queue_depth=1) for i in range(3)]
        assert QueueBalancer().plan(stats) == []

    def test_migration_rescues_hotspot(self):
        specs = workload(n_jobs=120)
        off = ClusterService(
            16, 4, config=self.CFG, router=HotSpotRouter(), mode="inprocess"
        ).run_stream(specs)
        cluster = ClusterService(
            16,
            4,
            config=self.CFG,
            router=HotSpotRouter(),
            mode="inprocess",
            migration=QueueBalancer(),
            migrate_every=2,
        )
        on = cluster.run_stream(specs)
        assert on.num_shed < off.num_shed
        assert on.total_profit > off.total_profit
        assert cluster.cluster_metrics.values()["migrations_total"] > 0

    def test_migration_works_in_process_mode(self):
        specs = workload(n_jobs=60)
        cluster = ClusterService(
            16,
            4,
            config=self.CFG,
            router=HotSpotRouter(),
            mode="process",
            migration=QueueBalancer(),
            migrate_every=2,
        )
        result = cluster.run_stream(specs)
        assert result.num_jobs + result.num_shed == len(specs)
        assert cluster.cluster_metrics.values()["migrations_total"] > 0


class TestShardEnvFlag:
    def test_worker_sets_flag(self):
        """The shard spawner must mark worker processes so nested sweeps
        don't oversubscribe (see resolve_workers)."""
        import multiprocessing

        from repro.cluster.shard import SHARD_ENV_FLAG, _mp_context

        def probe(conn):
            from repro.cluster.shard import _shard_worker  # noqa: F401

            # _shard_worker sets the flag on entry; emulate its preamble
            os.environ[SHARD_ENV_FLAG] = "1"
            conn.send(os.environ.get(SHARD_ENV_FLAG))
            conn.close()

        ctx = _mp_context()
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=probe, args=(child,))
        proc.start()
        child.close()
        assert parent.recv() == "1"
        proc.join()
