"""Unit tests for the workloads package."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    WorkloadConfig,
    admission_trap,
    batch_arrivals,
    bursty_arrivals,
    edf_domino,
    fig1_jobs,
    fig2_jobs,
    generate_workload,
    make_family,
    meets_assumption,
    mixture,
    overload_stream,
    periodic_arrivals,
    poisson_arrivals,
    proportional_deadline,
    sequential_bound,
    slack_deadline,
    spike_arrivals,
    tight_deadline,
    workload_capacity_ratio,
)
from repro.workloads.dag_families import FAMILIES
from repro.workloads.profits import (
    PROFIT_FN_SAMPLERS,
    PROFIT_SAMPLERS,
    make_profit_fn_sampler,
    make_profit_sampler,
)
from repro.profit import check_theorem3_assumption


class TestArrivals:
    def test_poisson_sorted_and_sized(self, rng):
        times = poisson_arrivals(100, 0.5, rng)
        assert len(times) == 100
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0

    def test_poisson_rate_roughly_respected(self, rng):
        times = poisson_arrivals(2000, 0.5, rng)
        mean_gap = times[-1] / 2000
        assert 1.5 < mean_gap < 2.5

    def test_poisson_rejects_bad_args(self, rng):
        with pytest.raises(WorkloadError):
            poisson_arrivals(10, 0.0, rng)
        with pytest.raises(WorkloadError):
            poisson_arrivals(-1, 1.0, rng)

    def test_periodic(self):
        times = periodic_arrivals(4, 10, start=5)
        assert list(times) == [5, 15, 25, 35]

    def test_bursty(self, rng):
        times = bursty_arrivals(6, burst_size=3, burst_gap=100, rng=rng)
        assert list(times[:3]) == [0, 0, 0]
        assert list(times[3:]) == [100, 100, 100]

    def test_batch(self):
        assert list(batch_arrivals(3, 7)) == [7, 7, 7]

    def test_spike(self, rng):
        times = spike_arrivals(20, 10, 0.2, spike_time=50, rng=rng)
        assert np.count_nonzero(times == 50) >= 10


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_each_family_samples_valid_dags(self, name, rng):
        from repro.dag import validate_structure

        family = make_family(name)
        for _ in range(3):
            dag = family(rng)
            validate_structure(dag)

    def test_mixed(self, rng):
        family = make_family("mixed")
        names = {family(rng).name for _ in range(30)}
        assert len(names) >= 3

    def test_unknown_family(self):
        with pytest.raises(WorkloadError):
            make_family("nope")

    def test_mixture_weights(self, rng):
        chain_fam = make_family("chain")
        block_fam = make_family("block")
        only_chain = mixture([chain_fam, block_fam], weights=[1.0, 0.0])
        assert all(only_chain(rng).name == "chain" for _ in range(10))

    def test_mixture_rejects_bad_weights(self, rng):
        with pytest.raises(WorkloadError):
            mixture([make_family("chain")], weights=[0.0])
        with pytest.raises(WorkloadError):
            mixture([])

    def test_integer_works(self, rng):
        dag = make_family("layered")(rng)
        assert np.allclose(dag.work, np.round(dag.work))


class TestDeadlines:
    def test_slack_meets_assumption(self, rng):
        dag = make_family("fork_join")(rng)
        for eps in (0.25, 1.0, 4.0):
            rel = slack_deadline(dag, 8, eps, rng, slack_low=1.0, slack_high=2.0)
            assert meets_assumption(dag, 8, eps, rel)

    def test_slack_rejects_below_one(self, rng):
        dag = make_family("chain")(rng)
        with pytest.raises(WorkloadError):
            slack_deadline(dag, 8, 1.0, rng, slack_low=0.5)

    def test_tight_is_at_feasibility_limit(self, rng):
        dag = make_family("block")(rng)
        rel = tight_deadline(dag, 8, factor=1.0)
        assert rel >= max(dag.span, dag.total_work / 8)
        assert rel <= max(dag.span, dag.total_work / 8) + 1

    def test_proportional(self, rng):
        dag = make_family("chain")(rng)
        assert proportional_deadline(dag, 4, factor=2.0) >= dag.total_work / 2

    def test_sequential_bound_formula(self, rng):
        dag = make_family("fork_join")(rng)
        expected = (dag.total_work - dag.span) / 8 + dag.span
        assert sequential_bound(dag, 8) == pytest.approx(expected)


class TestProfits:
    @pytest.mark.parametrize("name", sorted(PROFIT_SAMPLERS))
    def test_scalar_samplers_positive(self, name, rng):
        sampler = make_profit_sampler(name)
        dag = make_family("fork_join")(rng)
        for _ in range(5):
            assert sampler(dag, rng) > 0

    def test_unknown_sampler(self):
        with pytest.raises(WorkloadError):
            make_profit_sampler("nope")

    @pytest.mark.parametrize("name", sorted(PROFIT_FN_SAMPLERS))
    def test_fn_samplers_honor_theorem3(self, name, rng):
        sampler = make_profit_fn_sampler(name)
        dag = make_family("fork_join")(rng)
        fn = sampler(dag, 8, 1.0, rng)
        assert check_theorem3_assumption(fn, dag.total_work, dag.span, 8, 1.0)

    def test_work_proportional(self, rng):
        sampler = make_profit_sampler("work_proportional", rate=2.0)
        dag = make_family("chain")(rng)
        assert sampler(dag, rng) == pytest.approx(2.0 * dag.total_work)


class TestAdversarialInstances:
    def test_fig1_shape(self):
        (spec,) = fig1_jobs(4)
        assert spec.span == pytest.approx(spec.work / 4)
        assert spec.deadline == spec.work / 4

    def test_fig2_shape(self):
        (spec,) = fig2_jobs(4, 64.0, 16.0, 1.0)
        assert spec.work == 64.0
        assert spec.span == 16.0

    def test_overload_meets_assumption(self, rng):
        specs = overload_stream(8, 1.0, 30, 4.0, rng)
        for spec in specs:
            assert meets_assumption(
                spec.structure, 8, 1.0, spec.relative_deadline
            )

    def test_overload_is_overloaded(self, rng):
        specs = overload_stream(8, 1.0, 100, 4.0, rng)
        assert workload_capacity_ratio(specs, 8) > 1.0

    def test_trap_alternates(self):
        specs = admission_trap(4, 5)
        assert len(specs) == 10
        names = [sp.structure.name for sp in specs]
        assert names[::2] == ["trap"] * 5
        assert names[1::2] == ["payload"] * 5
        # traps are infeasible by construction
        for trap in specs[::2]:
            assert trap.relative_deadline < trap.work / 4

    def test_domino_zero_laxity(self):
        specs = edf_domino(4, 10)
        for spec in specs:
            # deadlines are below the paper's bound: assumption violated
            assert not meets_assumption(
                spec.structure, 4, 0.25, spec.relative_deadline
            )


class TestSuite:
    def test_deterministic_per_seed(self):
        cfg = WorkloadConfig(n_jobs=20, m=8, seed=5)
        a = generate_workload(cfg)
        b = generate_workload(cfg)
        assert [(s.arrival, s.deadline, s.profit) for s in a] == [
            (s.arrival, s.deadline, s.profit) for s in b
        ]
        assert all(x.structure == y.structure for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(n_jobs=20, m=8, seed=1))
        b = generate_workload(WorkloadConfig(n_jobs=20, m=8, seed=2))
        assert [s.arrival for s in a] != [s.arrival for s in b]

    def test_slack_policy_meets_assumption(self):
        cfg = WorkloadConfig(
            n_jobs=30, m=8, epsilon=0.5, seed=0, deadline_policy="slack"
        )
        for spec in generate_workload(cfg):
            assert meets_assumption(
                spec.structure, 8, 0.5, spec.relative_deadline
            )

    def test_profit_fn_mode(self):
        cfg = WorkloadConfig(
            n_jobs=10,
            m=4,
            seed=0,
            profit_fn_sampler=make_profit_fn_sampler("linear"),
        )
        specs = generate_workload(cfg)
        assert all(sp.deadline is None for sp in specs)
        assert all(sp.profit_fn is not None for sp in specs)

    def test_load_targeting(self):
        low = generate_workload(WorkloadConfig(n_jobs=200, m=8, load=0.5, seed=0))
        high = generate_workload(WorkloadConfig(n_jobs=200, m=8, load=4.0, seed=0))
        assert max(s.arrival for s in low) > max(s.arrival for s in high)

    def test_unknown_policy(self):
        with pytest.raises(WorkloadError):
            generate_workload(
                WorkloadConfig(n_jobs=5, m=4, deadline_policy="nope", seed=0)
            )

    def test_bad_load(self):
        with pytest.raises(WorkloadError):
            generate_workload(WorkloadConfig(n_jobs=5, m=4, load=0.0, seed=0))
