"""Unit + property tests of the MILP OPT bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    interval_lp_upper_bound,
    interval_milp_upper_bound,
    opt_bound,
    small_instance_opt,
)
from repro.dag import block, chain
from repro.sim import JobSpec
from repro.workloads import WorkloadConfig, generate_workload


class TestMILPBound:
    def test_single_job(self):
        spec = JobSpec(0, chain(4), arrival=0, deadline=10, profit=3.0)
        assert interval_milp_upper_bound([spec], 2) == pytest.approx(3.0)

    def test_empty(self):
        assert interval_milp_upper_bound([], 4) == 0.0

    def test_integrality_forbids_fractional_packing(self):
        # capacity 12 over the window; 2 jobs of work 8: LP packs 1.5,
        # MILP only 1
        specs = [
            JobSpec(i, block(8), arrival=0, deadline=12, profit=1.0)
            for i in range(2)
        ]
        assert interval_lp_upper_bound(specs, 1) == pytest.approx(1.5)
        assert interval_milp_upper_bound(specs, 1) == pytest.approx(1.0)

    def test_dispatch(self):
        specs = [JobSpec(0, chain(4), arrival=0, deadline=10, profit=3.0)]
        assert opt_bound(specs, 2, method="milp") == pytest.approx(3.0)

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.sampled_from([1.0, 3.0]),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_ordering_milp_between_subset_upper_and_lp(self, n, load, seed):
        """lower(subset) <= MILP <= LP always."""
        specs = generate_workload(
            WorkloadConfig(n_jobs=n, m=4, load=load, seed=seed)
        )
        lp = interval_lp_upper_bound(specs, 4)
        milp = interval_milp_upper_bound(specs, 4)
        assert milp <= lp + 1e-6
        if n <= 10:
            bracket = small_instance_opt(specs, 4)
            # the constructive lower bound is achievable, so MILP (a
            # relaxation of scheduling) must dominate it
            assert bracket.lower <= milp + 1e-6

    def test_achieved_profit_below_milp(self):
        from repro.baselines import GlobalEDF, GreedyDensity
        from repro.core import SNSScheduler
        from repro.sim import Simulator

        specs = generate_workload(
            WorkloadConfig(n_jobs=25, m=4, load=3.0, seed=11)
        )
        milp = interval_milp_upper_bound(specs, 4)
        for factory in (GlobalEDF, GreedyDensity,
                        lambda: SNSScheduler(epsilon=1.0)):
            profit = Simulator(m=4, scheduler=factory()).run(specs).total_profit
            assert profit <= milp + 1e-6
