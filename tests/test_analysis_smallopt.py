"""Unit tests for exact small-instance OPT bracketing."""

import pytest

from repro.analysis import interval_lp_upper_bound, small_instance_opt
from repro.dag import block, chain
from repro.sim import JobSpec
from repro.workloads import WorkloadConfig, generate_workload


class TestSmallOpt:
    def test_single_feasible_job_exact(self):
        specs = [JobSpec(0, chain(4), arrival=0, deadline=10, profit=3.0)]
        result = small_instance_opt(specs, 2)
        assert result.exact
        assert result.lower == result.upper == 3.0
        assert result.lower_subset == (0,)

    def test_single_infeasible_job(self):
        specs = [JobSpec(0, chain(8), arrival=0, deadline=4, profit=3.0)]
        result = small_instance_opt(specs, 2)
        assert result.upper == 0.0
        assert result.lower == 0.0

    def test_capacity_forces_choice(self):
        # two full-machine blocks in the same window; only one fits
        specs = [
            JobSpec(0, block(8), arrival=0, deadline=8, profit=5.0),
            JobSpec(1, block(8), arrival=0, deadline=8, profit=3.0),
        ]
        result = small_instance_opt(specs, 1)
        assert result.exact
        assert result.upper == 5.0
        assert result.lower_subset == (0,)

    def test_disjoint_windows_take_both(self):
        specs = [
            JobSpec(0, block(8), arrival=0, deadline=8, profit=5.0),
            JobSpec(1, block(8), arrival=8, deadline=16, profit=3.0),
        ]
        result = small_instance_opt(specs, 1)
        assert result.exact
        assert result.upper == 8.0

    def test_bracket_is_ordered_and_below_lp(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=8, m=4, load=2.0, seed=5)
        )
        result = small_instance_opt(specs, 4)
        assert result.lower <= result.upper + 1e-9
        # LP relaxation upper bound dominates the subset upper bound's
        # certified lower bound
        lp = interval_lp_upper_bound(specs, 4)
        assert result.lower <= lp + 1e-6

    def test_achievable_profit_below_upper(self):
        from repro.baselines import GlobalEDF
        from repro.sim import Simulator

        specs = generate_workload(
            WorkloadConfig(n_jobs=8, m=4, load=3.0, seed=9)
        )
        result = small_instance_opt(specs, 4)
        achieved = Simulator(m=4, scheduler=GlobalEDF()).run(specs).total_profit
        assert achieved <= result.upper + 1e-6

    def test_too_many_jobs_rejected(self):
        specs = [
            JobSpec(i, chain(2), arrival=0, deadline=10) for i in range(20)
        ]
        with pytest.raises(ValueError, match="exponential"):
            small_instance_opt(specs, 4)

    def test_profit_fn_jobs_rejected(self):
        from repro.profit import StepProfit

        specs = [JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(1, 9))]
        with pytest.raises(ValueError, match="deadline"):
            small_instance_opt(specs, 4)
