"""Unit tests for repro.dag.job.DAGJob runtime semantics."""

import pytest

from repro.dag import DAGJob, DAGStructure, chain
from repro.dag.node import NodeState
from repro.dag.validate import validate_job_state


class TestInitialState:
    def test_sources_ready(self, diamond):
        job = DAGJob(diamond)
        assert set(job.ready_nodes()) == {0}
        assert job.num_ready() == 1
        assert not job.is_complete()
        assert job.completed_nodes == 0

    def test_block_all_ready(self):
        job = DAGJob(DAGStructure([1.0] * 5))
        assert set(job.ready_nodes()) == {0, 1, 2, 3, 4}

    def test_work_span_passthrough(self, diamond):
        job = DAGJob(diamond)
        assert job.total_work == 7.0
        assert job.span == 5.0

    def test_initial_remaining(self, diamond):
        job = DAGJob(diamond)
        assert job.remaining_work() == 7.0
        assert job.remaining_span() == 5.0
        validate_job_state(job)


class TestProcessing:
    def test_partial_then_complete(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        assert not job.process(0, 0.5)
        assert job.node_remaining(0) == 0.5
        assert job.process(0, 0.5)
        assert job.node_state(0) == NodeState.DONE
        assert set(job.ready_nodes()) == {1, 2}

    def test_overshoot_is_lost(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        assert job.process(0, 10.0)  # completes; excess lost
        assert job.node_remaining(0) == 0.0

    def test_join_waits_for_all_predecessors(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        job.process(0, 1.0)
        job.mark_running([1])
        job.process(1, 2.0)
        assert job.node_state(3) == NodeState.PENDING
        assert 3 not in job.ready_nodes()
        job.mark_running([2])
        job.process(2, 3.0)
        assert job.node_state(3) == NodeState.READY

    def test_full_execution(self, diamond):
        job = DAGJob(diamond)
        for node, work in [(0, 1.0), (1, 2.0), (2, 3.0), (3, 1.0)]:
            job.mark_running([node])
            job.process(node, work)
        assert job.is_complete()
        assert job.completed_nodes == 4
        assert job.remaining_work() == 0.0
        assert job.remaining_span() == 0.0
        validate_job_state(job)

    def test_cannot_process_pending(self, diamond):
        job = DAGJob(diamond)
        with pytest.raises(ValueError):
            job.process(3, 1.0)

    def test_cannot_process_done(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        job.process(0, 1.0)
        with pytest.raises(ValueError):
            job.process(0, 1.0)

    def test_negative_amount_rejected(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        with pytest.raises(ValueError):
            job.process(0, -1.0)

    def test_float_residue_snapped(self):
        job = DAGJob(DAGStructure([1.0]))
        job.mark_running([0])
        # three thirds with float error still completes
        job.process(0, 1.0 / 3.0)
        job.process(0, 1.0 / 3.0)
        done = job.process(0, 1.0 / 3.0 + 1e-13)
        assert done
        assert job.is_complete()


class TestMarking:
    def test_mark_running_requires_executable(self, diamond):
        job = DAGJob(diamond)
        with pytest.raises(ValueError):
            job.mark_running([3])

    def test_preemption_round_trip(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        assert job.node_state(0) == NodeState.RUNNING
        job.mark_preempted([0])
        assert job.node_state(0) == NodeState.READY
        # preempting a non-running node is a no-op
        job.mark_preempted([0])
        assert job.node_state(0) == NodeState.READY

    def test_running_node_still_in_ready_set(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        assert 0 in job.ready_nodes()


class TestReset:
    def test_reset_restores_initial(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        job.process(0, 1.0)
        job.mark_running([1])
        job.process(1, 0.5)
        job.reset()
        assert set(job.ready_nodes()) == {0}
        assert job.completed_nodes == 0
        assert job.remaining_work() == 7.0
        assert job.node_remaining(1) == 2.0
        validate_job_state(job)


class TestRemainingSpan:
    def test_decreases_with_critical_progress(self):
        dag = chain(3, node_work=2.0)
        job = DAGJob(dag)
        assert job.remaining_span() == 6.0
        job.mark_running([0])
        job.process(0, 1.0)
        assert job.remaining_span() == 5.0
        job.process(0, 1.0)
        assert job.remaining_span() == 4.0

    def test_parallel_branches(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        job.process(0, 1.0)
        # critical path now 2 -> 3 (3 + 1)
        assert job.remaining_span() == 4.0
        job.mark_running([1])
        job.process(1, 2.0)  # off critical path
        assert job.remaining_span() == 4.0
