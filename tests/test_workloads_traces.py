"""Unit tests for the diurnal synthetic-trace generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import meets_assumption
from repro.workloads.traces import DiurnalConfig, generate_diurnal_trace, phase_of


class TestDiurnal:
    def test_deterministic_per_seed(self):
        cfg = DiurnalConfig(n_jobs=30, seed=5)
        a = generate_diurnal_trace(cfg)
        b = generate_diurnal_trace(cfg)
        assert [s.arrival for s in a] == [s.arrival for s in b]

    def test_meets_assumption(self):
        cfg = DiurnalConfig(n_jobs=30, epsilon=0.5, seed=1)
        for spec in generate_diurnal_trace(cfg):
            assert meets_assumption(
                spec.structure, cfg.m, 0.5, spec.relative_deadline
            )

    def test_rate_modulation_visible(self):
        # with a strong swing, peak half-days should see more arrivals
        cfg = DiurnalConfig(
            n_jobs=400, base_load=1.0, swing=0.9, day_length=512, seed=2
        )
        specs = generate_diurnal_trace(cfg)
        phases = [phase_of(sp, cfg.day_length) for sp in specs]
        peak = phases.count("peak")
        trough = phases.count("trough")
        assert peak > 1.3 * trough

    def test_zero_swing_is_flat(self):
        cfg = DiurnalConfig(n_jobs=400, swing=0.0, day_length=256, seed=3)
        specs = generate_diurnal_trace(cfg)
        phases = [phase_of(sp, cfg.day_length) for sp in specs]
        peak = phases.count("peak")
        assert 0.35 < peak / len(specs) < 0.65

    def test_rejects_bad_config(self):
        with pytest.raises(WorkloadError):
            generate_diurnal_trace(DiurnalConfig(swing=1.0))
        with pytest.raises(WorkloadError):
            generate_diurnal_trace(DiurnalConfig(base_load=0.0))
        with pytest.raises(WorkloadError):
            generate_diurnal_trace(DiurnalConfig(day_length=1))

    def test_runs_under_schedulers(self):
        from repro.core import SNSScheduler
        from repro.sim import Simulator

        specs = generate_diurnal_trace(DiurnalConfig(n_jobs=40, m=8, seed=4))
        result = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
        assert result.total_profit > 0
