"""Fast-forward equivalence: the engine's event-driven chunking must be
semantically identical to stepping one time unit at a time.

A wrapper scheduler forces ``wakeup_after(t) = t + 1``, defeating the
fast-forward, without changing any decision (the wrapped schedulers'
``allocate`` is a pure function of event-driven state).  Completion
times and profits must match exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


class ForceStepping:
    """Delegating wrapper that forbids multi-step fast-forward."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def on_start(self, m, speed):
        self.inner.on_start(m, speed)

    def on_arrival(self, job, t):
        self.inner.on_arrival(job, t)

    def on_completion(self, job, t):
        self.inner.on_completion(job, t)

    def on_expiry(self, job, t):
        self.inner.on_expiry(job, t)

    def assign_deadline(self, job, t):
        return self.inner.assign_deadline(job, t)

    def allocate(self, t):
        return self.inner.allocate(t)

    def wakeup_after(self, t):
        return t + 1


FACTORIES = {
    "edf": GlobalEDF,
    "fifo": FIFOScheduler,
    "greedy": GreedyDensity,
    "sns": lambda: SNSScheduler(epsilon=1.0),
}


def outcomes(result):
    return {
        jid: (rec.completion_time, rec.profit, rec.expired)
        for jid, rec in result.records.items()
    }


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_chunked_equals_stepped(name):
    specs = generate_workload(
        WorkloadConfig(n_jobs=30, m=8, load=2.0, epsilon=1.0, seed=13)
    )
    fast = Simulator(m=8, scheduler=FACTORIES[name]()).run(specs)
    slow = Simulator(
        m=8, scheduler=ForceStepping(FACTORIES[name]())
    ).run(specs)
    assert outcomes(fast) == outcomes(slow)
    # the chunked run must use no more decision rounds than the stepper
    assert fast.counters.decisions <= slow.counters.decisions
    assert fast.counters.steps == slow.counters.steps


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=10 ** 6),
    st.sampled_from(sorted(FACTORIES)),
    st.sampled_from([0.5, 2.0, 6.0]),
    st.sampled_from([1.0, 2.0]),
    st.sampled_from([0.0, 1.0]),
)
def test_chunked_equals_stepped_property(seed, name, load, speed, overhead):
    specs = generate_workload(
        WorkloadConfig(n_jobs=15, m=4, load=load, epsilon=1.0, seed=seed)
    )
    fast = Simulator(
        m=4, scheduler=FACTORIES[name](), speed=speed,
        preemption_overhead=overhead,
    ).run(specs)
    slow = Simulator(
        m=4, scheduler=ForceStepping(FACTORIES[name]()), speed=speed,
        preemption_overhead=overhead,
    ).run(specs)
    assert outcomes(fast) == outcomes(slow)
