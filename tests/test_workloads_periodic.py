"""Unit tests for periodic/sporadic DAG task sets."""

import numpy as np
import pytest

from repro.dag import chain, fork_join
from repro.errors import WorkloadError
from repro.workloads import (
    PeriodicTask,
    harmonic_taskset,
    taskset_utilization,
    unroll_periodic,
)


class TestPeriodicTask:
    def test_implicit_deadline(self):
        task = PeriodicTask(structure=chain(4), period=10)
        assert task.deadline == 10

    def test_explicit_deadline(self):
        task = PeriodicTask(structure=chain(4), period=10, relative_deadline=6)
        assert task.deadline == 6

    def test_utilization_and_density(self):
        task = PeriodicTask(structure=chain(4), period=8, relative_deadline=4)
        assert task.utilization == 0.5
        assert task.density == 1.0

    def test_rejects_bad_period(self):
        with pytest.raises(WorkloadError):
            PeriodicTask(structure=chain(4), period=0)

    def test_taskset_utilization(self):
        tasks = [
            PeriodicTask(structure=chain(4), period=8),
            PeriodicTask(structure=chain(6), period=12),
        ]
        assert taskset_utilization(tasks) == pytest.approx(1.0)


class TestUnroll:
    def test_periodic_release_times(self):
        task = PeriodicTask(structure=chain(2), period=10, offset=3)
        specs = unroll_periodic([task], horizon=35)
        assert [sp.arrival for sp in specs] == [3, 13, 23, 33]
        for sp in specs:
            assert sp.deadline == sp.arrival + 10

    def test_multiple_tasks_sorted_unique_ids(self):
        tasks = [
            PeriodicTask(structure=chain(2), period=7),
            PeriodicTask(structure=fork_join(3), period=5),
        ]
        specs = unroll_periodic(tasks, horizon=40)
        ids = [sp.job_id for sp in specs]
        assert len(set(ids)) == len(ids)
        arrivals = [sp.arrival for sp in specs]
        assert arrivals == sorted(arrivals)

    def test_sporadic_jitter_stretches_gaps(self):
        task = PeriodicTask(structure=chain(2), period=10)
        rng = np.random.default_rng(0)
        specs = unroll_periodic(
            [task], horizon=200, sporadic_jitter=0.5, rng=rng
        )
        gaps = np.diff([sp.arrival for sp in specs])
        assert np.all(gaps >= 10 - 1)  # integer truncation slack
        assert np.any(gaps > 10)

    def test_jitter_requires_rng(self):
        task = PeriodicTask(structure=chain(2), period=10)
        with pytest.raises(WorkloadError):
            unroll_periodic([task], horizon=50, sporadic_jitter=0.5)

    def test_end_to_end_schedulable_taskset(self):
        """A low-utilization harmonic task set completes under S."""
        from repro.core import SNSScheduler
        from repro.sim import Simulator

        structures = [fork_join(4, node_work=1.0) for _ in range(3)]
        tasks = harmonic_taskset(structures, base_period=32, m=8,
                                 target_utilization=0.3)
        specs = unroll_periodic(tasks, horizon=256)
        result = Simulator(m=8, scheduler=SNSScheduler(epsilon=0.25)).run(specs)
        assert result.completed_on_time >= len(specs) // 2


class TestHarmonic:
    def test_respects_target_utilization(self):
        structures = [chain(8) for _ in range(6)]
        tasks = harmonic_taskset(structures, base_period=16, m=4,
                                 target_utilization=0.5)
        assert taskset_utilization(tasks) <= 0.5 * 4 + 1e-9

    def test_periods_exceed_span(self):
        structures = [chain(20)]
        tasks = harmonic_taskset(structures, base_period=2, m=4,
                                 target_utilization=8.0)
        for task in tasks:
            assert task.period > task.structure.span

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            harmonic_taskset([], base_period=10, m=4)
