"""Scenario subsystem: registry, spec round-trips, builder identity, matrix.

The pinned properties:

- ``ScenarioSpec -> TOML/JSON -> ScenarioSpec`` is the identity (and
  fingerprints agree), property-tested over randomized specs.
- A seeded spec-driven run is bit-identical across repeats AND equal
  to the equivalent flag-driven CLI run, for the single service, the
  4-shard process cluster, and the VirtualClock gateway.
- ``repro-serve --dump-scenario`` output re-runs to the same result
  fingerprint as the flags that produced it.
- A matrix run is cell-for-cell identical serially and in parallel.
"""

from __future__ import annotations

import contextlib
import io
import json
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.scenarios import (
    REGISTRY,
    ComponentRegistry,
    ScenarioBuilder,
    ScenarioSpec,
    install_default_components,
    load_spec,
    loads_spec,
    run_matrix,
    run_scenario,
)

install_default_components()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestComponentRegistry:
    def test_register_and_get(self):
        reg = ComponentRegistry()
        reg.register("widget", "alpha", lambda: "a", summary="first")
        component = reg.get("widget", "alpha")
        assert component.create() == "a"
        assert component.summary == "first"

    def test_decorator_form(self):
        reg = ComponentRegistry()

        @reg.register("widget", "beta")
        def make_beta():
            """Beta widget."""
            return "b"

        assert reg.get("widget", "beta").create() == "b"
        assert reg.get("widget", "beta").summary == "Beta widget."

    def test_duplicate_registration_raises(self):
        reg = ComponentRegistry()
        reg.register("widget", "alpha", lambda: "a")
        with pytest.raises(ScenarioError, match="duplicate registration"):
            reg.register("widget", "alpha", lambda: "b")
        # replace=True is the deliberate override
        reg.register("widget", "alpha", lambda: "c", replace=True)
        assert reg.get("widget", "alpha").create() == "c"

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ScenarioError) as excinfo:
            REGISTRY.get("scheduler", "snss")
        assert "did you mean 'sns'" in str(excinfo.value)
        assert "sns" in excinfo.value.suggestions

    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(ScenarioError, match="unknown component kind"):
            REGISTRY.get("schedulr", "sns")

    def test_catalog_is_sorted_and_complete(self):
        catalog = REGISTRY.catalog()
        keys = [(c.kind, c.name) for c in catalog]
        assert keys == sorted(keys)
        assert ("scheduler", "sns") in keys
        assert ("router", "band-aware") in keys
        assert ("engine", "legacy") in keys


# ----------------------------------------------------------------------
# Spec round-trip (property-tested)
# ----------------------------------------------------------------------
spec_docs = st.fixed_dictionaries(
    {},
    optional={
        "scenario": st.fixed_dictionaries(
            {},
            optional={
                "name": st.text(
                    st.characters(
                        codec="ascii", categories=("L", "N"),
                    ),
                    min_size=1,
                    max_size=12,
                ),
                "mode": st.sampled_from(
                    ["batch", "service", "cluster", "gateway"]
                ),
                "seed": st.integers(0, 2**31 - 1),
            },
        ),
        "workload": st.fixed_dictionaries(
            {},
            optional={
                "n_jobs": st.integers(1, 5000),
                "m": st.integers(1, 64),
                "load": st.floats(0.1, 8.0, allow_nan=False),
                "family": st.sampled_from(
                    ["chain", "fork_join", "mixed"]
                ),
                "epsilon": st.floats(0.1, 2.0, allow_nan=False),
                "seed": st.integers(-1, 100),
                "process": st.sampled_from(
                    ["poisson", "diurnal", "flash-crowd", "sessions"]
                ),
                "kind": st.sampled_from(["", "generated", "open-loop"]),
            },
        ),
        "scheduler": st.fixed_dictionaries(
            {},
            optional={
                "name": st.sampled_from(
                    ["sns", "edf", "fifo", "greedy", "nonclairvoyant"]
                ),
            },
        ),
        "cluster": st.fixed_dictionaries(
            {},
            optional={
                "shards": st.integers(1, 8),
                "router": st.sampled_from(
                    ["", "least-loaded", "consistent-hash", "band-aware"]
                ),
                "mode": st.sampled_from(["inprocess", "process"]),
                "coordinate": st.booleans(),
            },
        ),
        "service": st.fixed_dictionaries(
            {},
            optional={
                "capacity": st.integers(1, 4096),
                "max_in_flight": st.integers(0, 256),
            },
        ),
        "gateway": st.fixed_dictionaries(
            {},
            optional={
                "clock": st.sampled_from(["wall", "virtual"]),
                "tick": st.floats(0.001, 1.0, allow_nan=False),
                "max_ticks": st.integers(0, 10_000),
            },
        ),
    },
)


def _force_valid(doc: dict) -> dict:
    """Patch up cross-field constraints the strategies don't know about."""
    doc = json.loads(json.dumps(doc))
    mode = doc.get("scenario", {}).get("mode", "service")
    if mode == "gateway":
        doc.setdefault("workload", {})["kind"] = "open-loop"
        # elastic shards are fixed-size: m must divide shards_max (4)
        doc.setdefault("workload", {})["m"] = 8
    else:
        wl = doc.setdefault("workload", {})
        if wl.get("kind") == "open-loop":
            wl["kind"] = "generated"
        shards = doc.get("cluster", {}).get("shards", 1)
        wl["m"] = max(wl.get("m", 8), shards)
    return doc


class TestSpecRoundTrip:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec_docs)
    def test_toml_and_json_round_trip_identity(self, doc):
        spec = ScenarioSpec.from_dict(_force_valid(doc))
        via_toml = loads_spec(spec.to_toml(), "toml")
        via_json = loads_spec(spec.to_json(), "json")
        assert via_toml == spec
        assert via_json == spec
        assert via_toml.fingerprint() == spec.fingerprint()
        assert via_json.fingerprint() == spec.fingerprint()

    def test_unknown_section_raises_with_suggestion(self):
        with pytest.raises(ScenarioError, match="worklod"):
            ScenarioSpec.from_dict({"worklod": {"n_jobs": 10}})

    def test_unknown_key_raises_with_suggestion(self):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict({"workload": {"n_job": 10}})
        assert "n_jobs" in str(excinfo.value)

    def test_unknown_component_name_raises(self):
        with pytest.raises(ScenarioError, match="did you mean 'sns'"):
            ScenarioSpec.from_dict({"scheduler": {"name": "snss"}})

    def test_bool_rejected_for_int_field(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({"cluster": {"shards": True}})

    def test_preset_fills_unset_keys_only(self):
        spec = ScenarioSpec.from_dict(
            {"workload": {"preset": "overload", "load": 1.5}}
        )
        assert spec.workload.load == 1.5  # explicit key wins
        assert spec.workload.process == "poisson"
        bare = ScenarioSpec.from_dict({"workload": {"preset": "overload"}})
        assert bare.workload.load == 3.0

    def test_preset_override_reapplies_values(self):
        base = ScenarioSpec.from_dict({"workload": {"load": 1.5}})
        overridden = base.with_overrides({"workload.preset": "overload"})
        assert overridden.workload.load == 3.0

    def test_seed_threading(self):
        spec = ScenarioSpec.from_dict({"scenario": {"seed": 42}})
        assert spec.workload_seed() == 42
        pinned = ScenarioSpec.from_dict(
            {"scenario": {"seed": 42}, "workload": {"seed": 7}}
        )
        assert pinned.workload_seed() == 7

    def test_gateway_requires_open_loop(self):
        with pytest.raises(ScenarioError, match="open-loop"):
            ScenarioSpec.from_dict(
                {
                    "scenario": {"mode": "gateway"},
                    "workload": {"kind": "generated", "m": 8},
                }
            )

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        spec = ScenarioSpec.from_dict({"scenario": {"seed": 3}})
        path.write_text(spec.to_toml())
        assert load_spec(path) == spec


# ----------------------------------------------------------------------
# Spec-driven vs flag-driven bit-identity
# ----------------------------------------------------------------------
def _run_cli(main, argv):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0, buf.getvalue()
    return buf.getvalue()


def _flag_fingerprint(out: str) -> str:
    return re.search(r"^fingerprint:\s+(\w+)", out, re.M).group(1)


class TestSpecVsFlagsIdentity:
    def test_service_spec_matches_flags_and_repeats(self, tmp_path):
        from repro.service.cli import main as serve_main

        flags = [
            "--n-jobs", "60", "--m", "4", "--load", "2.5",
            "--seed", "13", "--report-every", "0",
        ]
        fp_flags = _flag_fingerprint(_run_cli(serve_main, flags))

        dump = _run_cli(serve_main, flags + ["--dump-scenario"])
        spec = loads_spec(dump, "toml")
        r1, r2 = run_scenario(spec), run_scenario(spec)
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.fingerprint() == fp_flags

        # --scenario consumes the dumped spec back to the same result
        path = tmp_path / "svc.toml"
        path.write_text(dump)
        out = _run_cli(serve_main, ["--scenario", str(path)])
        assert fp_flags in out

    def test_process_cluster_spec_matches_flags(self, tmp_path):
        from repro.service.cli import main as serve_main

        flags = [
            "--n-jobs", "60", "--m", "8", "--shards", "4",
            "--cluster-mode", "process", "--seed", "13",
            "--report-every", "0",
        ]
        fp_flags = _flag_fingerprint(_run_cli(serve_main, flags))
        dump = _run_cli(serve_main, flags + ["--dump-scenario"])
        spec = loads_spec(dump, "toml")
        assert spec.mode == "cluster" and spec.cluster.shards == 4
        r1, r2 = run_scenario(spec), run_scenario(spec)
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.fingerprint() == fp_flags

    def test_gateway_virtual_clock_spec_matches_flags(self, tmp_path):
        from repro.gateway.cli import main as gateway_main

        flags = [
            "--n-jobs", "120", "--m", "8", "--clock", "virtual",
            "--seed", "5", "--process", "flash-crowd",
            "--autoscale", "--shards-initial", "2",
        ]
        fp_flags = _flag_fingerprint(_run_cli(gateway_main, flags))
        dump = _run_cli(gateway_main, flags + ["--dump-scenario"])
        spec = loads_spec(dump, "toml")
        assert spec.mode == "gateway"
        r1, r2 = run_scenario(spec), run_scenario(spec)
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.fingerprint() == fp_flags

    def test_scenario_cli_dump_rerun_identity(self, tmp_path):
        from repro.scenarios.cli import main as scenario_main

        spec = ScenarioSpec.from_dict(
            {
                "scenario": {"mode": "service", "seed": 21},
                "workload": {"n_jobs": 40, "m": 4},
            }
        )
        path = tmp_path / "spec.toml"
        path.write_text(spec.to_toml())
        dumped = _run_cli(scenario_main, ["run", str(path), "--dump-scenario"])
        redump = tmp_path / "redump.toml"
        redump.write_text(dumped)
        out1 = _run_cli(scenario_main, ["run", str(path)])
        out2 = _run_cli(scenario_main, ["run", str(redump)])
        fp = re.compile(r"result fingerprint (\w+)")
        assert fp.search(out1).group(1) == fp.search(out2).group(1)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class TestScenarioBuilder:
    def test_batch_equals_direct_simulator(self):
        from repro.scenarios.builder import build_workload
        from repro.sim.engine import Simulator

        spec = ScenarioSpec.from_dict(
            {
                "scenario": {"mode": "batch", "seed": 8},
                "workload": {"n_jobs": 50, "m": 4},
            }
        )
        result = run_scenario(spec)
        direct = Simulator(
            m=4, scheduler=ScenarioBuilder(spec).make_scheduler()
        ).run(build_workload(spec))
        assert result.total_profit == direct.total_profit
        assert result.records == direct.records

    def test_epsilon_threads_into_scheduler(self):
        spec = ScenarioSpec.from_dict({"workload": {"epsilon": 0.25}})
        scheduler = ScenarioBuilder(spec).make_scheduler()
        assert scheduler.constants.epsilon == 0.25

    def test_explicit_kwargs_beat_threaded_epsilon(self):
        spec = ScenarioSpec.from_dict(
            {
                "workload": {"epsilon": 0.25},
                "scheduler": {"name": "sns", "kwargs": {"epsilon": 0.75}},
            }
        )
        scheduler = ScenarioBuilder(spec).make_scheduler()
        assert scheduler.constants.epsilon == 0.75

    def test_coordinated_cluster_runs(self):
        spec = ScenarioSpec.from_dict(
            {
                "scenario": {"mode": "cluster", "seed": 3},
                "workload": {"n_jobs": 40, "m": 4},
                "cluster": {
                    "shards": 2, "mode": "inprocess", "coordinate": True,
                },
            }
        )
        r1, r2 = run_scenario(spec), run_scenario(spec)
        assert r1.fingerprint() == r2.fingerprint()

    def test_tracing_collects_events(self):
        spec = ScenarioSpec.from_dict(
            {
                "scenario": {"mode": "service", "seed": 1},
                "workload": {"n_jobs": 20, "m": 4},
                "tracing": {"enabled": True},
            }
        )
        result = run_scenario(spec)
        assert result.trace_events


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
class TestMatrix:
    @pytest.fixture(scope="class")
    def base(self):
        return ScenarioSpec.from_dict(
            {
                "scenario": {"mode": "batch", "seed": 0},
                "workload": {"n_jobs": 30, "m": 4},
            }
        )

    def test_serial_equals_parallel(self, base):
        axes = {"scheduler": ["sns", "edf"], "workload": ["steady", "overload"]}
        serial = run_matrix(base, axes, seeds=[0, 1], workers=1)
        parallel = run_matrix(base, axes, seeds=[0, 1], workers=2)
        assert serial.to_dict() == parallel.to_dict()

    def test_table_has_axes_and_bound_fraction(self, base):
        result = run_matrix(
            base, {"scheduler": ["sns", "edf"]}, seeds=[0], workers=1
        )
        assert result.headers()[:1] == ["scheduler"]
        assert "frac_of_bound" in result.headers()
        assert len(result.rows()) == 2
        for cell in result.cells:
            for value in cell.values:
                assert 0.0 <= value["fraction"] <= 1.0 + 1e-9

    def test_unknown_axis_suggests(self, base):
        with pytest.raises(ScenarioError, match="schedler"):
            run_matrix(base, {"schedler": ["sns"]}, seeds=[0], workers=1)


# ----------------------------------------------------------------------
# Unified registries (satellites)
# ----------------------------------------------------------------------
class TestUnifiedRegistries:
    def test_experiments_view(self):
        from repro.experiments.registry import EXPERIMENTS

        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}
        assert callable(EXPERIMENTS["E7"])
        with pytest.raises(KeyError):
            EXPERIMENTS["E99"]

    def test_cluster_make_scheduler_resolves_all_baselines(self):
        from repro.cluster.config import SCHEDULER_REGISTRY, make_scheduler

        assert "nonclairvoyant" in SCHEDULER_REGISTRY
        assert len(SCHEDULER_REGISTRY) == len(REGISTRY.names("scheduler"))
        scheduler = make_scheduler("llf")
        assert type(scheduler).__name__ == "LeastLaxityFirst"

    def test_cluster_make_scheduler_unknown_name(self):
        from repro.cluster.config import make_scheduler
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="did you mean"):
            make_scheduler("snss")


# ----------------------------------------------------------------------
# CLI error surfaces
# ----------------------------------------------------------------------
class TestCliErrors:
    def test_serve_unknown_scheduler_exits_2_with_suggestion(self, capsys):
        from repro.service.cli import main as serve_main

        assert serve_main(["--scheduler", "snss", "--n-jobs", "5"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sns'" in err

    def test_gateway_unknown_router_exits_2_with_suggestion(self, capsys):
        from repro.gateway.cli import main as gateway_main

        assert gateway_main(["--router", "least-loded"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'least-loaded'" in err

    def test_scenario_cli_validate(self, tmp_path, capsys):
        from repro.scenarios.cli import main as scenario_main

        good = tmp_path / "good.toml"
        good.write_text(ScenarioSpec.from_dict({}).to_toml())
        bad = tmp_path / "bad.toml"
        bad.write_text('[scheduler]\nname = "snss"\n')
        assert scenario_main(["validate", str(good)]) == 0
        assert scenario_main(["validate", str(good), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sns'" in err

    def test_scenario_cli_list_kind(self, capsys):
        from repro.scenarios.cli import main as scenario_main

        assert scenario_main(["list", "--kind", "router"]) == 0
        out = capsys.readouterr().out
        assert "band-aware" in out and "least-loaded" in out
