"""Unit and scenario tests for the paper's scheduler S."""

import math

import pytest

from repro.core import Constants, SNSScheduler
from repro.dag import block, chain, fork_join
from repro.errors import SchedulingError
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob
from repro.profit import StepProfit


def make_view(dag, arrival=0, deadline=100, profit=1.0, job_id=0):
    return ActiveJob(
        JobSpec(job_id, dag, arrival=arrival, deadline=deadline, profit=profit)
    ).view


@pytest.fixture
def sched():
    s = SNSScheduler(epsilon=1.0)  # delta=0.25, 1+2delta=1.5
    s.on_start(m=16, speed=1.0)
    return s


class TestComputeState:
    def test_hand_computed_allotment(self, sched):
        # W=130, L=10 via fork_join? use explicit: block won't give L=10.
        # chain of 10 plus block merged is complex; test formulas directly
        # with a fork-join: width 64, node 2, fork/join 1 ->
        # W = 64*2 + 2 = 130, L = 2 + 2 = ... use simpler numbers below.
        view = make_view(block(120, node_work=1.0), deadline=12)
        # W=120, L=1; n = 119/(12/1.5 - 1) = 17 -> clamped to 16 = m
        state = sched.compute_state(view)
        assert state.allotment == 16

    def test_sequential_job_gets_one_processor(self, sched):
        view = make_view(chain(10), deadline=100)
        state = sched.compute_state(view)
        assert state.allotment == 1
        assert state.x == pytest.approx(10.0)
        assert state.delta_good  # 100 >= 1.5 * 10

    def test_infeasible_denominator_clamps_to_m(self, sched):
        # D/1.5 <= L: block job with deadline barely above span
        view = make_view(block(64, node_work=8.0), deadline=9)
        state = sched.compute_state(view)
        assert state.allotment == 16
        assert not state.delta_good

    def test_density_definition(self, sched):
        view = make_view(chain(10), deadline=100, profit=5.0)
        state = sched.compute_state(view)
        # v = p / (x * n) = 5 / (10 * 1)
        assert state.density == pytest.approx(0.5)

    def test_requires_deadline(self, sched):
        view = ActiveJob(
            JobSpec(0, chain(4), arrival=0, profit_fn=StepProfit(1.0, 50.0))
        ).view
        with pytest.raises(SchedulingError):
            sched.compute_state(view)

    def test_speed_scaling_shrinks_effective_work(self):
        s = SNSScheduler(epsilon=1.0)
        s.on_start(m=16, speed=2.0)
        view = make_view(block(64, node_work=8.0), deadline=9)
        # at speed 2: W=256, L=4 -> denominator 9/1.5 - 4 = 2 -> n = 126
        # clamped to 16; but delta-goodness now possible at higher D
        state = s.compute_state(view)
        assert state.allotment == 16

    def test_delta_goodness_boundary(self, sched):
        # chain: x = W; delta-good iff D >= 1.5 * W
        view_good = make_view(chain(10), deadline=15)
        view_bad = make_view(chain(10), deadline=14)
        assert sched.compute_state(view_good).delta_good
        assert not sched.compute_state(view_bad).delta_good


class TestAdmission:
    def test_delta_good_job_admitted(self, sched):
        view = make_view(chain(10), deadline=100)
        sched.on_arrival(view, 0)
        assert view.job_id in sched.queue_started
        assert view.job_id in sched.started_ids

    def test_non_delta_good_parked(self, sched):
        view = make_view(chain(10), deadline=14)
        sched.on_arrival(view, 0)
        assert view.job_id in sched.queue_parked
        assert view.job_id not in sched.queue_started

    def test_band_overflow_parks(self, sched):
        # Jobs requiring ~8 processors each at the same density: capacity
        # b*m ~ 13.9 admits one, parks the second.
        for jid in (0, 1, 2):
            dag = block(80, node_work=1.0)
            view = make_view(dag, deadline=18, job_id=jid)
            sched.on_arrival(view, 0)
        # n = 79/(12-1) = 7.2 -> 8; two fit (16 <= 13.86? no: 8+8 > 13.86)
        assert len(sched.queue_started) == 1
        assert len(sched.queue_parked) == 2

    def test_zero_profit_never_started(self, sched):
        view = make_view(chain(10), deadline=100, profit=0.0)
        sched.on_arrival(view, 0)
        assert view.job_id in sched.queue_parked

    def test_observation3_band_invariant_after_arrivals(self, sched):
        for jid in range(12):
            view = make_view(
                block(40 + jid, node_work=1.0),
                deadline=20 + jid,
                profit=1.0 + 0.3 * jid,
                job_id=jid,
            )
            sched.on_arrival(view, 0)
        load = sched.bands.max_band_load(sched.constants.c)
        assert load <= sched.constants.band_capacity(16) + 1e-9


class TestPromotion:
    def test_parked_promoted_on_completion(self, sched):
        # fill the band, then complete the blocker; the parked job is
        # delta-fresh and must be promoted
        views = [
            make_view(block(80, node_work=1.0), deadline=18, job_id=0),
            make_view(block(80, node_work=1.0), deadline=18, job_id=1),
        ]
        sched.on_arrival(views[0], 0)
        sched.on_arrival(views[1], 0)
        assert 1 in sched.queue_parked
        sched.on_completion(views[0], 1)
        assert 1 in sched.queue_started

    def test_stale_parked_not_promoted(self, sched):
        views = [
            make_view(block(80, node_work=1.0), deadline=18, job_id=0),
            make_view(block(80, node_work=1.0), deadline=18, job_id=1),
        ]
        sched.on_arrival(views[0], 0)
        sched.on_arrival(views[1], 0)
        # at t=10 job 1 is no longer delta-fresh:
        # d - t = 8 < (1+delta) * x = 1.25 * 11
        sched.on_completion(views[0], 10)
        assert 1 in sched.queue_parked

    def test_expiry_cleans_both_queues(self, sched):
        v0 = make_view(chain(10), deadline=100, job_id=0)
        v1 = make_view(chain(10), deadline=14, job_id=1)  # parked
        sched.on_arrival(v0, 0)
        sched.on_arrival(v1, 0)
        sched.on_expiry(v0, 100)
        sched.on_expiry(v1, 14)
        assert len(sched.queue_started) == 0
        assert len(sched.queue_parked) == 0
        assert len(sched.bands) == 0


class TestAllocation:
    def test_exactly_n_i_processors(self, sched):
        view = make_view(chain(10), deadline=100)
        sched.on_arrival(view, 0)
        alloc = sched.allocate(0)
        assert alloc == {0: 1}

    def test_density_order_priority(self):
        # Three unit-allotment jobs in three *separate* density bands
        # (profit ratios exceed c ~ 52.7) so all are admitted; with
        # m=2 only the two densest run.
        sched = SNSScheduler(epsilon=1.0)
        sched.on_start(m=2, speed=1.0)
        for jid, profit in [(0, 1.0), (1, 100.0), (2, 10000.0)]:
            sched.on_arrival(
                make_view(chain(4), deadline=100, profit=profit, job_id=jid), 0
            )
        assert len(sched.queue_started) == 3
        assert sched.allocate(0) == {2: 1, 1: 1}

    def test_skips_jobs_that_do_not_fit(self):
        # A (n=12, densest) and B (n=12) are in separate bands and both
        # admitted; with m=16, A leaves only 4 free so B is skipped but
        # C (n=1) still runs -- the paper's "continue to the next job".
        sched = SNSScheduler(epsilon=1.0)
        sched.on_start(m=16, speed=1.0)
        a = make_view(block(121, node_work=1.0), deadline=17, profit=13200.0,
                      job_id=0)
        b = make_view(block(121, node_work=1.0), deadline=17, profit=132.0,
                      job_id=1)
        c = make_view(chain(4), deadline=100, profit=0.02, job_id=2)
        for view in (a, b, c):
            sched.on_arrival(view, 0)
        assert sched.all_states[0].allotment == 12
        assert sched.all_states[1].allotment == 12
        assert len(sched.queue_started) == 3
        assert sched.allocate(0) == {0: 12, 2: 1}

    def test_no_job_admittable_when_m_too_small(self):
        # with m=1, b*m < 1 < n_i: condition (2) can never pass
        sched = SNSScheduler(epsilon=1.0)
        sched.on_start(m=1, speed=1.0)
        sched.on_arrival(make_view(chain(4), deadline=100, job_id=0), 0)
        assert 0 in sched.queue_parked
        assert sched.allocate(0) == {}


class TestEndToEnd:
    def test_single_job_completes_within_x(self):
        m = 8
        sched = SNSScheduler(epsilon=1.0)
        spec = JobSpec(0, fork_join(16, node_work=2.0), arrival=0,
                       deadline=60, profit=1.0)
        result = Simulator(m=m, scheduler=sched).run([spec])
        rec = result.records[0]
        assert rec.on_time
        state = sched.all_states[0]
        assert rec.completion_time <= math.ceil(state.x)

    def test_paper_constants_variant_runs(self):
        consts = Constants.from_epsilon(1.0, c=5.0)
        sched = SNSScheduler(constants=consts)
        spec = JobSpec(0, chain(8), arrival=0, deadline=40, profit=1.0)
        result = Simulator(m=4, scheduler=sched).run([spec])
        assert result.total_profit == 1.0

    def test_unstarted_scheduler_raises_on_use(self):
        sched = SNSScheduler(epsilon=1.0)
        view = make_view(chain(4), deadline=100)
        with pytest.raises((SchedulingError, ZeroDivisionError)):
            sched.on_arrival(view, 0)
