"""Scale smoke test: the engine handles experiment-scale workloads
within sane wall-clock budgets (guards performance regressions)."""

import time

from repro.core import SNSScheduler
from repro.baselines import GlobalEDF
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def test_large_workload_completes_quickly():
    specs = generate_workload(
        WorkloadConfig(n_jobs=600, m=64, load=2.0, epsilon=1.0, seed=99)
    )
    t0 = time.perf_counter()
    result = Simulator(m=64, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
    elapsed = time.perf_counter() - t0
    assert result.num_jobs == 600
    assert elapsed < 30.0, f"large SNS run took {elapsed:.1f}s"


def test_large_workload_edf():
    specs = generate_workload(
        WorkloadConfig(n_jobs=600, m=64, load=2.0, epsilon=1.0, seed=98)
    )
    t0 = time.perf_counter()
    result = Simulator(m=64, scheduler=GlobalEDF()).run(specs)
    elapsed = time.perf_counter() - t0
    assert result.total_profit > 0
    assert elapsed < 30.0, f"large EDF run took {elapsed:.1f}s"


def test_wide_parallel_job():
    """A single 20k-node job unfolds without quadratic blowup."""
    from repro.dag import block_with_chain
    from repro.sim import JobSpec
    from repro.baselines import FIFOScheduler

    m = 16
    dag = block_with_chain(float(16 * 16 * 80), m)  # 20480 unit nodes
    spec = JobSpec(0, dag, arrival=0, deadline=10 ** 9, profit=1.0)
    t0 = time.perf_counter()
    result = Simulator(m=m, scheduler=FIFOScheduler()).run([spec])
    elapsed = time.perf_counter() - t0
    assert result.records[0].completed
    assert elapsed < 20.0, f"wide job took {elapsed:.1f}s"
