"""Property-based integration tests of the engine + schedulers.

Random workloads under every scheduler must keep the accounting
invariants: profits match the spec oracle, processor-step conservation
holds, deadlines are respected, and runs are deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    verify_profits,
    verify_trace_consistency,
    verify_work_accounting,
)
from repro.baselines import (
    FIFOScheduler,
    GlobalEDF,
    GreedyDensity,
    LeastLaxityFirst,
)
from repro.core import GeneralProfitScheduler, SNSScheduler
from repro.sim import JobSpec, RandomPicker, Simulator
from repro.workloads import WorkloadConfig, generate_workload

SCHEDULER_FACTORIES = [
    GlobalEDF,
    LeastLaxityFirst,
    GreedyDensity,
    FIFOScheduler,
    lambda: SNSScheduler(epsilon=1.0),
]


@st.composite
def workload_configs(draw):
    return WorkloadConfig(
        n_jobs=draw(st.integers(min_value=1, max_value=25)),
        m=draw(st.integers(min_value=1, max_value=12)),
        load=draw(st.sampled_from([0.5, 1.0, 2.0, 4.0])),
        family=draw(st.sampled_from(["chain", "block", "fork_join", "mixed"])),
        epsilon=draw(st.sampled_from([0.25, 1.0, 2.0])),
        deadline_policy=draw(st.sampled_from(["slack", "tight"])),
        profit=draw(st.sampled_from(["unit", "uniform", "heavy_tailed"])),
        seed=draw(st.integers(min_value=0, max_value=10 ** 6)),
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_configs(),
    st.integers(min_value=0, max_value=len(SCHEDULER_FACTORIES) - 1),
)
def test_run_invariants_hold(config, sched_idx):
    specs = generate_workload(config)
    sim = Simulator(
        m=config.m,
        scheduler=SCHEDULER_FACTORIES[sched_idx](),
        picker=RandomPicker(config.seed),
        record_trace=True,
        validate=True,
    )
    result = sim.run(specs)
    assert verify_profits(result, specs) == []
    assert verify_work_accounting(result, specs) == []
    assert verify_trace_consistency(result) == []
    # every job is accounted for exactly once
    assert set(result.records) == {sp.job_id for sp in specs}


@settings(max_examples=10, deadline=None)
@given(workload_configs())
def test_determinism(config):
    def once():
        sim = Simulator(
            m=config.m,
            scheduler=SNSScheduler(epsilon=1.0),
            picker=RandomPicker(config.seed),
        )
        result = sim.run(generate_workload(config))
        return {
            jid: (rec.completion_time, rec.profit)
            for jid, rec in result.records.items()
        }

    assert once() == once()


@settings(max_examples=10, deadline=None)
@given(workload_configs())
def test_sns_observation2_property(config):
    """Every job S completes used at most ceil(x_i)*n_i processor-steps."""
    from repro.analysis import verify_sns_observation2

    specs = generate_workload(config)
    sched = SNSScheduler(epsilon=1.0)
    result = Simulator(m=config.m, scheduler=sched).run(specs)
    assert verify_sns_observation2(result, sched) == []


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_profit_scheduler_invariants(n_jobs, m, seed):
    from repro.workloads.profits import make_profit_fn_sampler

    config = WorkloadConfig(
        n_jobs=n_jobs,
        m=m,
        load=2.0,
        family="fork_join",
        epsilon=1.0,
        profit_fn_sampler=make_profit_fn_sampler("linear"),
        seed=seed,
    )
    specs = generate_workload(config)
    result = Simulator(
        m=m, scheduler=GeneralProfitScheduler(epsilon=1.0), record_trace=True
    ).run(specs)
    assert verify_profits(result, specs) == []
    assert verify_work_accounting(result, specs) == []
    assert verify_trace_consistency(result) == []
