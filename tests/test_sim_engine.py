"""Unit tests for the simulation engine."""

import pytest

from repro.baselines import FIFOScheduler, GlobalEDF
from repro.dag import block, chain, fork_join
from repro.errors import AllocationError, SimulationError
from repro.profit import FlatThenLinear, StepProfit
from repro.sim import (
    EventKind,
    JobSpec,
    SchedulerBase,
    Simulator,
)


def run_one(dag, m=2, deadline=1000, speed=1.0, **kw):
    spec = JobSpec(0, dag, arrival=0, deadline=deadline, profit=1.0)
    result = Simulator(m=m, scheduler=FIFOScheduler(), speed=speed, **kw).run([spec])
    return result.records[0], result


class TestTimingExactness:
    def test_chain_takes_its_span(self):
        rec, _ = run_one(chain(7), m=4)
        assert rec.completion_time == 7

    def test_block_perfectly_parallel(self):
        rec, _ = run_one(block(8), m=4)
        assert rec.completion_time == 2  # 8 unit nodes on 4 procs

    def test_block_uneven_waves(self):
        rec, _ = run_one(block(9), m=4)
        assert rec.completion_time == 3

    def test_fork_join(self):
        rec, _ = run_one(fork_join(4), m=4)
        assert rec.completion_time == 3  # fork, middle wave, join

    def test_speed_two_halves_node_time(self):
        rec, _ = run_one(chain(4, node_work=8.0), m=1, speed=2.0)
        assert rec.completion_time == 16  # 4 nodes * ceil(8/2)

    def test_fractional_speed_ceil_semantics(self):
        rec, _ = run_one(chain(1, node_work=8.0), m=1, speed=3.0)
        assert rec.completion_time == 3  # ceil(8/3)

    def test_unit_nodes_cannot_speed_up(self):
        rec, _ = run_one(chain(5), m=1, speed=4.0)
        assert rec.completion_time == 5


class TestDeadlines:
    def test_on_time_earns_profit(self):
        rec, res = run_one(chain(4), m=1, deadline=4)
        assert rec.completion_time == 4
        assert rec.profit == 1.0
        assert rec.on_time
        assert res.total_profit == 1.0

    def test_expiry_removes_job(self):
        rec, res = run_one(chain(10), m=1, deadline=5)
        assert rec.expired
        assert rec.completion_time is None
        assert rec.profit == 0.0
        assert res.counters.expiries == 1

    def test_expired_job_stops_consuming(self):
        # after job 0 expires, job 1 gets the machine
        specs = [
            JobSpec(0, chain(100), arrival=0, deadline=5, profit=1.0),
            JobSpec(1, chain(10), arrival=0, deadline=100, profit=1.0),
        ]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        assert result.records[0].expired
        assert result.records[1].completed
        assert result.records[1].completion_time == 15  # 5 wasted + 10

    def test_arrival_before_deadline_event_order(self):
        # two jobs, second arrives exactly at first's deadline
        specs = [
            JobSpec(0, chain(3), arrival=0, deadline=3, profit=1.0),
            JobSpec(1, chain(3), arrival=3, deadline=6, profit=1.0),
        ]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        assert result.total_profit == 2.0


class TestProfitFunctions:
    def test_flat_then_linear_profit(self):
        fn = FlatThenLinear(peak=2.0, x_star=4.0, decay_span=8.0)
        spec = JobSpec(0, chain(8), arrival=0, profit_fn=fn)
        result = Simulator(m=1, scheduler=FIFOScheduler()).run([spec])
        # completes at 8 => profit 2 * (1 - (8-4)/8) = 1.0
        assert result.records[0].completion_time == 8
        assert result.records[0].profit == pytest.approx(1.0)

    def test_step_profit_zero_after_knee(self):
        fn = StepProfit(peak=3.0, x_star=4.0)
        spec = JobSpec(0, chain(8), arrival=0, profit_fn=fn)
        result = Simulator(m=1, scheduler=FIFOScheduler()).run([spec])
        assert result.records[0].profit == 0.0


class TestHorizonAndAbandon:
    def test_horizon_abandons_unfinished(self):
        rec, res = run_one(chain(100), m=1, horizon=10)
        assert rec.abandoned
        assert res.counters.abandons == 1
        assert res.end_time <= 10

    def test_horizon_before_arrival(self):
        spec = JobSpec(0, chain(2), arrival=50, deadline=60, profit=1.0)
        res = Simulator(m=1, scheduler=FIFOScheduler(), horizon=10).run([spec])
        assert res.records[0].abandoned

    def test_no_deadline_no_allocation_terminates(self):
        class LazyScheduler(SchedulerBase):
            def allocate(self, t):
                return {}

        spec = JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(1, 100))
        res = Simulator(m=1, scheduler=LazyScheduler()).run([spec])
        assert res.records[0].abandoned


class TestValidationErrors:
    def test_duplicate_job_ids(self):
        specs = [
            JobSpec(0, chain(1), arrival=0, deadline=5),
            JobSpec(0, chain(1), arrival=1, deadline=5),
        ]
        with pytest.raises(SimulationError, match="duplicate"):
            Simulator(m=1, scheduler=FIFOScheduler()).run(specs)

    def test_over_allocation_rejected(self):
        class GreedyBad(SchedulerBase):
            def __init__(self):
                self.ids = []

            def on_arrival(self, job, t):
                self.ids.append(job.job_id)

            def allocate(self, t):
                return {jid: 5 for jid in self.ids}  # 5 > m=2

        spec = JobSpec(0, chain(2), arrival=0, deadline=10)
        with pytest.raises(AllocationError, match="> m"):
            Simulator(m=2, scheduler=GreedyBad()).run([spec])

    def test_unknown_job_rejected(self):
        class Phantom(SchedulerBase):
            def allocate(self, t):
                return {99: 1}

        spec = JobSpec(0, chain(2), arrival=0, deadline=10)
        with pytest.raises(AllocationError, match="inactive"):
            Simulator(m=2, scheduler=Phantom()).run([spec])

    def test_non_int_count_rejected(self):
        class Fractional(SchedulerBase):
            def __init__(self):
                self.ids = []

            def on_arrival(self, job, t):
                self.ids.append(job.job_id)

            def allocate(self, t):
                return {jid: 0.5 for jid in self.ids}

        spec = JobSpec(0, chain(2), arrival=0, deadline=10)
        with pytest.raises(AllocationError, match="int"):
            Simulator(m=2, scheduler=Fractional()).run([spec])

    def test_bad_machine_params(self):
        with pytest.raises(ValueError):
            Simulator(m=0, scheduler=FIFOScheduler())
        with pytest.raises(ValueError):
            Simulator(m=1, scheduler=FIFOScheduler(), speed=0.0)
        with pytest.raises(ValueError):
            Simulator(m=1, scheduler=FIFOScheduler(), horizon=-1)


class TestTrace:
    def test_trace_events(self):
        spec = JobSpec(0, chain(3), arrival=2, deadline=10, profit=1.0)
        res = Simulator(m=1, scheduler=FIFOScheduler(), record_trace=True).run(
            [spec]
        )
        kinds = [e.kind for e in res.trace.events]
        assert EventKind.ARRIVAL in kinds
        assert EventKind.COMPLETION in kinds

    def test_trace_slices_cover_execution(self):
        spec = JobSpec(0, chain(3), arrival=0, deadline=10, profit=1.0)
        res = Simulator(m=2, scheduler=FIFOScheduler(), record_trace=True).run(
            [spec]
        )
        assert res.trace.processor_steps_of(0) >= 3
        assert res.trace.utilization() > 0

    def test_no_trace_by_default(self):
        _, res = run_one(chain(2))
        assert res.trace is None


class TestCounters:
    def test_busy_steps_accounting(self):
        rec, res = run_one(block(8), m=4)
        assert res.counters.busy_steps == 8  # one busy step per unit node
        assert res.counters.allocated_steps >= res.counters.busy_steps

    def test_processor_steps_per_job(self):
        rec, _ = run_one(chain(5), m=3)
        # FIFO allocates min(free, ready)=1 processor to the chain
        assert rec.processor_steps == 5

    def test_completion_counter(self):
        _, res = run_one(chain(2))
        assert res.counters.completions == 1


class TestMultiJob:
    def test_two_jobs_share_machine(self):
        specs = [
            JobSpec(0, block(4), arrival=0, deadline=100, profit=1.0),
            JobSpec(1, block(4), arrival=0, deadline=100, profit=1.0),
        ]
        res = Simulator(m=4, scheduler=FIFOScheduler()).run(specs)
        assert res.total_profit == 2.0
        assert res.end_time == 2

    def test_late_arrival_waits(self):
        specs = [
            JobSpec(0, chain(4), arrival=0, deadline=100, profit=1.0),
            JobSpec(1, chain(4), arrival=2, deadline=100, profit=1.0),
        ]
        res = Simulator(m=2, scheduler=FIFOScheduler()).run(specs)
        assert res.records[0].completion_time == 4
        assert res.records[1].completion_time == 6

    def test_idle_gap_between_arrivals(self):
        specs = [
            JobSpec(0, chain(2), arrival=0, deadline=100, profit=1.0),
            JobSpec(1, chain(2), arrival=50, deadline=100, profit=1.0),
        ]
        res = Simulator(m=1, scheduler=FIFOScheduler()).run(specs)
        assert res.records[1].completion_time == 52

    def test_empty_workload(self):
        res = Simulator(m=2, scheduler=FIFOScheduler()).run([])
        assert res.total_profit == 0.0
        assert res.num_jobs == 0
