"""Chaos harness tests: every fault class preserves bit-identity."""

import pytest

from repro.cluster import ShardConfig
from repro.errors import ClusterError
from repro.observability import (
    TraceRecorder,
    from_chrome,
    read_jsonl,
    to_chrome,
    to_jsonl,
    validate_trace,
    write_jsonl,
)
from repro.resilience import (
    ChaosEvent,
    ChaosSchedule,
    ResilientClusterService,
    SupervisorConfig,
    run_chaos,
)
from repro.resilience.chaos import FAULT_KINDS
from repro.workloads import WorkloadConfig, generate_workload


def workload(n_jobs=60, m=8, seed=11):
    return generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=2.5, epsilon=1.0, seed=seed)
    )


def mid_time(specs):
    arrivals = sorted(sp.arrival for sp in specs)
    return arrivals[len(arrivals) // 2]


class TestSchedule:
    def test_generate_is_deterministic(self):
        a = ChaosSchedule.generate(7, k=4, horizon=1000)
        b = ChaosSchedule.generate(7, k=4, horizon=1000)
        assert a.events == b.events
        assert ChaosSchedule.generate(8, k=4, horizon=1000).events != a.events

    def test_parse_roundtrip(self):
        schedule = ChaosSchedule.parse("crash:0:200,hang:1:450")
        assert schedule.events == [
            ChaosEvent(kind="crash", shard=0, at=200),
            ChaosEvent(kind="hang", shard=1, at=450),
        ]
        assert ChaosSchedule.parse(schedule.spec()).events == schedule.events

    def test_parse_rejects_garbage(self):
        with pytest.raises(ClusterError):
            ChaosSchedule.parse("crash:0")
        with pytest.raises(ClusterError):
            ChaosSchedule.parse("meteor:0:10")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError):
            ChaosEvent(kind="flood", shard=0, at=1)

    def test_events_sorted_by_time(self):
        schedule = ChaosSchedule.parse("hang:1:450,crash:0:200")
        assert [e.at for e in schedule.events] == [200, 450]


@pytest.mark.parametrize("mode", ["inprocess", "process"])
@pytest.mark.parametrize("kind", FAULT_KINDS)
class TestIdentityPerFault:
    def test_single_fault_preserves_identity(self, mode, kind, tmp_path):
        specs = workload()
        schedule = ChaosSchedule.parse(f"{kind}:0:{mid_time(specs)}")
        report = run_chaos(
            specs,
            m=8,
            k=2,
            schedule=schedule,
            mode=mode,
            workdir=str(tmp_path),
        )
        assert report.faults_fired == 1
        assert report.identical_records, (
            f"{kind}/{mode}: lost={report.lost_jobs} extra={report.extra_jobs}"
        )
        assert report.chaos_profit == report.clean_profit
        assert report.unaccounted == []
        assert report.ok


class TestMultiFault:
    @pytest.mark.parametrize("mode", ["inprocess", "process"])
    def test_seeded_schedule_preserves_identity(self, mode, tmp_path):
        specs = workload(n_jobs=80)
        horizon = max(sp.arrival for sp in specs)
        schedule = ChaosSchedule.generate(3, k=2, horizon=horizon, n_events=3)
        report = run_chaos(
            specs, m=8, k=2, schedule=schedule, mode=mode,
            workdir=str(tmp_path),
        )
        assert report.ok, report.to_dict()
        assert report.faults_fired == 3

    def test_repeated_crashes_on_one_shard(self, tmp_path):
        specs = workload(n_jobs=80)
        times = sorted({sp.arrival for sp in specs})
        hits = ",".join(
            f"crash:0:{times[i]}" for i in (len(times) // 4, len(times) // 2,
                                            3 * len(times) // 4)
        )
        report = run_chaos(
            specs, m=8, k=2, schedule=ChaosSchedule.parse(hits),
            mode="inprocess", workdir=str(tmp_path),
        )
        assert report.ok, report.to_dict()
        assert report.recoveries >= 3

    def test_report_dict_shape(self, tmp_path):
        specs = workload(n_jobs=40)
        report = run_chaos(
            specs, m=8, k=2,
            schedule=ChaosSchedule.parse(f"crash:1:{mid_time(specs)}"),
            mode="inprocess",
        )
        payload = report.to_dict()
        assert payload["ok"] is True
        assert set(payload) >= {
            "schedule", "mode", "clean_profit", "chaos_profit",
            "identical_records", "lost_jobs", "recoveries",
        }


class TestChaosUnderTracing:
    """Crash recovery with a live tracer: exactly-once spans.

    Shard recovery truncates the crashed shard's trace back to its
    checkpoint mark and the deterministic log-tail replay regenerates
    the dropped events exactly once -- so a chaos-run trace must pass
    every completeness invariant, carry no duplicate submissions, and
    the traced run must stay bit-identical to the untraced one.
    """

    CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    def _run_with_crash(self, specs, fault_t, tracer=None):
        cluster = ResilientClusterService(
            8, 2, config=self.CFG, mode="inprocess",
            supervisor=SupervisorConfig(
                heartbeat_every=4, backoff_base=0.0, backoff_max=0.0,
                max_restarts=5,
            ),
            tracer=tracer,
        )
        cluster.start()
        injected = False
        for spec in specs:
            if spec.arrival >= fault_t and not injected:
                cluster.inject_crash(0)
                injected = True
            cluster.submit(spec, t=spec.arrival)
        return cluster, cluster.finish()

    def _traced_chaos_run(self):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        tracer = TraceRecorder()
        cluster, result = self._run_with_crash(
            specs, mid_time(specs), tracer=tracer
        )
        assert cluster.supervisor.events, "the crash was never detected"
        return specs, tracer, result

    def test_recovered_trace_has_exactly_once_spans(self):
        specs, tracer, result = self._traced_chaos_run()
        assert any(ev[3] == "recovery" for ev in tracer.events)
        assert validate_trace(tracer.events) == []
        # replayed submissions did not duplicate routing: every job was
        # routed exactly once in the surviving trace
        routed = sorted(ev[4] for ev in tracer.events if ev[3] == "route")
        assert routed == sorted(sp.job_id for sp in specs)

    def test_traced_chaos_run_is_bit_identical(self):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        _cluster, untraced = self._run_with_crash(specs, fault_t)
        _cluster, traced = self._run_with_crash(
            specs, fault_t, tracer=TraceRecorder()
        )
        assert traced.records == untraced.records
        assert traced.total_profit == untraced.total_profit
        assert traced.end_time == untraced.end_time

    def test_chaos_trace_round_trips_through_chrome(self, tmp_path):
        """JSONL -> Chrome -> JSONL is bit-identical on a recovery trace."""
        _specs, tracer, _result = self._traced_chaos_run()
        jsonl_path = tmp_path / "chaos.jsonl"
        write_jsonl(tracer.events, str(jsonl_path))
        recovered = from_chrome(to_chrome(read_jsonl(str(jsonl_path))))
        assert to_jsonl(recovered) == jsonl_path.read_text()
        assert validate_trace(recovered) == []
