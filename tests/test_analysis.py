"""Unit tests for the analysis package (metrics, OPT bounds, stats,
tables, verification)."""

import math

import pytest

from repro.analysis import (
    Aggregate,
    best_effort_lower_bound,
    compare_schedulers,
    empirical_competitive_ratio,
    feasible_profit_bound,
    format_markdown,
    format_table,
    geometric_mean,
    interval_lp_upper_bound,
    opt_bound,
    profit_fraction,
    replicate,
    summarize,
    verify_profits,
    verify_trace_consistency,
    verify_work_accounting,
)
from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.dag import block, chain
from repro.profit import FlatThenLinear, StepProfit
from repro.sim import JobSpec, Simulator
from repro.workloads import WorkloadConfig, generate_workload


class TestLPBound:
    def test_single_feasible_job(self):
        spec = JobSpec(0, chain(4), arrival=0, deadline=10, profit=3.0)
        assert interval_lp_upper_bound([spec], 2) == pytest.approx(3.0)

    def test_single_infeasible_job(self):
        # window 3 < span 4: no schedule can finish it
        spec = JobSpec(0, chain(4), arrival=0, deadline=3, profit=3.0)
        assert interval_lp_upper_bound([spec], 2) == 0.0

    def test_capacity_constrains_selection(self):
        # two block jobs, each work 8, same window of 8 steps, m=1:
        # capacity 8 allows exactly one
        specs = [
            JobSpec(i, block(8), arrival=0, deadline=8, profit=1.0)
            for i in range(2)
        ]
        assert interval_lp_upper_bound(specs, 1) == pytest.approx(1.0)

    def test_fractional_relaxation_can_split(self):
        # capacity 12 over the window; 2 jobs of work 8: LP packs 1.5
        specs = [
            JobSpec(i, block(8), arrival=0, deadline=12, profit=1.0)
            for i in range(2)
        ]
        assert interval_lp_upper_bound(specs, 1) == pytest.approx(1.5)

    def test_disjoint_windows_both_fit(self):
        specs = [
            JobSpec(0, block(8), arrival=0, deadline=8, profit=1.0),
            JobSpec(1, block(8), arrival=8, deadline=16, profit=1.0),
        ]
        assert interval_lp_upper_bound(specs, 1) == pytest.approx(2.0)

    def test_profit_fn_variants(self):
        fn = FlatThenLinear(2.0, 8.0, decay_span=8.0)
        spec = JobSpec(0, chain(4), arrival=0, profit_fn=fn)
        bound = interval_lp_upper_bound([spec], 2)
        # the job can finish by 8 (well within flat region): bound = peak
        assert bound == pytest.approx(2.0, abs=1e-6)

    def test_empty(self):
        assert interval_lp_upper_bound([], 4) == 0.0

    def test_bound_dominates_any_schedule(self):
        specs = generate_workload(WorkloadConfig(n_jobs=30, m=4, load=2.0, seed=7))
        bound = interval_lp_upper_bound(specs, 4)
        for factory in (GlobalEDF, GreedyDensity, FIFOScheduler,
                        lambda: SNSScheduler(epsilon=1.0)):
            profit = Simulator(m=4, scheduler=factory()).run(specs).total_profit
            assert profit <= bound + 1e-6


class TestOtherBounds:
    def test_feasible_bound_dominates_lp(self):
        specs = generate_workload(WorkloadConfig(n_jobs=30, m=4, load=2.0, seed=7))
        assert feasible_profit_bound(specs, 4) >= interval_lp_upper_bound(
            specs, 4
        ) - 1e-9

    def test_feasible_bound_drops_impossible(self):
        specs = [
            JobSpec(0, chain(4), arrival=0, deadline=3, profit=5.0),
            JobSpec(1, chain(4), arrival=0, deadline=10, profit=2.0),
        ]
        assert feasible_profit_bound(specs, 2) == 2.0

    def test_feasible_bound_profit_fn(self):
        fn = StepProfit(3.0, 10.0)
        spec = JobSpec(0, chain(4), arrival=0, profit_fn=fn)
        assert feasible_profit_bound([spec], 2) == 3.0

    def test_lower_bound_below_upper(self):
        specs = generate_workload(WorkloadConfig(n_jobs=25, m=4, load=2.0, seed=3))
        lower = best_effort_lower_bound(specs, 4)
        upper = interval_lp_upper_bound(specs, 4)
        assert lower <= upper + 1e-6

    def test_opt_bound_dispatch(self):
        specs = generate_workload(WorkloadConfig(n_jobs=10, m=4, seed=1))
        assert opt_bound(specs, 4, method="lp") <= opt_bound(
            specs, 4, method="feasible"
        ) + 1e-9
        with pytest.raises(ValueError):
            opt_bound(specs, 4, method="nope")


class TestMetrics:
    def _result(self):
        specs = [
            JobSpec(0, chain(4), arrival=0, deadline=10, profit=2.0),
            JobSpec(1, chain(40), arrival=0, deadline=10, profit=5.0),
        ]
        return Simulator(m=1, scheduler=GlobalEDF()).run(specs), specs

    def test_summarize(self):
        result, _ = self._result()
        summary = summarize(result)
        assert summary.total_profit == 2.0
        assert summary.jobs == 2
        assert summary.on_time == 1
        assert summary.expired == 1
        assert summary.on_time_fraction == 0.5
        assert 0 < summary.utilization <= 1

    def test_profit_fraction(self):
        result, _ = self._result()
        assert profit_fraction(result, 4.0) == 0.5
        assert profit_fraction(result, 0.0) == float("inf")

    def test_empirical_ratio(self):
        result, _ = self._result()
        assert empirical_competitive_ratio(result, 4.0) == 2.0


class TestVerification:
    def test_clean_run_verifies(self):
        specs = generate_workload(WorkloadConfig(n_jobs=20, m=4, load=2.0, seed=2))
        result = Simulator(
            m=4, scheduler=GlobalEDF(), record_trace=True
        ).run(specs)
        assert verify_profits(result, specs) == []
        assert verify_work_accounting(result, specs) == []
        assert verify_trace_consistency(result) == []

    def test_corrupted_profit_detected(self):
        specs = [JobSpec(0, chain(4), arrival=0, deadline=10, profit=2.0)]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        result.records[0].profit = 99.0
        assert verify_profits(result, specs)

    def test_missing_trace_reported(self):
        specs = [JobSpec(0, chain(4), arrival=0, deadline=10)]
        result = Simulator(m=1, scheduler=GlobalEDF()).run(specs)
        assert verify_trace_consistency(result) == ["no trace recorded"]


class TestCompare:
    def test_compare_schedulers(self):
        specs = generate_workload(WorkloadConfig(n_jobs=15, m=4, load=2.0, seed=1))
        rows = compare_schedulers(
            specs,
            4,
            {"edf": GlobalEDF, "fifo": FIFOScheduler},
            bound_method="feasible",
        )
        assert [r.name for r in rows] == ["edf", "fifo"]
        for row in rows:
            assert 0 <= row.fraction_of_bound <= 1 + 1e-9
            assert row.jobs == 15


class TestStats:
    def test_aggregate(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.n == 3
        assert agg.lo < 2.0 < agg.hi

    def test_aggregate_singleton(self):
        agg = Aggregate.of([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0

    def test_aggregate_empty_and_nan(self):
        agg = Aggregate.of([float("nan")])
        assert agg.n == 0
        assert math.isnan(agg.mean)

    def test_replicate(self):
        agg = replicate(lambda seed: float(seed), [1, 2, 3])
        assert agg.mean == 2.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))
        assert math.isnan(geometric_mean([0.0, 1.0]))


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [10, 3]], title="T")
        assert "T" in text
        assert "2.346" in text
        lines = text.splitlines()
        assert len(lines) == 6  # title, rule, header, separator, 2 rows

    def test_format_markdown(self):
        md = format_markdown(["x", "y"], [[1, 2]])
        assert md.splitlines()[0] == "| x | y |"
        assert md.splitlines()[2] == "| 1 | 2 |"
