"""Property tests of the trace layer: spans, intervals, histograms.

The invariants pinned here hold for *every* recorded trace, whatever
the workload:

* every submitted job reaches **exactly one** terminal event
  (completed / missed / shed / abandoned), and no terminal is orphaned;
* per-machine execution intervals derived from slices never overlap --
  a machine runs one node at a time -- and each job's slices fall
  inside its lifecycle span;
* the profit recomputed from completion events in trace order is
  **bit-equal** to the engine-reported total profit;
* :class:`~repro.observability.RingHistogram` summaries agree with a
  brute-force recomputation over any observation sequence (hypothesis).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GlobalEDF
from repro.core import SNSScheduler
from repro.observability import (
    EVENT_KINDS,
    TERMINAL_KINDS,
    Profiler,
    RingHistogram,
    TraceRecorder,
    build_spans,
    event_data,
    machine_intervals,
    recompute_profit,
    submitted_ids,
    to_jsonl,
    validate_trace,
)
from repro.service import SchedulingService, make_shed_policy
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def traced_engine_run(n_jobs=60, m=8, family="mixed", seed=0, load=2.5,
                      scheduler=None):
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=load, family=family,
            epsilon=1.0, seed=seed,
        )
    )
    tracer = TraceRecorder()
    result = Simulator(
        m=m,
        scheduler=scheduler or SNSScheduler(epsilon=1.0),
        recorder=tracer,
    ).run(specs)
    return tracer, result, specs


class TestTraceInvariants:
    @pytest.mark.parametrize("family", ["chain", "fork_join", "mixed"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_engine_trace_is_valid(self, family, seed):
        tracer, _result, _specs = traced_engine_run(family=family, seed=seed)
        assert validate_trace(tracer.events) == []

    def test_baseline_scheduler_trace_is_valid(self):
        tracer, _result, _specs = traced_engine_run(scheduler=GlobalEDF())
        assert validate_trace(tracer.events) == []

    def test_every_kind_is_registered(self):
        tracer, _result, _specs = traced_engine_run()
        assert {ev[3] for ev in tracer.events} <= set(EVENT_KINDS)

    def test_exactly_one_terminal_per_submitted_job(self):
        tracer, result, specs = traced_engine_run(load=3.0)
        spans = build_spans(tracer.events)
        submitted = submitted_ids(tracer.events)
        assert submitted == {sp.job_id for sp in specs}
        for job_id in submitted:
            assert len(spans[job_id].terminal_events) == 1
        terminals = {s.terminal for s in spans.values()}
        assert terminals <= set(TERMINAL_KINDS.values())

    def test_recomputed_profit_bit_equal(self):
        tracer, result, _specs = traced_engine_run(seed=5)
        assert recompute_profit(tracer.events) == result.total_profit

    def test_machine_intervals_never_overlap_and_respect_m(self):
        m = 8
        tracer, _result, _specs = traced_engine_run(m=m, seed=2)
        lanes = machine_intervals(tracer.events)
        assert lanes
        assert all(0 <= lane < m for _shard, lane in lanes)
        for intervals in lanes.values():
            prev_end = None
            for t0, t1, _job in intervals:
                assert t0 < t1
                if prev_end is not None:
                    assert t0 >= prev_end
                prev_end = t1

    def test_slices_fall_inside_job_spans(self):
        tracer, _result, _specs = traced_engine_run(seed=4)
        spans = build_spans(tracer.events)
        for ev in tracer.events:
            if ev[3] != "slice":
                continue
            data = event_data(ev)
            for job_id, _k, _nodes in data["entries"]:
                span = spans[job_id]
                assert span.start <= ev[2]
                assert span.end is None or data["t1"] <= span.end

    def test_service_trace_with_shedding_is_valid(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=80, m=4, load=4.0, epsilon=1.0, seed=6)
        )
        tracer = TraceRecorder()
        service = SchedulingService(
            4,
            SNSScheduler(epsilon=1.0),
            capacity=8,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=4,
            tracer=tracer,
        )
        result = service.run_stream(specs)
        assert validate_trace(tracer.events) == []
        spans = build_spans(tracer.events)
        shed = [s for s in spans.values() if s.terminal == "shed"]
        assert len(shed) == result.num_shed
        assert recompute_profit(tracer.events) == result.result.total_profit

    def test_validator_flags_violations(self):
        """The validator actually fires on malformed traces."""
        # submitted but never terminated
        assert validate_trace([(0, None, 1, "submit", 42, None)])
        # duplicate terminals
        dup = [
            (0, None, 1, "submit", 7, None),
            (1, None, 2, "completion", 7, {"profit": 1.0}),
            (2, None, 3, "completion", 7, {"profit": 1.0}),
        ]
        assert any("terminal" in p for p in validate_trace(dup))
        # orphaned terminal
        orphan = [(0, None, 2, "expiry", 9, None)]
        assert any("orphan" in p for p in validate_trace(orphan))
        # overlapping machine intervals
        overlap = [
            (0, None, 0, "submit", 1, None),
            (1, None, 0, "submit", 2, None),
            (2, None, 0, "slice", None,
             {"t1": 4, "entries": [(1, 1, 1), (2, 1, 1)]}),
            (3, None, 2, "slice", None, {"t1": 5, "entries": [(1, 2, 1)]}),
            (4, None, 5, "completion", 1, {"profit": 1.0}),
            (5, None, 5, "completion", 2, {"profit": 1.0}),
        ]
        assert any("overlap" in p for p in validate_trace(overlap))

    def test_jsonl_round_trip_preserves_invariants(self):
        """The span helpers accept exported dicts, and a trace keeps its
        invariants (and bit-equal profit) across the JSONL round-trip."""
        import json

        tracer, result, _specs = traced_engine_run(seed=8)
        lines = to_jsonl(tracer.events).strip().splitlines()
        back = [json.loads(line) for line in lines]
        assert len(back) == len(tracer.events)
        assert validate_trace(back) == []
        assert recompute_profit(back) == result.total_profit
        assert submitted_ids(back) == submitted_ids(tracer.events)


class TestRingHistogram:
    @given(
        st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_summary_matches_bruteforce(self, values, capacity):
        hist = RingHistogram("h", capacity=capacity)
        for v in values:
            hist.observe(v)
        assert len(hist) == min(len(values), capacity)
        assert hist.count == len(values)
        if values:
            assert hist.min == min(values)
            assert hist.max == max(values)
            assert hist.total == pytest.approx(sum(values))
            # the retained window is exactly the most recent values,
            # oldest first
            assert list(hist.window()) == values[-capacity:]
            window = sorted(values[-capacity:])
            assert hist.quantile(0.5) == window[
                min(len(window) - 1, int(0.5 * len(window)))
            ]
        else:
            assert hist.summary()["count"] == 0

    def test_quantile_bounds(self):
        hist = RingHistogram("h", capacity=8)
        for v in [5.0, 1.0, 3.0]:
            hist.observe(v)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 5.0


class TestProfiler:
    def test_sections_time_and_summarize(self):
        prof = Profiler()
        with prof.time("alpha"):
            pass
        with prof.time("alpha"):
            pass
        with prof.time("beta"):
            pass
        summary = prof.summary()
        assert summary["alpha"]["count"] == 2
        assert summary["beta"]["count"] == 1
        assert all(entry["total"] >= 0.0 for entry in summary.values())

    def test_engine_profiler_sections_populated(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=30, m=4, load=2.0, epsilon=1.0, seed=1)
        )
        prof = Profiler()
        result = Simulator(
            m=4, scheduler=SNSScheduler(epsilon=1.0), profiler=prof
        ).run(specs)
        summary = prof.summary()
        assert summary["allocate"]["count"] == result.counters.decisions
        assert summary["execute"]["count"] == result.counters.decisions
