"""Tests for repro.cluster.coordinator: the band ledger, the steal
planner, coordinated cluster runs, and candidate trials.

The load-bearing pins:

* **profit superset** -- on adversarial overload traces (the paper's
  Figure 1/2 DAG shapes under sustained overload), a coordinated
  k-shard cluster recovers at least the profit-weighted admissions of
  the uncoordinated partition, per seed and strictly in aggregate;
* **determinism** -- seeded coordinated runs are bit-identical across
  repeats and across inprocess/process modes, including runs that
  steal *running* jobs (displacement evictions move jobs that have
  executed work);
* **commit purity** -- a candidate trial's winner produces exactly the
  result of running the winning configuration alone over the stream.
"""

import math

import numpy as np
import pytest

from repro.cluster import (
    BandLedger,
    CandidateTrial,
    ClusterService,
    Coordinator,
    ShardConfig,
    ShardStats,
    StealPlanner,
    coordinate,
)
from repro.core import SNSScheduler
from repro.core.theory import Constants
from repro.errors import ClusterError
from repro.service import SchedulingService
from repro.sim.jobs import JobSpec
from repro.workloads import WorkloadConfig, generate_workload
from repro.workloads.adversarial import fig1_jobs, fig2_jobs, overload_stream

SNS_CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})
CONSTS = Constants.from_epsilon(1.0)

#: the defaults the bench and the CLIs stand behind
SETTINGS = dict(
    refresh_every=16,
    steal_batch=16,
    steal_margin=3.0,
    max_displaced=3,
    max_moves_per_job=2,
)


def mixed_workload(n_jobs=400, m=16, load=4.0, seed=7):
    return generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=load, family="mixed", epsilon=1.0,
            seed=seed,
        )
    )


def adversarial_trace(m, seed, n_stream=150):
    """Sustained overload spiced with Figure 1/2 DAG jobs.

    The fig1/fig2 shapes (wide block behind a long chain, and the
    reverse) are the paper's lower-bound instances; re-timed copies at
    tight-but-feasible deadlines make admission genuinely contested.
    """
    rng = np.random.default_rng(seed)
    specs = overload_stream(m, 1.0, n_stream, 3.0, rng)
    next_id = max(s.job_id for s in specs) + 1
    horizon = max(s.arrival for s in specs)
    per_shard_m = max(2, m // 4)
    for i in range(12):
        base = fig1_jobs(per_shard_m, deadline_factor=3.0)[0] if i % 2 else (
            fig2_jobs(per_shard_m, 96.0, 12.0, deadline_factor=3.0)[0]
        )
        arrival = int(rng.integers(0, horizon + 1))
        rel = base.deadline - base.arrival
        specs.append(
            JobSpec(
                next_id + i,
                base.structure,
                arrival=arrival,
                deadline=arrival + rel,
                profit=float(1.0 + rng.pareto(1.5)),
            )
        )
    return specs


def build_cluster(m, k, coordinated, mode="inprocess", **overrides):
    cluster = ClusterService(
        m,
        k,
        config=SNS_CFG,
        router="band-aware" if coordinated else "consistent-hash",
        mode=mode,
    )
    coordinator = None
    if coordinated:
        coordinator = coordinate(cluster, **{**SETTINGS, **overrides})
    return cluster, coordinator


def feasible_entry(job_id, m, profit, d_rem, work=8.0, span=1.0):
    """A victim dict that is delta-good on an ``m``-machine shard."""
    n = CONSTS.allotment(work, span, d_rem, m)
    x = CONSTS.execution_bound(work, span, n)
    assert CONSTS.is_delta_good(d_rem, x)
    return {
        "job_id": job_id,
        "density": CONSTS.density(profit, x, n),
        "allotment": n,
        "x": x,
        "work": work,
        "span": span,
        "deadline": d_rem,  # plan() is called with t=0
        "profit": profit,
    }


def view(m, started=(), parked=(), starved=()):
    return {
        "m": m,
        "now": 0,
        "queue_depth": 0,
        "started": [list(s) for s in started],
        "parked": list(parked),
        "starved": list(starved),
    }


class TestBandLedger:
    def test_admits_against_merged_band_state(self):
        ledger = BandLedger(CONSTS)
        spec = JobSpec(
            99, fig1_jobs(4)[0].structure, arrival=0, deadline=200,
            profit=50.0,
        )
        # shard 0 empty, shard 1's band around the spec's density is full
        state = ledger.shard_state
        ledger.refresh({0: view(8), 1: view(8)})
        n, _x, v, good = ledger.shard_state(spec, 1)
        assert good and v > 0
        full = [[i, v, 2] for i in range(4)]  # 8 allotment >= b*8 = 6.93
        ledger.refresh({0: view(8), 1: view(8, started=full)})
        assert ledger.admits(spec, 0)
        assert not ledger.admits(spec, 1)
        assert ledger.merged_band_load(v) == pytest.approx(8.0)

    def test_place_prefers_processor_room(self):
        ledger = BandLedger(CONSTS)
        spec = JobSpec(
            99, fig1_jobs(4)[0].structure, arrival=0, deadline=200,
            profit=50.0,
        )
        _n, _x, v, _good = (
            ledger.refresh({0: view(8)}) or ledger.shard_state(spec, 0)
        )
        # shard 0 committed (low-density jobs hog processors, band free);
        # shard 1 wide open -> place() picks 1 despite the lower index
        hogs = [[i, v / 1000.0, 3] for i in range(3)]
        ledger.refresh({0: view(8, started=hogs), 1: view(8)})
        stats = [ShardStats(index=0, m=8), ShardStats(index=1, m=8)]
        assert ledger.admits(spec, 0)  # band admits; processors full
        assert ledger.place(spec, stats) == 1

    def test_note_admit_updates_mirror(self):
        ledger = BandLedger(CONSTS)
        ledger.refresh({0: view(4)})
        spec = JobSpec(
            7, fig1_jobs(4)[0].structure, arrival=0, deadline=200,
            profit=50.0,
        )
        before = ledger.shard_state(spec, 0)
        ledger.note_admit(spec, 0)
        v = before[2]
        assert ledger.merged_band_load(v) > 0

    def test_unknown_shard_and_profit_fn_jobs(self):
        ledger = BandLedger(CONSTS)
        spec = JobSpec(
            1, fig1_jobs(4)[0].structure, arrival=0, deadline=100,
        )
        assert ledger.shard_state(spec, 5) is None
        assert not ledger.admits(spec, 5)


class TestStealPlanner:
    def test_plain_steal_into_open_room(self):
        planner = StealPlanner(CONSTS, batch=4)
        victim = feasible_entry(10, 8, profit=80.0, d_rem=13)
        moves = planner.plan(
            {0: view(8, parked=[victim]), 1: view(8)}, t=0
        )
        assert [
            (mv.src, mv.dst, mv.job_id, mv.kind, mv.displaced)
            for mv in moves
        ] == [(0, 1, 10, "parked", ())]

    def test_displacement_evicts_weak_started_jobs(self):
        planner = StealPlanner(CONSTS, margin=1.5, max_displaced=2)
        victim = feasible_entry(10, 8, profit=80.0, d_rem=13)
        weak = [[i, 0.5, 2] for i in range(1, 5)]  # room = 8 - 8 = 0
        moves = planner.plan(
            {0: view(8, parked=[victim]), 1: view(8, started=weak)}, t=0
        )
        assert len(moves) == 1
        # two evictions: the first frees processor room, but the band
        # anchored at the weak jobs' density (which contains the victim)
        # only drops under b*m once a second entry leaves
        assert moves[0].displaced == (1, 2)

    def test_margin_blocks_near_peer_displacement(self):
        planner = StealPlanner(CONSTS, margin=1.5, max_displaced=2)
        victim = feasible_entry(10, 8, profit=80.0, d_rem=13)
        v = victim["density"]
        strong = [[i, v / 1.2, 2] for i in range(1, 5)]  # within margin
        moves = planner.plan(
            {0: view(8, parked=[victim]), 1: view(8, started=strong)}, t=0
        )
        assert moves == []

    def test_move_cap_stops_ping_pong(self):
        planner = StealPlanner(CONSTS, batch=4)
        victim = feasible_entry(10, 8, profit=80.0, d_rem=13)
        views = {0: view(8, parked=[victim]), 1: view(8)}
        assert planner.plan(views, 0, {10: 2}, 2) == []
        assert len(planner.plan(views, 0, {10: 1}, 2)) == 1

    def test_expired_and_batch_limits(self):
        planner = StealPlanner(CONSTS, batch=1)
        a = feasible_entry(10, 8, profit=80.0, d_rem=13)
        b = feasible_entry(11, 8, profit=60.0, d_rem=13)
        dead = dict(feasible_entry(12, 8, profit=99.0, d_rem=13), deadline=0)
        moves = planner.plan(
            {0: view(8, parked=[a, b, dead]), 1: view(8)}, t=0
        )
        assert [mv.job_id for mv in moves] == [10]  # batch=1, densest first

    def test_plan_is_deterministic(self):
        planner = StealPlanner(CONSTS, batch=8, max_displaced=2)
        victims = [
            feasible_entry(10 + i, 8, profit=40.0 + i, d_rem=13)
            for i in range(4)
        ]
        weak = [[100 + i, 0.4, 2] for i in range(4)]
        # starved victims are started jobs, so they appear in the
        # donor's band mirror too (the invariant coordination_view keeps)
        starved_band = [
            [e["job_id"], e["density"], e["allotment"]] for e in victims[2:]
        ]
        views = {
            0: view(8, parked=victims[:2], starved=victims[2:],
                    started=starved_band),
            1: view(8, started=weak),
            2: view(8),
        }
        first = planner.plan(views, t=0)
        assert first and first == planner.plan(views, t=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StealPlanner(CONSTS, batch=0)
        with pytest.raises(ValueError):
            StealPlanner(CONSTS, margin=1.0)
        with pytest.raises(ValueError):
            StealPlanner(CONSTS, max_displaced=-1)


class TestCoordinatedCluster:
    @pytest.mark.parametrize("seed", [3, 23, 41])
    def test_profit_superset_on_adversarial_traces(self, seed):
        """On these fixed traces the coordinated cluster admits (and
        completes) a profit-weighted superset of the uncoordinated
        partition's jobs.  This is a regression pin on seeded traces,
        not a dominance theorem: coordination is an online heuristic
        and *can* lose on an adversarial stream (diverting a job its
        anchor would park consumes band room a future local arrival
        wanted -- the aggregate test below includes such seeds)."""
        specs = adversarial_trace(16, seed)
        plain, _ = build_cluster(16, 4, coordinated=False)
        coord, _ = build_cluster(16, 4, coordinated=True)
        assert (
            coord.run_stream(specs).total_profit
            >= plain.run_stream(specs).total_profit
        )

    def test_coordination_strictly_improves_in_aggregate(self):
        """Across a seed family that includes per-trace losses (11 and
        57 lose as of this pin), coordination still comes out ahead."""
        gain = 0.0
        for seed in (3, 11, 23, 41, 57):
            specs = adversarial_trace(16, seed)
            plain, _ = build_cluster(16, 4, coordinated=False)
            coord, _ = build_cluster(16, 4, coordinated=True)
            gain += (
                coord.run_stream(specs).total_profit
                - plain.run_stream(specs).total_profit
            )
        assert gain > 0

    def test_bit_identical_repeats_with_running_job_steal(self):
        specs = mixed_workload()

        def run():
            cluster, coordinator = build_cluster(16, 4, coordinated=True)
            return cluster.run_stream(specs), coordinator, cluster

        first, c1, cl1 = run()
        second, c2, _ = run()
        assert first.records == second.records
        assert first.total_profit == second.total_profit
        assert c1.steals == c2.steals
        # at least one steal displaced receiver jobs: those jobs were
        # *running* (started, executing work) when they were extracted
        assert any(mv.displaced for mv in c1.steals)
        counters = cl1.cluster_metrics.values()
        assert counters["steals_total"] == len(c1.steals)
        assert counters["steals_displaced_total"] >= 1

    def test_process_mode_matches_inprocess(self):
        specs = mixed_workload(n_jobs=200)
        inproc, ci = build_cluster(16, 4, coordinated=True)
        proc, cp = build_cluster(16, 4, coordinated=True, mode="process")
        a = inproc.run_stream(specs)
        b = proc.run_stream(specs)
        assert a.records == b.records
        assert a.total_profit == b.total_profit
        assert ci.steals == cp.steals

    def test_coordinator_validation(self):
        cluster, _ = build_cluster(16, 4, coordinated=False)
        with pytest.raises(ClusterError):
            Coordinator(cluster, refresh_every=0)
        with pytest.raises(ClusterError):
            Coordinator(cluster, steal_every=0)
        with pytest.raises(ClusterError):
            Coordinator(cluster, max_moves_per_job=0)

    def test_coordinate_binds_band_aware_router(self):
        cluster, coordinator = build_cluster(16, 4, coordinated=True)
        assert cluster.coordinator is coordinator
        assert cluster.router._ledger is coordinator.ledger


class TestCoordinationView:
    def test_limit_keeps_top_density_victims(self):
        service = SchedulingService(4, SNSScheduler(epsilon=1.0))
        rng = np.random.default_rng(5)
        for spec in overload_stream(4, 1.0, 60, 4.0, rng):
            service.submit(spec, t=spec.arrival)
        full = service.coordination_view()
        capped = service.coordination_view(limit=3)
        assert len(capped["parked"]) <= 3
        assert len(capped["starved"]) <= 3
        for kind in ("parked", "starved"):
            want = sorted(
                full[kind], key=lambda e: (-e["density"], e["job_id"])
            )[: len(capped[kind])]
            assert capped[kind] == want
        assert capped["started"] == full["started"]


class TestCandidateTrial:
    def make_candidates(self):
        return [
            ("k1", lambda: ClusterService(
                16, 1, config=SNS_CFG, router="consistent-hash"
            )),
            ("k4", lambda: ClusterService(
                16, 4, config=SNS_CFG, router="consistent-hash"
            )),
        ]

    def test_commit_matches_standalone_winner(self):
        specs = mixed_workload(n_jobs=200)
        trial = CandidateTrial(self.make_candidates(), trial_jobs=64)
        result = trial.run_stream(specs)
        assert trial.committed
        assert sum(r.committed for r in trial.reports) == 1
        rebuilt = dict(self.make_candidates())[trial.winner_name]()
        alone = rebuilt.run_stream(specs)
        assert result.records == alone.records
        assert result.total_profit == alone.total_profit
        names = [r["name"] for r in result.extra["candidate_trial"]]
        assert names == ["k1", "k4"]

    def test_commit_is_deterministic(self):
        specs = mixed_workload(n_jobs=200)
        winners = set()
        for _ in range(2):
            trial = CandidateTrial(self.make_candidates(), trial_jobs=64)
            trial.run_stream(specs)
            winners.add(trial.winner_name)
        assert len(winners) == 1

    def test_short_stream_commits_at_finish(self):
        specs = mixed_workload(n_jobs=20)
        trial = CandidateTrial(self.make_candidates(), trial_jobs=500)
        trial.run_stream(specs)
        assert trial.committed

    def test_validation(self):
        candidates = self.make_candidates()
        with pytest.raises(ClusterError):
            CandidateTrial(candidates[:1])
        with pytest.raises(ClusterError):
            CandidateTrial(candidates, trial_jobs=0)
        bad = [
            ("p", lambda: ClusterService(
                16, 2, config=SNS_CFG, mode="process"
            )),
            ("q", lambda: ClusterService(16, 2, config=SNS_CFG)),
        ]
        with pytest.raises(ClusterError):
            CandidateTrial(bad)


def test_module_docstring_promises_hold():
    """The math the module docstring quotes: fig1/fig2 jobs exist and
    the epsilon=1 constants match the documented band capacity."""
    assert CONSTS.band_capacity(16) == pytest.approx(16 * CONSTS.b)
    assert math.isclose(CONSTS.delta, 0.25)
    assert fig1_jobs(4)[0].deadline >= 1
    assert fig2_jobs(4, 96.0, 12.0)[0].deadline >= 1
