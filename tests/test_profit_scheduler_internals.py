"""White-box tests of the general-profit scheduler's deadline search."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeneralProfitScheduler
from repro.dag import chain, fork_join
from repro.profit import FlatThenExponential, Staircase, StepProfit
from repro.sim import JobSpec
from repro.sim.jobs import ActiveJob


def fresh(m=8, epsilon=1.0):
    sched = GeneralProfitScheduler(epsilon=epsilon)
    sched.on_start(m=m, speed=1.0)
    return sched


class TestCandidatePieces:
    def test_step_profit_pieces(self):
        sched = fresh()
        fn = StepProfit(1.0, 30.0)
        pieces = list(sched._candidate_pieces(fn, d_floor=10, d_cap=50))
        # ascending, contiguous-ish, covering [10, 50]
        assert pieces[0][0] == 10
        assert pieces[-1][1] == 50
        for (a1, b1), (a2, b2) in zip(pieces, pieces[1:]):
            assert b1 < a2 or b1 + 1 == a2
        # the knee boundary (31 = floor(30)+1) is a piece start
        assert any(a == 31 for a, _ in pieces)

    def test_staircase_breakpoints_are_piece_starts(self):
        sched = fresh()
        fn = Staircase(4.0, [(20.0, 2.0), (40.0, 0.0)])
        pieces = list(sched._candidate_pieces(fn, d_floor=5, d_cap=60))
        starts = {a for a, _ in pieces}
        assert 21 in starts
        assert 41 in starts

    def test_continuous_grid_is_geometric(self):
        sched = fresh()
        fn = FlatThenExponential(1.0, 20.0, tau=10.0)
        pieces = list(sched._candidate_pieces(fn, d_floor=5, d_cap=200))
        starts = [a for a, _ in pieces if a > 21]
        # geometric spacing: far sparser than unit steps, gaps widen
        # overall (integer rounding may locally jitter)
        assert len(starts) < (200 - 21) // 2
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert gaps[-1] >= gaps[0]
        assert max(gaps) > 1

    def test_pieces_stay_in_range(self):
        sched = fresh()
        fn = StepProfit(1.0, 1000.0)
        for a, b in sched._candidate_pieces(fn, d_floor=7, d_cap=40):
            assert 7 <= a <= b <= 40


class TestMinimalDeadlineOnEmptyMachine:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_single_job_gets_exact_minimum(self, length, node_work, peak):
        """On an empty machine a chain job's assigned deadline is exactly
        max(floor((1+eps)L) + 1, required_slots)."""
        sched = fresh(m=4, epsilon=1.0)
        work = float(length * node_work)
        fn = StepProfit(peak, x_star=100.0 * work)  # knee far away
        view = ActiveJob(
            JobSpec(0, chain(length, node_work=float(node_work)),
                    arrival=0, profit_fn=fn)
        ).view
        sched.on_arrival(view, 0)
        state = sched.states[0]
        assert not state.rejected
        expected = max(
            math.floor(2.0 * work) + 1,  # (1+eps) * L with eps=1, L=W
            state.required_slots,
        )
        assert state.assigned_relative_deadline == expected

    def test_second_identical_job_not_earlier(self):
        sched = fresh(m=4, epsilon=1.0)
        fn = StepProfit(1.0, 500.0)
        d = []
        for jid in range(2):
            view = ActiveJob(
                JobSpec(jid, fork_join(8, node_work=2.0), arrival=0,
                        profit_fn=fn)
            ).view
            sched.on_arrival(view, 0)
            state = sched.states[jid]
            if not state.rejected:
                d.append(state.assigned_relative_deadline)
        assert d == sorted(d)


class TestSlotAccounting:
    def test_slots_within_window(self):
        sched = fresh()
        view = ActiveJob(
            JobSpec(0, chain(8), arrival=5, profit_fn=StepProfit(1.0, 60.0))
        ).view
        sched.on_arrival(view, 5)
        state = sched.states[0]
        assert all(
            5 <= t < 5 + state.assigned_relative_deadline
            for t in state.slots
        )
        assert len(state.slots) == state.required_slots

    def test_slot_count_matches_paper_formula(self):
        """|I_i| = ceil((1+delta) x_i) with delta = eps/4."""
        sched = fresh(epsilon=1.0)  # delta 0.25
        view = ActiveJob(
            JobSpec(0, fork_join(16, node_work=2.0), arrival=0,
                    profit_fn=StepProfit(1.0, 200.0))
        ).view
        sched.on_arrival(view, 0)
        state = sched.states[0]
        assert state.required_slots == math.ceil(1.25 * state.x - 1e-9)
