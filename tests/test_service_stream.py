"""Stream/batch equivalence: driving the engine incrementally (directly
or through the service in pass-through configuration) must be
bit-identical to ``Simulator.run`` on the same workload -- records,
counters, end time and profit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
from repro.core import SNSScheduler
from repro.errors import SimulationError
from repro.service import Admission, SchedulingService
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload

FACTORIES = {
    "edf": GlobalEDF,
    "fifo": FIFOScheduler,
    "greedy": GreedyDensity,
    "sns": lambda: SNSScheduler(epsilon=1.0),
}


def batch_result(name, specs, m=8):
    return Simulator(m=m, scheduler=FACTORIES[name]()).run(specs)


class TestEngineStreaming:
    def test_stream_equals_batch(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=40, m=8, load=2.0, seed=3)
        )
        batch = batch_result("sns", specs)
        sim = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0))
        sim.start()
        for spec in sorted(specs, key=lambda s: (s.arrival, s.job_id)):
            sim.advance_to(spec.arrival)
            sim.submit(spec)
        stream = sim.finish()
        assert stream.records == batch.records
        assert stream.counters == batch.counters
        assert stream.end_time == batch.end_time

    def test_submit_with_time_implies_advance(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=4, load=1.5, seed=4)
        )
        batch = batch_result("edf", specs, m=4)
        sim = Simulator(m=4, scheduler=GlobalEDF())
        sim.start()
        for spec in sorted(specs, key=lambda s: (s.arrival, s.job_id)):
            sim.submit(spec, t=spec.arrival)
        assert sim.finish().records == batch.records

    def test_late_submission_rejected(self):
        sim = Simulator(m=2, scheduler=FIFOScheduler())
        specs = generate_workload(WorkloadConfig(n_jobs=5, m=2, seed=0))
        late = min(specs, key=lambda s: (s.arrival, s.job_id))
        sim.start()
        sim.advance_to(late.arrival + 1)
        with pytest.raises(SimulationError):
            sim.submit(late)
        sim.finish()

    def test_session_protocol_errors(self):
        sim = Simulator(m=2, scheduler=FIFOScheduler())
        with pytest.raises(SimulationError):
            sim.advance_to(5)
        sim.start()
        with pytest.raises(SimulationError):
            sim.start()
        sim.finish()
        with pytest.raises(SimulationError):
            sim.advance_to(5)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.sampled_from(sorted(FACTORIES)),
        st.sampled_from([0.5, 2.0, 5.0]),
        st.sampled_from([1.0, 1.5]),
    )
    def test_stream_equals_batch_property(self, seed, name, load, speed):
        specs = generate_workload(
            WorkloadConfig(n_jobs=18, m=4, load=load, seed=seed)
        )
        batch = Simulator(
            m=4, scheduler=FACTORIES[name](), speed=speed
        ).run(specs)
        sim = Simulator(m=4, scheduler=FACTORIES[name](), speed=speed)
        sim.start()
        for spec in sorted(specs, key=lambda s: (s.arrival, s.job_id)):
            sim.advance_to(spec.arrival)
            sim.submit(spec)
        stream = sim.finish()
        assert stream.records == batch.records
        assert stream.counters == batch.counters

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.lists(
            st.integers(min_value=1, max_value=400), min_size=1, max_size=6
        ),
    )
    def test_intermediate_advances_preserve_outcomes(self, seed, stops):
        """Extra advance_to calls at arbitrary times must not change any
        completion record or the final profit."""
        specs = generate_workload(
            WorkloadConfig(n_jobs=15, m=4, load=2.0, seed=seed)
        )
        batch = batch_result("sns", specs, m=4)
        sim = Simulator(m=4, scheduler=SNSScheduler(epsilon=1.0))
        sim.start()
        events = sorted(
            [(s.arrival, "submit", s) for s in specs]
            + [(t, "advance", None) for t in sorted(stops)]
        , key=lambda e: (e[0], e[1] == "submit", getattr(e[2], "job_id", -1)))
        for t, kind, spec in events:
            if t >= sim.now:
                sim.advance_to(t)
            if kind == "submit":
                sim.submit(spec)
        stream = sim.finish()
        assert stream.records == batch.records
        assert stream.total_profit == batch.total_profit


class TestServicePassThrough:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_run_stream_equals_batch(self, name):
        specs = generate_workload(
            WorkloadConfig(n_jobs=35, m=8, load=2.5, seed=11)
        )
        batch = batch_result(name, specs)
        service = SchedulingService(8, FACTORIES[name]())
        result = service.run_stream(specs)
        assert result.result.records == batch.records
        assert result.result.counters == batch.counters
        assert result.total_profit == batch.total_profit
        assert result.num_shed == 0

    def test_admission_outcomes(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=30, m=2, load=6.0, seed=5)
        )
        service = SchedulingService(
            2, SNSScheduler(epsilon=1.0), capacity=2, max_in_flight=2
        )
        service.start()
        outcomes = set()
        for spec in sorted(specs, key=lambda s: (s.arrival, s.job_id)):
            outcomes.add(service.submit(spec, t=spec.arrival))
        service.finish()
        assert Admission.ADMITTED in outcomes
        assert Admission.QUEUED in outcomes or Admission.SHED in outcomes

    def test_backpressure_sheds_and_drains(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=120, m=4, load=5.0, seed=6)
        )
        service = SchedulingService(
            4, SNSScheduler(epsilon=1.0), capacity=5, max_in_flight=4
        )
        result = service.run_stream(specs)
        assert result.num_shed > 0
        released = len(result.result.records)
        assert released + result.num_shed == len(specs)
        # every shed record names a job that never produced a completion
        for rec in result.shed:
            assert rec.job_id not in result.result.records
