"""Fault injection and recovery tests for repro.cluster.

The load-bearing pin (ISSUE acceptance criterion): a fault-injected run
-- one shard killed mid-stream and restored from its latest JSON
checkpoint plus submission-log replay -- loses zero admitted jobs and
finishes with profit equal to the fault-free run on the same trace.
"""

import pytest

from repro.cluster import (
    ClusterService,
    FaultInjector,
    FaultPlan,
    QueueBalancer,
    Router,
    ShardConfig,
)
from repro.errors import ClusterError
from repro.workloads import WorkloadConfig, generate_workload

CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})


def workload(n_jobs=120, m=16, load=2.5, seed=3):
    return generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=load, epsilon=1.0, seed=seed)
    )


def run(specs, *, mode, injector=None, migration=None, migrate_every=0):
    cluster = ClusterService(
        16,
        4,
        config=CFG,
        router="consistent-hash",
        mode=mode,
        migration=migration,
        migrate_every=migrate_every,
        fault_injector=injector,
        checkpoint_every=64 if injector else None,
    )
    return cluster.run_stream(specs)


def mid_stream_time(specs):
    arrivals = sorted(sp.arrival for sp in specs)
    return arrivals[len(arrivals) // 2]


class TestFaultInjector:
    def test_add_chains(self):
        injector = FaultInjector().add(shard=1, at=50).add(shard=0, at=10)
        assert injector.plans == [
            FaultPlan(shard=1, at=50),
            FaultPlan(shard=0, at=10),
        ]
        assert injector.pending == 2

    def test_rejects_negative_time(self):
        with pytest.raises(ClusterError):
            FaultInjector().add(shard=0, at=-1)

    def test_fires_once(self):
        specs = workload(n_jobs=40)
        injector = FaultInjector().add(shard=0, at=mid_stream_time(specs))
        run(specs, mode="inprocess", injector=injector)
        assert len(injector.events) == 1
        assert injector.pending == 0


class TestRecoveryPin:
    @pytest.mark.parametrize("mode", ["inprocess", "process"])
    def test_fault_free_equality(self, mode):
        """THE pin: kill + checkpoint/replay recovery loses nothing."""
        specs = workload()
        at = mid_stream_time(specs)
        clean = run(specs, mode=mode)
        injector = FaultInjector().add(shard=1, at=at)
        faulted = run(specs, mode=mode, injector=injector)

        assert len(injector.events) == 1
        event = injector.events[0]
        assert event.shard == 1
        assert event.time >= at
        assert faulted.records == clean.records  # zero admitted jobs lost
        assert faulted.total_profit == clean.total_profit
        assert faulted.recoveries == injector.events
        assert event.wall_seconds >= 0.0

    def test_recovery_replays_log_tail(self):
        specs = workload()
        injector = FaultInjector().add(shard=1, at=mid_stream_time(specs))
        run(specs, mode="inprocess", injector=injector)
        event = injector.events[0]
        # checkpoint predates the fault; replay covers the gap
        assert event.checkpoint_time <= event.time
        assert event.replayed >= 0

    def test_multiple_faults_different_shards(self):
        specs = workload()
        at = mid_stream_time(specs)
        clean = run(specs, mode="inprocess")
        injector = FaultInjector().add(shard=0, at=at).add(shard=2, at=at + 20)
        faulted = run(specs, mode="inprocess", injector=injector)
        assert len(injector.events) == 2
        assert faulted.records == clean.records
        assert faulted.total_profit == clean.total_profit

    def test_fault_with_migration(self):
        """Checkpoints are refreshed after migration ticks, so replay
        never resurrects a job that was migrated away."""

        class HotSpot(Router):
            name = "hotspot"
            needs_stats = False

            def route(self, spec, stats):
                return 0

        specs = workload()
        at = mid_stream_time(specs)
        cfg = ShardConfig(
            m=1,
            scheduler="sns",
            scheduler_kwargs={"epsilon": 1.0},
            capacity=8,
            max_in_flight=8,
        )

        def migrated_run(injector):
            cluster = ClusterService(
                16,
                4,
                config=cfg,
                router=HotSpot(),
                mode="inprocess",
                migration=QueueBalancer(),
                migrate_every=2,
                fault_injector=injector,
                checkpoint_every=64 if injector else None,
            )
            return cluster.run_stream(specs)

        clean = migrated_run(None)
        injector = FaultInjector().add(shard=0, at=at)
        faulted = migrated_run(injector)
        assert len(injector.events) == 1
        assert faulted.records == clean.records
        assert faulted.total_profit == clean.total_profit

    def test_dead_shard_rejects_submissions(self):
        cluster = ClusterService(8, 2, config=CFG, mode="inprocess")
        cluster.start()
        cluster.kill_shard(0)
        assert not cluster.shards[0].alive
        with pytest.raises(ClusterError):
            cluster.shards[0].submit(workload(n_jobs=1)[0], t=0)
        cluster.recover_shard(0, t=0)
        assert cluster.shards[0].alive
        cluster.finish()

    def test_process_mode_kill_terminates_worker(self):
        cluster = ClusterService(8, 2, config=CFG, mode="process")
        cluster.start()
        proc = cluster.shards[0]._process
        assert proc.is_alive()
        cluster.kill_shard(0)
        assert not proc.is_alive()
        cluster.recover_shard(0, t=0)
        assert cluster.shards[0].alive
        cluster.finish()
