"""Unit tests for repro.dag.graph.DAGStructure."""

import numpy as np
import pytest

from repro.dag import DAGStructure, chain, validate_structure


class TestConstruction:
    def test_single_node(self):
        dag = DAGStructure([3.0])
        assert dag.num_nodes == 1
        assert dag.num_edges == 0
        assert dag.total_work == 3.0
        assert dag.span == 3.0

    def test_empty_work_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([])

    def test_non_positive_work_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([1.0, 0.0])
        with pytest.raises(ValueError):
            DAGStructure([1.0, -2.0])

    def test_nan_work_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([1.0, float("nan")])
        with pytest.raises(ValueError):
            DAGStructure([float("inf")])

    def test_unknown_node_edge_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([1.0, 1.0], [(0, 2)])
        with pytest.raises(ValueError):
            DAGStructure([1.0, 1.0], [(-1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([1.0], [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            DAGStructure([1.0, 1.0], [(0, 1), (0, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            DAGStructure([1.0, 1.0, 1.0], [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            DAGStructure([1.0, 1.0], [(0, 1), (1, 0)])

    def test_work_array_readonly(self):
        dag = DAGStructure([1.0, 2.0])
        with pytest.raises(ValueError):
            dag.work[0] = 5.0


class TestDerived:
    def test_diamond_span(self, diamond):
        assert diamond.total_work == 7.0
        assert diamond.span == 5.0  # 0 -> 2 -> 3

    def test_chain_span_equals_work(self):
        dag = chain(5, node_work=2.0)
        assert dag.total_work == 10.0
        assert dag.span == 10.0

    def test_parallel_block_span(self):
        dag = DAGStructure([4.0, 2.0, 1.0])
        assert dag.span == 4.0
        assert dag.total_work == 7.0

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == (0,)
        assert diamond.sinks() == (3,)

    def test_adjacency(self, diamond):
        assert set(diamond.successors(0)) == {1, 2}
        assert set(diamond.predecessors(3)) == {1, 2}
        assert diamond.indegree(0) == 0
        assert diamond.indegree(3) == 2

    def test_edges_iteration(self, diamond):
        assert set(diamond.edges()) == {(0, 1), (0, 2), (1, 3), (2, 3)}
        assert diamond.num_edges == 4

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {node: i for i, node in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_tail_lengths(self, diamond):
        tails = diamond.tail_lengths()
        assert tails[3] == 1.0
        assert tails[1] == 3.0  # 1 -> 3
        assert tails[2] == 4.0  # 2 -> 3
        assert tails[0] == 5.0  # full critical path

    def test_tail_lengths_cached_and_readonly(self, diamond):
        t1 = diamond.tail_lengths()
        t2 = diamond.tail_lengths()
        assert t1 is t2
        with pytest.raises(ValueError):
            t1[0] = 99.0

    def test_average_parallelism(self, diamond):
        assert diamond.average_parallelism() == pytest.approx(7.0 / 5.0)


class TestInterop:
    def test_networkx_round_trip(self, diamond):
        import networkx as nx
        from repro.dag import from_networkx

        g = diamond.to_networkx()
        assert isinstance(g, nx.DiGraph)
        back = from_networkx(g)
        assert back == diamond
        validate_structure(back)

    def test_networkx_work_attr(self, diamond):
        g = diamond.to_networkx()
        assert g.nodes[2]["work"] == 3.0


class TestEquality:
    def test_equal_structures(self):
        a = DAGStructure([1.0, 2.0], [(0, 1)])
        b = DAGStructure([1.0, 2.0], [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_edges(self):
        a = DAGStructure([1.0, 2.0], [(0, 1)])
        b = DAGStructure([1.0, 2.0], [])
        assert a != b

    def test_different_works(self):
        a = DAGStructure([1.0, 2.0])
        b = DAGStructure([1.0, 3.0])
        assert a != b

    def test_not_equal_other_type(self):
        assert DAGStructure([1.0]) != "dag"

    def test_repr_mentions_counts(self, diamond):
        text = repr(diamond)
        assert "nodes=4" in text
        assert "W=7" in text
