"""Unit tests for the invariant monitor."""

import pytest

from repro.core import InvariantMonitor, InvariantReport, SNSScheduler
from repro.core.sns import SNSJobState
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


class TestReport:
    def test_clean_report_ok(self):
        report = InvariantReport()
        assert report.ok
        report.record("boom")
        assert not report.ok
        assert report.violations == ["boom"]


class TestMonitorOnCompliantWorkloads:
    def test_zero_violations(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=40, m=8, load=2.0, epsilon=1.0, seed=3,
                deadline_policy="slack",
            )
        )
        monitor = InvariantMonitor(SNSScheduler(epsilon=1.0))
        Simulator(m=8, scheduler=monitor).run(specs)
        assert monitor.report.ok, monitor.report.violations
        assert monitor.report.checks > 0
        assert monitor.assumption_violations == 0

    def test_assumption_violations_counted_not_flagged(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=20, m=8, load=2.0, epsilon=1.0, seed=3,
                deadline_policy="tight", tight_factor=1.0,
            )
        )
        monitor = InvariantMonitor(SNSScheduler(epsilon=1.0))
        Simulator(m=8, scheduler=monitor).run(specs)
        # tight deadlines violate the assumption; that is counted, and
        # the lemmas are not asserted for those jobs
        assert monitor.assumption_violations > 0
        assert monitor.report.ok, monitor.report.violations


class TestMonitorCatchesViolations:
    def test_broken_scheduler_detected(self):
        class BrokenS(SNSScheduler):
            """Admits everything and doubles allotments: breaks bands."""

            def compute_state(self, job):
                state = super().compute_state(job)
                return SNSJobState(
                    view=state.view,
                    allotment=min(self.m, state.allotment * 4),
                    x=state.x,
                    density=state.density,
                    delta_good=state.delta_good,
                )

            def on_arrival(self, job, t):
                state = self.compute_state(job)
                self.all_states[job.job_id] = state
                self._start(state)

        specs = generate_workload(
            WorkloadConfig(
                n_jobs=30, m=8, load=4.0, epsilon=1.0, seed=0,
                deadline_policy="slack",
            )
        )
        monitor = InvariantMonitor(BrokenS(epsilon=1.0))
        Simulator(m=8, scheduler=monitor).run(specs)
        assert not monitor.report.ok
