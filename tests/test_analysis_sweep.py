"""Unit tests for the parameter-sweep driver."""

import pytest

from repro.analysis.sweep import (
    SweepCell,
    adaptive_workers,
    grid_points,
    resolve_workers,
    run_sweep,
    sweep_table,
)
from repro.errors import SweepError


def _point_fn(point: dict, seed: int) -> float:
    """Module-level so the multiprocessing path can pickle it."""
    return point["a"] * 10 + point.get("b", 0) + seed * 0.1


def _failing_fn(point: dict, seed: int) -> float:
    """Fails on exactly one (point, seed) cell."""
    if point["a"] == 2 and seed == 1:
        raise ValueError("boom")
    return float(point["a"])


class TestResolveWorkers:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        assert resolve_workers() == 1

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        assert resolve_workers() == 3

    def test_cluster_shard_forces_serial(self, monkeypatch):
        """Inside a cluster shard worker, 'auto' must NOT fan out: every
        shard spawning a CPU-wide pool would oversubscribe the host."""
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        monkeypatch.setenv("REPRO_CLUSTER_SHARD", "1")
        assert resolve_workers() == 1

    def test_explicit_workers_beat_shard_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SHARD", "1")
        assert resolve_workers(4) == 4

    def test_auto_outside_shard(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_invalid_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "lots")
        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        with pytest.raises(SweepError):
            resolve_workers()


class TestAdaptiveWorkers:
    """Fan-out must never be *claimed* on hardware that cannot deliver
    it: 1-CPU hosts and cluster shard workers always resolve to 1."""

    def test_single_cpu_pins_to_one(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 1)
        assert adaptive_workers() == 1
        # even with an explicit cap and an optimistic probe
        assert adaptive_workers(probe=lambda w: 0.0, max_workers=8) == 1

    def test_resolve_adaptive_keyword_single_cpu(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 1)
        assert resolve_workers("adaptive") == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "adaptive")
        assert resolve_workers() == 1

    def test_cluster_shard_pins_to_one(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.setenv("REPRO_CLUSTER_SHARD", "1")
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 8)
        assert adaptive_workers() == 1

    def test_multi_cpu_respects_cap(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 8)
        assert adaptive_workers() == 8
        assert adaptive_workers(max_workers=2) == 2
        assert adaptive_workers(max_workers=100) == 8

    def test_probe_gain_decides(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.delenv("REPRO_CLUSTER_SHARD", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 4)
        # measured 2-worker round slower than serial: stay serial
        assert adaptive_workers(probe=lambda w: float(w)) == 1
        # measured gain: keep the fan-out
        assert adaptive_workers(probe=lambda w: 1.0 / w) == 4


class TestBenchSweepGateHonesty:
    """The BENCH_engine sweep section must never pass its gate while
    reporting a parallel speedup below 1.0 -- and a serial-only section
    (1-CPU host) must pass without claiming any speedup at all."""

    @pytest.fixture(scope="class")
    def run_bench(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "run_bench.py"
        )
        spec = importlib.util.spec_from_file_location("run_bench", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_serial_only_passes_on_equality_alone(self, run_bench):
        section = {
            "identical": True,
            "workers": 1,
            "parallel_speedup": None,
        }
        assert run_bench.sweep_gate_ok(section, quick=False)

    def test_claimed_slowdown_never_gates_pass(self, run_bench):
        section = {
            "identical": True,
            "workers": 2,
            "parallel_speedup": 0.7,
        }
        assert not run_bench.sweep_gate_ok(section, quick=False)

    def test_real_speedup_passes(self, run_bench):
        section = {
            "identical": True,
            "workers": 2,
            "parallel_speedup": 1.4,
        }
        assert run_bench.sweep_gate_ok(section, quick=False)

    def test_inequality_always_fails(self, run_bench):
        section = {
            "identical": False,
            "workers": 1,
            "parallel_speedup": None,
        }
        assert not run_bench.sweep_gate_ok(section, quick=True)


class TestGrid:
    def test_cross_product_order(self):
        points = grid_points({"a": [1, 2], "b": ["x", "y"]})
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_grid(self):
        assert grid_points({}) == [{}]


class TestRunSweep:
    def test_serial(self):
        cells = run_sweep(_point_fn, {"a": [1, 2]}, seeds=[0, 1])
        assert len(cells) == 2
        assert cells[0].aggregate.mean == pytest.approx(10.05)
        assert cells[1].aggregate.mean == pytest.approx(20.05)
        assert cells[0].aggregate.n == 2

    def test_parallel_matches_serial(self):
        grid = {"a": [1, 2, 3], "b": [0, 5]}
        serial = run_sweep(_point_fn, grid, seeds=[0, 1, 2], workers=1)
        parallel = run_sweep(_point_fn, grid, seeds=[0, 1, 2], workers=2)
        assert [c.point for c in serial] == [c.point for c in parallel]
        for a, b in zip(serial, parallel):
            assert a.aggregate.mean == pytest.approx(b.aggregate.mean)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_failure_names_cell(self, workers):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(_failing_fn, {"a": [1, 2, 3]}, seeds=[0, 1], workers=workers)
        err = excinfo.value
        assert err.point == {"a": 2}
        assert err.seed == 1
        assert "boom" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_simulation_point_function(self):
        cells = run_sweep(
            _sim_point, {"load": [0.5, 2.0]}, seeds=[0], workers=1
        )
        # more load, (weakly) less on-time fraction
        assert cells[0].aggregate.mean >= cells[1].aggregate.mean


def _sim_point(point: dict, seed: int) -> float:
    from repro.core import SNSScheduler
    from repro.sim import Simulator
    from repro.workloads import WorkloadConfig, generate_workload

    specs = generate_workload(
        WorkloadConfig(n_jobs=15, m=4, load=point["load"], seed=seed)
    )
    result = Simulator(m=4, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
    return result.completed_on_time / result.num_jobs


class TestTable:
    def test_sweep_table(self):
        cells = run_sweep(_point_fn, {"a": [1]}, seeds=[0])
        headers, rows = sweep_table(cells)
        assert headers == ["a", "mean", "std", "n"]
        assert rows[0][0] == 1

    def test_empty(self):
        assert sweep_table([]) == ([], [])
