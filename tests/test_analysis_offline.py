"""Unit tests for the randomized offline (hindsight) schedule search."""

import pytest

from repro.analysis import (
    best_effort_lower_bound,
    interval_lp_upper_bound,
    randomized_offline_search,
)
from repro.dag import block, chain
from repro.profit import StepProfit
from repro.sim import JobSpec
from repro.workloads import WorkloadConfig, generate_workload


class TestOfflineSearch:
    def test_single_job(self):
        specs = [JobSpec(0, chain(4), arrival=0, deadline=10, profit=3.0)]
        result = randomized_offline_search(specs, 2, restarts=2, rng=0)
        assert result.profit == 3.0
        assert result.kept == (0,)

    def test_empty(self):
        result = randomized_offline_search([], 2, restarts=1, rng=0)
        assert result.profit == 0.0

    def test_hindsight_pruning_beats_plain_greedy(self):
        # a dense-but-infeasible job poisons the greedy order; pruning
        # recovers the payload
        specs = [
            JobSpec(0, block(32, node_work=1.0), arrival=0, deadline=7,
                    profit=100.0),  # needs 8 steps on m=4: infeasible
            JobSpec(1, block(28, node_work=1.0), arrival=0, deadline=14,
                    profit=1.0),
        ]
        result = randomized_offline_search(specs, 4, restarts=1, rng=0)
        assert result.profit == 1.0
        assert result.kept == (1,)

    def test_kept_jobs_all_on_time(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=4, load=3.0, seed=6)
        )
        result = randomized_offline_search(specs, 4, restarts=8, rng=1)
        kept_profit = sum(
            sp.profit for sp in specs if sp.job_id in result.kept
        )
        assert kept_profit == pytest.approx(result.profit)

    def test_below_lp_bound(self):
        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=4, load=3.0, seed=7)
        )
        result = randomized_offline_search(specs, 4, restarts=8, rng=2)
        assert result.profit <= interval_lp_upper_bound(specs, 4) + 1e-6

    def test_at_least_portfolio_bound_often(self):
        """The randomized search with pruning should usually match or
        beat the simple portfolio lower bound."""
        wins = 0
        for seed in range(4):
            specs = generate_workload(
                WorkloadConfig(n_jobs=25, m=4, load=3.0, seed=seed)
            )
            search = randomized_offline_search(specs, 4, restarts=12, rng=seed)
            portfolio = best_effort_lower_bound(specs, 4)
            if search.profit >= portfolio - 1e-9:
                wins += 1
        assert wins >= 3

    def test_deterministic_per_seed(self):
        specs = generate_workload(WorkloadConfig(n_jobs=15, m=4, load=3.0, seed=8))
        a = randomized_offline_search(specs, 4, restarts=6, rng=9)
        b = randomized_offline_search(specs, 4, restarts=6, rng=9)
        assert a.profit == b.profit
        assert a.kept == b.kept

    def test_rejects_profit_fn_jobs(self):
        specs = [JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(1, 9))]
        with pytest.raises(ValueError, match="deadline"):
            randomized_offline_search(specs, 2)

    def test_rejects_bad_restarts(self):
        with pytest.raises(ValueError):
            randomized_offline_search([], 2, restarts=0)
