"""The engine-backend selection surface, end to end.

One backend name must mean the same engine everywhere it can be
spelled: the ``engine=`` kwarg on :class:`SchedulingService`, the
``engine`` field of a cluster :class:`ShardConfig`, the scenario spec's
``engine.backend``, and the ``--engine`` flags of ``repro-serve`` and
``repro-gateway``.  These tests pin that plumbing -- selection reaches
the right class, results stay bit-identical to the event reference, the
legacy oracle (no snapshot/migration surface) is rejected with a clear
error at every service-grade entry point, and service snapshots carry
the backend across a restore.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterService, ShardConfig
from repro.core import SNSScheduler
from repro.errors import ClusterError, ScenarioError
from repro.service.service import SchedulingService
from repro.service.snapshot import service_from_dict, service_to_dict
from repro.sim import SERVICE_BACKENDS
from repro.sim.array_engine import ArraySimulator
from repro.sim.engine import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def _workload(seed=4, n_jobs=50, m=8):
    return generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=2.5, epsilon=1.0, seed=seed)
    )


def _service_fingerprint(result):
    return (
        sorted(
            (jid, rec.completion_time, rec.profit)
            for jid, rec in result.result.records.items()
        ),
        result.total_profit,
        result.num_shed,
    )


class TestServiceKwarg:
    def test_backend_reaches_the_engine_class(self):
        expected = {"event": Simulator, "array": ArraySimulator}
        for backend in SERVICE_BACKENDS:
            svc = SchedulingService(
                4, SNSScheduler(epsilon=1.0), engine=backend
            )
            assert svc.engine == backend
            assert type(svc.sim) is expected[backend]

    def test_backends_bit_identical_through_the_service(self):
        specs = _workload()

        def run(backend):
            return SchedulingService(
                8, SNSScheduler(epsilon=1.0), engine=backend
            ).run_stream(specs)

        fingerprints = {
            b: _service_fingerprint(run(b)) for b in SERVICE_BACKENDS
        }
        assert fingerprints["array"] == fingerprints["event"]

    def test_legacy_rejected(self):
        with pytest.raises(ValueError, match="legacy"):
            SchedulingService(4, SNSScheduler(epsilon=1.0), engine="legacy")


class TestShardConfigField:
    def test_engine_threads_into_the_built_service(self):
        cfg = ShardConfig(m=2, engine="array")
        assert type(cfg.build_service().sim) is ArraySimulator
        assert ShardConfig(m=2).engine == "event"  # default

    def test_invalid_engine_rejected_at_construction(self):
        with pytest.raises(ClusterError, match="engine"):
            ShardConfig(m=2, engine="legacy")

    def test_cluster_on_array_shards_matches_event(self):
        specs = _workload(seed=9)

        def run(backend):
            return ClusterService(
                8,
                2,
                config=ShardConfig(
                    m=1,
                    scheduler="sns",
                    scheduler_kwargs={"epsilon": 1.0},
                    engine=backend,
                ),
                router="consistent-hash",
                mode="inprocess",
            ).run_stream(specs)

        event, array = run("event"), run("array")
        assert array.total_profit == event.total_profit
        assert sorted(array.records) == sorted(event.records)


class TestScenarioSpecField:
    def _doc(self, mode, backend):
        doc = {
            "scenario": {"mode": mode, "seed": 1},
            "workload": {"n_jobs": 30, "m": 4, "load": 2.0, "epsilon": 1.0},
            "scheduler": {"name": "sns"},
            "engine": {"backend": backend},
        }
        if mode == "cluster":
            doc["cluster"] = {"shards": 2, "mode": "inprocess"}
        return doc

    @pytest.mark.parametrize("mode", ["service", "cluster"])
    def test_array_backend_runs_and_matches_event(self, mode):
        from repro.scenarios import ScenarioBuilder, ScenarioSpec

        def run(backend):
            return ScenarioBuilder(
                ScenarioSpec.from_dict(self._doc(mode, backend))
            ).execute()

        event, array = run("event"), run("array")
        assert array.total_profit == event.total_profit
        assert sorted(array.records) == sorted(event.records)

    @pytest.mark.parametrize("mode", ["service", "cluster"])
    def test_legacy_rejected_with_location(self, mode):
        from repro.scenarios import ScenarioBuilder, ScenarioSpec

        with pytest.raises(ScenarioError, match="legacy"):
            ScenarioBuilder(
                ScenarioSpec.from_dict(self._doc(mode, "legacy"))
            ).execute()

    def test_batch_mode_still_accepts_all_three(self):
        from repro.scenarios import ScenarioBuilder, ScenarioSpec

        results = {}
        for backend in ("legacy", "event", "array"):
            doc = self._doc("batch", backend)
            results[backend] = ScenarioBuilder(
                ScenarioSpec.from_dict(doc)
            ).execute()
        assert (
            results["array"].total_profit
            == results["event"].total_profit
            == results["legacy"].total_profit
        )


class TestCliFlags:
    def test_serve_flag_lands_in_the_spec(self):
        from repro.service.cli import _spec_from_args, build_parser

        args = build_parser().parse_args(
            ["--n-jobs", "10", "--engine", "array"]
        )
        assert _spec_from_args(args).engine.backend == "array"

    def test_gateway_flag_lands_in_the_spec(self):
        from repro.gateway.cli import _spec_from_args, build_parser

        args = build_parser().parse_args(
            ["--n-jobs", "10", "--engine", "array"]
        )
        assert _spec_from_args(args).engine.backend == "array"

    def test_unknown_backend_is_a_parse_error(self):
        from repro.service.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "legacy"])


class TestSnapshotCarriesBackend:
    def test_round_trip_restores_onto_the_same_backend(self):
        specs = sorted(
            _workload(seed=6, m=4), key=lambda sp: (sp.arrival, sp.job_id)
        )
        svc = SchedulingService(4, SNSScheduler(epsilon=1.0), engine="array")
        svc.start()
        mid = len(specs) // 2
        for sp in specs[:mid]:
            svc.submit(sp, t=sp.arrival)
        data = service_to_dict(svc)
        assert data["service"]["engine"] == "array"
        restored = service_from_dict(data, SNSScheduler(epsilon=1.0))
        assert restored.engine == "array"
        assert type(restored.sim) is ArraySimulator
        for sp in specs[mid:]:
            svc.submit(sp, t=sp.arrival)
            restored.submit(sp, t=sp.arrival)
        assert _service_fingerprint(svc.finish()) == _service_fingerprint(
            restored.finish()
        )

    def test_pre_field_snapshots_restore_onto_event(self):
        svc = SchedulingService(2, SNSScheduler(epsilon=1.0), engine="array")
        svc.start()
        data = service_to_dict(svc)
        del data["service"]["engine"]  # snapshot from before the field
        restored = service_from_dict(data, SNSScheduler(epsilon=1.0))
        assert restored.engine == "event"
