"""Checkpoint store tests: digests, rotation, corruption fallback."""

import pytest

from repro.core import SNSScheduler
from repro.errors import SimulationError
from repro.resilience import CheckpointStore
from repro.service import SchedulingService
from repro.service.snapshot import load_snapshot, save_snapshot
from repro.workloads import WorkloadConfig, generate_workload


def snapshot_doc(tag):
    return {"engine": {"t": tag}, "queue": [], "tag": tag}


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 7, snapshot_doc(42))
        assert store.load(0) == (7, snapshot_doc(42))

    def test_missing_shard_is_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).load(3) == (0, None)

    def test_generations_rotate(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for gen in range(5):
            store.save(0, gen, snapshot_doc(gen))
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [
            "shard-000.gen000003.ckpt",
            "shard-000.gen000004.ckpt",
        ]
        assert store.load(0) == (4, snapshot_doc(4))

    def test_shards_are_independent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 1, snapshot_doc(1))
        store.save(1, 2, snapshot_doc(2))
        assert store.load(0)[0] == 1
        assert store.load(1)[0] == 2

    def test_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)


class TestCorruptionFallback:
    def test_corrupt_latest_falls_back_a_generation(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        store.save(0, 10, snapshot_doc(10))
        store.save(0, 20, snapshot_doc(20))
        assert store.corrupt_latest(0) is not None

        # no raise: the previous good generation answers
        assert store.load(0) == (10, snapshot_doc(10))
        assert store.corrupt_detected == 1

    def test_all_corrupt_means_empty_restore(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        store.save(0, 10, snapshot_doc(10))
        store.corrupt_latest(0)
        store.save(0, 20, snapshot_doc(20))
        store.corrupt_latest(0)
        assert store.load(0) == (0, None)
        assert store.corrupt_detected >= 2

    def test_corrupt_latest_on_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).corrupt_latest(0) is None

    def test_unreadable_header_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        store.save(0, 5, snapshot_doc(5))
        path = store.save(0, 6, snapshot_doc(6))
        with open(path, "wb") as fh:
            fh.write(b"garbage with no header\n{}")
        assert store.load(0) == (5, snapshot_doc(5))


class TestSnapshotSidecar:
    def _service(self):
        service = SchedulingService(8, SNSScheduler(epsilon=1.0))
        service.start()
        for spec in generate_workload(
            WorkloadConfig(n_jobs=10, m=8, load=2.0, epsilon=1.0, seed=2)
        ):
            service.submit(spec, t=spec.arrival)
        return service

    def test_sidecar_written_and_verified(self, tmp_path):
        path = str(tmp_path / "svc.json")
        service = self._service()
        save_snapshot(service, path)
        assert (tmp_path / "svc.json.sha256").exists()

        restored = load_snapshot(path, SNSScheduler(epsilon=1.0))
        assert restored.now == service.now
        assert restored.queue.depth == service.queue.depth

    def test_tampered_snapshot_raises(self, tmp_path):
        path = str(tmp_path / "svc.json")
        save_snapshot(self._service(), path)
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"X")
        with pytest.raises(SimulationError, match="digest"):
            load_snapshot(path, SNSScheduler(epsilon=1.0))

    def test_legacy_snapshot_without_sidecar_loads(self, tmp_path):
        path = str(tmp_path / "svc.json")
        service = self._service()
        save_snapshot(service, path)
        (tmp_path / "svc.json.sha256").unlink()
        restored = load_snapshot(path, SNSScheduler(epsilon=1.0))
        assert restored.now == service.now
