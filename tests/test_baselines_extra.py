"""Unit tests for the federated and non-clairvoyant schedulers."""

import pytest

from repro.baselines import DoublingNonClairvoyant, FederatedScheduler
from repro.dag import block, chain, fork_join
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob


def view_of(spec):
    return ActiveJob(spec).view


class TestFederated:
    def test_allotment_formula(self):
        sched = FederatedScheduler()
        sched.on_start(8, 1.0)
        # W=34, L=4 (fork_join width 16 node 2): n = ceil(30/(D-4))
        view = view_of(JobSpec(0, fork_join(16, node_work=2.0), arrival=0,
                               deadline=14))
        # W = 16*2 + 2 = 34, L = 4 -> ceil(30/10) = 3
        assert sched.allotment(view) == 3

    def test_sequential_gets_one(self):
        sched = FederatedScheduler()
        sched.on_start(8, 1.0)
        view = view_of(JobSpec(0, chain(5), arrival=0, deadline=50))
        assert sched.allotment(view) == 1

    def test_infeasible_declined(self):
        sched = FederatedScheduler()
        sched.on_start(8, 1.0)
        view = view_of(JobSpec(0, fork_join(16, node_work=2.0), arrival=0,
                               deadline=4))
        sched.on_arrival(view, 0)
        assert view.job_id in sched.declined
        assert sched.allocate(0) == {}

    def test_reservation_exhaustion_declines(self):
        sched = FederatedScheduler()
        sched.on_start(4, 1.0)
        views = [
            view_of(JobSpec(i, block(16, node_work=2.0), arrival=0,
                            deadline=18))
            for i in range(4)
        ]
        for v in views:
            sched.on_arrival(v, 0)
        # each job needs ceil(30/16) = 2 cores: two admitted, two declined
        assert sched.cores_in_use == 4
        assert len(sched.declined) == 2

    def test_completion_frees_cores(self):
        sched = FederatedScheduler()
        sched.on_start(4, 1.0)
        v = view_of(JobSpec(0, block(16, node_work=2.0), arrival=0, deadline=18))
        sched.on_arrival(v, 0)
        used = sched.cores_in_use
        assert used > 0
        sched.on_completion(v, 5)
        assert sched.cores_in_use == 0

    def test_end_to_end_completes_feasible_job(self):
        spec = JobSpec(0, fork_join(8, node_work=2.0), arrival=0, deadline=40)
        result = Simulator(m=4, scheduler=FederatedScheduler()).run([spec])
        assert result.records[0].on_time


class TestDoublingNonClairvoyant:
    def test_never_reads_true_work(self):
        """The scheduler's state is built from estimates, not view.work."""
        sched = DoublingNonClairvoyant(epsilon=1.0, initial_estimate=4.0)
        sched.on_start(8, 1.0)
        v = view_of(JobSpec(0, chain(64), arrival=0, deadline=10 ** 6))
        sched.on_arrival(v, 0)
        assert sched.states[0].w_hat == 4.0  # not 64

    def test_doubles_as_progress_outgrows_estimate(self):
        spec = JobSpec(0, chain(64), arrival=0, deadline=10 ** 6)
        sched = DoublingNonClairvoyant(epsilon=1.0, initial_estimate=4.0)
        result = Simulator(m=4, scheduler=sched).run([spec])
        assert result.records[0].completed
        assert sched.doublings >= 4  # 4 -> 8 -> 16 -> 32 -> 64+

    def test_completes_workload(self):
        from repro.workloads import WorkloadConfig, generate_workload

        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=8, load=1.0, epsilon=1.0, seed=6)
        )
        sched = DoublingNonClairvoyant(epsilon=1.0)
        result = Simulator(m=8, scheduler=sched).run(specs)
        assert result.total_profit > 0

    def test_invariants_hold(self):
        from repro.analysis import verify_profits, verify_work_accounting
        from repro.workloads import WorkloadConfig, generate_workload

        specs = generate_workload(
            WorkloadConfig(n_jobs=25, m=8, load=2.0, epsilon=1.0, seed=8)
        )
        result = Simulator(
            m=8, scheduler=DoublingNonClairvoyant(epsilon=1.0)
        ).run(specs)
        assert verify_profits(result, specs) == []
        assert verify_work_accounting(result, specs) == []

    def test_rejects_bad_estimate(self):
        with pytest.raises(ValueError):
            DoublingNonClairvoyant(initial_estimate=0.0)
