"""Circuit breaker tests: state machine, routing filter, shedding."""

import pytest

from repro.cluster import ShardConfig
from repro.cluster.router import ShardStats, make_router
from repro.errors import ClusterError, NoHealthyShardError
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRouter,
    ResilientClusterService,
    SupervisorConfig,
)
from repro.workloads import WorkloadConfig, generate_workload

CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})


def spec_at(seed=0):
    return generate_workload(
        WorkloadConfig(n_jobs=1, m=4, load=1.0, epsilon=1.0, seed=seed)
    )[0]


def stats(k):
    return [ShardStats(index=i, m=4) for i in range(k)]


class TestStateMachine:
    def test_trips_on_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(3)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_failure(2)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_half_opens_then_closes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown=100)
        )
        breaker.record_failure(10)
        assert not breaker.allow(50)
        assert breaker.allow(110)  # past cooldown: probe admitted
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(111)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown=100)
        )
        breaker.record_failure(10)
        assert breaker.allow(110)
        breaker.record_failure(111)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(150)

    def test_latency_breach_counts_as_failure(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, latency_threshold=0.1)
        )
        breaker.record_success(0, latency=0.5)
        assert breaker.state is BreakerState.OPEN

    def test_force_open_is_permanent(self):
        breaker = CircuitBreaker(BreakerConfig(cooldown=1))
        breaker.force_open()
        assert not breaker.allow(10**9)

    def test_rejects_bad_config(self):
        with pytest.raises(ClusterError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ClusterError):
            BreakerConfig(half_open_successes=0)


class TestRouterFilter:
    def test_transparent_when_all_healthy(self):
        inner = make_router("consistent-hash")
        wrapped = CircuitBreakerRouter(make_router("consistent-hash"))
        spec = spec_at()
        assert wrapped.route(spec, stats(4)) == inner.route(spec, stats(4))

    def test_open_shard_is_routed_around(self):
        router = CircuitBreakerRouter(make_router("round-robin"))
        router.breaker(1).force_open()
        picks = {router.route(spec_at(s), stats(3)) for s in range(6)}
        assert picks == {0, 2}

    def test_positional_reindex_maps_back(self):
        # least-loaded returns the stats entry's own index field; with
        # shard 0 open the healthy list is re-indexed positionally and
        # the pick must map back to the true shard index
        router = CircuitBreakerRouter(make_router("least-loaded"))
        router.breaker(0).force_open()
        shard_stats = stats(3)
        shard_stats[2].queue_depth = 5  # shard 1 is least loaded
        assert router.route(spec_at(), shard_stats) == 1

    def test_all_open_raises(self):
        router = CircuitBreakerRouter(make_router("consistent-hash"))
        for i in range(2):
            router.breaker(i).force_open()
        with pytest.raises(NoHealthyShardError):
            router.route(spec_at(), stats(2))

    def test_reset_clears_breakers(self):
        router = CircuitBreakerRouter(make_router("round-robin"))
        router.breaker(0).force_open()
        router.now = 55
        router.reset()
        assert router.breakers == {}
        assert router.now == 0


class TestClusterShedding:
    def test_no_healthy_shard_sheds_at_cluster_level(self):
        cluster = ResilientClusterService(
            4,
            2,
            config=CFG,
            mode="inprocess",
            supervisor=SupervisorConfig(
                max_restarts=0, on_exhausted="degrade", heartbeat_every=1
            ),
        )
        cluster.start()
        specs = generate_workload(
            WorkloadConfig(n_jobs=20, m=4, load=2.0, epsilon=1.0, seed=7)
        )
        specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
        half = specs[: len(specs) // 2]
        for spec in half:
            cluster.submit(spec, t=spec.arrival)
        cluster.inject_crash(0)
        cluster.inject_crash(1)
        shed_indices = [
            cluster.submit(spec, t=spec.arrival)
            for spec in specs[len(half) :]
        ]
        assert all(index == -1 for index in shed_indices)
        assert len(cluster.cluster_shed) == len(shed_indices)
        assert all(
            rec.reason == "no-healthy-shard" for rec in cluster.cluster_shed
        )
        result = cluster.finish()
        assert result.extra["cluster_shed"] == cluster.cluster_shed
        assert (
            cluster.cluster_metrics.counter("cluster_shed_total").value
            == len(shed_indices)
        )
