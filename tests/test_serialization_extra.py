"""Unit tests for profit-function and workload serialization."""

import pytest

from repro.profit import (
    FlatThenExponential,
    FlatThenLinear,
    Staircase,
    StepProfit,
    profit_fn_from_dict,
    profit_fn_to_dict,
)
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    load_workload,
    save_workload,
    workload_from_json,
    workload_to_json,
)
from repro.workloads.profits import make_profit_fn_sampler


FNS = [
    StepProfit(2.0, 10.0),
    FlatThenLinear(2.0, 10.0, decay_span=5.0),
    FlatThenExponential(2.0, 10.0, tau=4.0),
    Staircase(2.0, [(10.0, 1.0), (20.0, 0.0)]),
]


class TestProfitFnSerialization:
    @pytest.mark.parametrize("fn", FNS, ids=lambda f: type(f).__name__)
    def test_round_trip_preserves_values(self, fn):
        back = profit_fn_from_dict(profit_fn_to_dict(fn))
        assert type(back) is type(fn)
        for t in (0.0, 5.0, 10.0, 12.5, 30.0, 100.0):
            assert back(t) == pytest.approx(fn(t))
        assert back.x_star == fn.x_star

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            profit_fn_from_dict({"kind": "nope"})

    def test_unserializable_type(self):
        class Custom:
            peak = 1.0
            x_star = 1.0

            def __call__(self, t):
                return 1.0

            def horizon(self, threshold=0.0):
                return 1.0

        with pytest.raises(TypeError):
            profit_fn_to_dict(Custom())


class TestWorkloadSerialization:
    def _equal(self, a, b):
        assert a.job_id == b.job_id
        assert a.arrival == b.arrival
        assert a.deadline == b.deadline
        assert a.profit == pytest.approx(b.profit)
        assert a.structure == b.structure
        if a.profit_fn is not None:
            assert type(a.profit_fn) is type(b.profit_fn)

    def test_deadline_workload_round_trip(self):
        specs = generate_workload(WorkloadConfig(n_jobs=12, m=4, seed=1))
        back = workload_from_json(workload_to_json(specs))
        assert len(back) == len(specs)
        for a, b in zip(specs, back):
            self._equal(a, b)

    def test_profit_fn_workload_round_trip(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=8,
                m=4,
                seed=2,
                profit_fn_sampler=make_profit_fn_sampler("staircase"),
            )
        )
        back = workload_from_json(workload_to_json(specs))
        for a, b in zip(specs, back):
            self._equal(a, b)
            for t in (0.0, 10.0, 50.0, 200.0):
                assert a.profit_fn(t) == pytest.approx(b.profit_fn(t))

    def test_file_round_trip(self, tmp_path):
        specs = generate_workload(WorkloadConfig(n_jobs=5, m=4, seed=3))
        path = tmp_path / "workload.json"
        save_workload(specs, str(path))
        back = load_workload(str(path))
        assert len(back) == 5

    def test_version_check(self):
        import json

        text = json.dumps({"version": 42, "jobs": []})
        with pytest.raises(ValueError, match="version"):
            workload_from_json(text)

    def test_replay_identical_results(self):
        """A serialized workload replays to identical profits."""
        from repro.core import SNSScheduler
        from repro.sim import Simulator

        specs = generate_workload(WorkloadConfig(n_jobs=15, m=4, load=2.0, seed=4))
        back = workload_from_json(workload_to_json(specs))
        a = Simulator(m=4, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
        b = Simulator(m=4, scheduler=SNSScheduler(epsilon=1.0)).run(back)
        assert a.total_profit == b.total_profit
