"""Smoke tests: every example script runs to completion and produces
its expected report sections."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "OPT upper bound" in out
        assert "S(eps=1.0)" in out
        assert "Global EDF" in out

    def test_cluster_batch(self):
        out = run_example("cluster_batch_scheduling.py")
        assert "Demand sweep" in out
        assert "Trap regime" in out
        assert "fraction of feasible" in out

    def test_video_rendering(self):
        out = run_example("video_rendering_profit.py")
        assert "Render farm" in out
        for decay in ("linear", "exponential", "staircase"):
            assert decay in out

    def test_adversarial_lower_bound(self):
        out = run_example("adversarial_lower_bound.py")
        assert "Figure 1" in out
        assert "Figure 2" in out
        assert "2 - 1/m" in out or "2-1/m" in out

    def test_realtime_periodic(self):
        out = run_example("realtime_periodic_tasks.py")
        assert "Utilization sweep" in out
        assert "util [" in out
        assert "done" in out

    def test_streaming_service(self):
        out = run_example("streaming_service.py")
        assert "Serving a full diurnal cycle" in out
        assert "bit-identical after restore: True" in out
        assert "final telemetry sample" in out
        assert "done" in out

    def test_diurnal_report(self):
        out = run_example("diurnal_cluster_report.py")
        assert "Workload" in out
        assert "Comparison" in out
        assert "Speed needed" in out

    def test_realtime_gateway(self):
        out = run_example("realtime_gateway.py")
        assert "Flash crowd" in out
        assert "Autoscaler timeline" in out
        assert "scale path: 1 ->" in out
        assert "fingerprint match: True" in out
        assert "done" in out

    def test_sharded_cluster(self):
        out = run_example("sharded_cluster.py")
        assert "Routers vs single service" in out
        assert "migration=on" in out
        assert "bit-identical to fault-free run: True" in out

    def test_coordinated_cluster(self):
        out = run_example("coordinated_cluster.py")
        assert "Coordinated cluster vs the sharding profit gap" in out
        assert "% of k=1" in out
        assert "Candidate trial" in out
        assert "(committed)" in out
        assert "done" in out


def run_scenario_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.scenarios.cli", *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestScenarioExamples:
    """The shipped scenario specs validate and run end to end."""

    SPEC_NAMES = [
        "overload_vs_rivals.toml",
        "coordinated_flash_crowd.toml",
        "chaos_under_tracing.toml",
    ]

    def test_all_specs_validate(self):
        specs = sorted((EXAMPLES / "scenarios").glob("*.toml"))
        assert [p.name for p in specs] == sorted(self.SPEC_NAMES)
        out = run_scenario_cli("validate", *(str(p) for p in specs))
        assert out.count(": ok") == len(specs)

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_spec_runs(self, name):
        out = run_scenario_cli("run", str(EXAMPLES / "scenarios" / name))
        assert "result fingerprint" in out
        assert "total_profit" in out
