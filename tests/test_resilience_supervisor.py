"""Supervisor tests: liveness detection, restart budget, degradation."""

import pytest

from repro.cluster import ShardConfig
from repro.errors import ClusterError, RestartBudgetExhausted
from repro.resilience import (
    ResilientClusterService,
    RpcPolicy,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.workloads import WorkloadConfig, generate_workload

CFG = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})
FAST_RPC = RpcPolicy(call_timeout=1.0, retries=0)


def workload(n_jobs=80, m=8, seed=3):
    return generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=2.5, epsilon=1.0, seed=seed)
    )


def build(mode, *, k=2, m=8, supervisor=None, heartbeat_every=1,
          heartbeat_timeout=0.25, max_restarts=8, on_exhausted="raise"):
    if supervisor is None:
        supervisor = SupervisorConfig(
            heartbeat_timeout=heartbeat_timeout,
            heartbeat_every=heartbeat_every,
            max_restarts=max_restarts,
            backoff_base=0.001,
            backoff_max=0.01,
            on_exhausted=on_exhausted,
        )
    return ResilientClusterService(
        m, k, config=CFG, mode=mode, supervisor=supervisor, rpc=FAST_RPC
    )


def mid_time(specs):
    arrivals = sorted(sp.arrival for sp in specs)
    return arrivals[len(arrivals) // 2]


class TestConfig:
    def test_rejects_bad_cadence(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(heartbeat_every=0)

    def test_rejects_bad_policy(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(on_exhausted="panic")

    def test_rejects_negative_budget(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(max_restarts=-1)


@pytest.mark.parametrize("mode", ["inprocess", "process"])
class TestCrashRecovery:
    def test_crash_restart_is_bit_identical(self, mode):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)

        clean = build(mode).run_stream(specs)

        cluster = build(mode)
        cluster.start()
        for spec in specs:
            if spec.arrival >= fault_t and not cluster.supervisor.events:
                cluster.inject_crash(0)
            cluster.submit(spec, t=spec.arrival)
        chaos = cluster.finish()

        assert cluster.supervisor.events, "the crash was never detected"
        assert cluster.supervisor.events[0].reason == "crash"
        assert chaos.records == clean.records
        assert chaos.total_profit == clean.total_profit

    def test_hang_detected_within_deadline(self, mode):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        deadline = 0.25

        cluster = build(mode, heartbeat_timeout=deadline)
        cluster.start()
        injected = False
        for spec in specs:
            if spec.arrival >= fault_t and not injected:
                cluster.inject_hang(0, 2.0)
                injected = True
            cluster.submit(spec, t=spec.arrival)
        result = cluster.finish()

        events = cluster.supervisor.events
        assert any(e.reason == "hang" for e in events)
        hang = next(e for e in events if e.reason == "hang")
        # detection latency is bounded by the probe deadline (plus
        # rpc-level noise: one call_timeout if a fence hit it first)
        assert hang.detection_seconds <= deadline + FAST_RPC.call_timeout
        # and the run still matches the fault-free one
        clean = build(mode).run_stream(specs)
        assert result.records == clean.records


class TestBudget:
    def test_exhausted_budget_raises_with_summary(self):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        cluster = build("inprocess", max_restarts=0, on_exhausted="raise")
        cluster.start()
        with pytest.raises(RestartBudgetExhausted) as excinfo:
            for spec in specs:
                if spec.arrival >= fault_t:
                    cluster.inject_crash(0)
                cluster.submit(spec, t=spec.arrival)
            cluster.finish()
        exc = excinfo.value
        summary = exc.summary()
        assert summary["error"] == "recovery-exhausted"
        assert summary["shard"] == 0
        assert summary["fault"] == "crash"
        assert summary["last_checkpoint_log_index"] >= 0

    def test_budget_counts_restarts(self):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        cluster = build("inprocess", max_restarts=2, on_exhausted="raise")
        cluster.start()
        fired = 0
        with pytest.raises(RestartBudgetExhausted):
            for spec in specs:
                if spec.arrival >= fault_t and fired < 3:
                    cluster.inject_crash(0)
                    fired += 1
                cluster.submit(spec, t=spec.arrival)
            cluster.finish()
        assert cluster.supervisor.restarts[0] == 2


class TestDegrade:
    def test_degraded_shard_is_served_around(self):
        specs = sorted(workload(n_jobs=120), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        cluster = build("inprocess", k=4, max_restarts=0, on_exhausted="degrade")
        cluster.start()
        injected = False
        for spec in specs:
            if spec.arrival >= fault_t and not injected:
                cluster.inject_crash(1)
                injected = True
            assert cluster.submit(spec, t=spec.arrival) != 1 or not injected
        result = cluster.finish()

        assert cluster.supervisor.degraded == {1}
        assert result.extra["degraded_shards"] == [1]
        # the degraded shard reports an empty stand-in result
        assert result.shard_results[1].result.records == {}
        # the cluster as a whole kept serving and completing work
        assert result.total_profit > 0
        assert cluster.supervisor.events[-1].action == "degrade"

    def test_degrade_events_are_recorded_once(self):
        specs = sorted(workload(), key=lambda sp: (sp.arrival, sp.job_id))
        fault_t = mid_time(specs)
        cluster = build("inprocess", k=2, max_restarts=0, on_exhausted="degrade")
        cluster.start()
        for spec in specs:
            if spec.arrival >= fault_t and not cluster.supervisor.degraded:
                cluster.inject_crash(0)
            cluster.submit(spec, t=spec.arrival)
        cluster.finish()
        degrades = [e for e in cluster.supervisor.events if e.action == "degrade"]
        assert len(degrades) == 1


class TestSupervisorObject:
    def test_existing_supervisor_instance_is_used(self):
        supervisor = ShardSupervisor(SupervisorConfig(max_restarts=1))
        cluster = ResilientClusterService(
            4, 2, config=CFG, mode="inprocess", supervisor=supervisor
        )
        assert cluster.supervisor is supervisor

    def test_tick_respects_cadence(self):
        cluster = build("inprocess", heartbeat_every=1000)
        cluster.start()
        specs = workload(n_jobs=10)
        for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
            cluster.submit(spec, t=spec.arrival)
        # far below the cadence: no heartbeat round ever ran
        assert cluster.supervisor.events == []
        cluster.finish()
