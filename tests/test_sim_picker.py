"""Unit tests for repro.sim.picker."""

import numpy as np
import pytest

from repro.dag import DAGJob, block_with_chain
from repro.sim import (
    AdversarialPicker,
    CriticalPathPicker,
    FIFOPicker,
    LIFOPicker,
    RandomPicker,
    make_picker,
)


@pytest.fixture
def fig1_job():
    # m=4: chain of 16 unit nodes (ids 0..15), block of 48 (ids 16..63)
    return DAGJob(block_with_chain(64.0, 4))


class TestDeterministicPickers:
    def test_fifo_takes_prefix(self, fig1_job):
        ready = fig1_job.ready_nodes()
        picked = FIFOPicker().pick(fig1_job, ready, 3)
        assert picked == list(ready[:3])

    def test_lifo_takes_suffix(self, fig1_job):
        ready = fig1_job.ready_nodes()
        picked = LIFOPicker().pick(fig1_job, ready, 3)
        assert picked == list(ready[-3:])

    def test_fewer_ready_than_k(self, fig1_job):
        ready = fig1_job.ready_nodes()
        assert FIFOPicker().pick(fig1_job, ready, 1000) == list(ready)


class TestRandomPicker:
    def test_seeded_determinism(self, fig1_job):
        ready = fig1_job.ready_nodes()
        a = RandomPicker(42).pick(fig1_job, ready, 5)
        b = RandomPicker(42).pick(fig1_job, ready, 5)
        assert a == b

    def test_subset_of_ready(self, fig1_job):
        ready = fig1_job.ready_nodes()
        picked = RandomPicker(0).pick(fig1_job, ready, 5)
        assert len(picked) == 5
        assert len(set(picked)) == 5
        assert set(picked) <= set(ready)

    def test_accepts_generator(self, fig1_job):
        picker = RandomPicker(np.random.default_rng(1))
        assert len(picker.pick(fig1_job, fig1_job.ready_nodes(), 2)) == 2


class TestStructureAwarePickers:
    def test_adversarial_avoids_chain(self, fig1_job):
        # chain head (node 0) has the longest tail; adversary must avoid it
        ready = fig1_job.ready_nodes()
        picked = AdversarialPicker().pick(fig1_job, ready, 4)
        assert 0 not in picked
        # all picks are block nodes (ids >= 16)
        assert all(node >= 16 for node in picked)

    def test_critical_path_takes_chain_first(self, fig1_job):
        ready = fig1_job.ready_nodes()
        picked = CriticalPathPicker().pick(fig1_job, ready, 4)
        assert 0 in picked

    def test_both_handle_small_ready(self, fig1_job):
        ready = fig1_job.ready_nodes()[:2]
        assert AdversarialPicker().pick(fig1_job, ready, 10) == list(ready)
        assert CriticalPathPicker().pick(fig1_job, ready, 10) == list(ready)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["fifo", "lifo", "random", "adversarial", "critical_path"]
    )
    def test_make_picker(self, name):
        picker = make_picker(name, rng=0)
        assert hasattr(picker, "pick")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown picker"):
            make_picker("nope")
