"""Unit + property tests for repro.core.bands.DensityBands."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DensityBands


class TestBasics:
    def test_insert_and_query(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 3)
        bands.insert(2, 2.0, 2)
        assert len(bands) == 2
        assert 1 in bands
        assert bands.density_of(1) == 1.0
        assert bands.allotment_of(2) == 2

    def test_duplicate_insert_rejected(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 1)
        with pytest.raises(ValueError):
            bands.insert(1, 2.0, 1)

    def test_invalid_values_rejected(self):
        bands = DensityBands()
        with pytest.raises(ValueError):
            bands.insert(1, 0.0, 1)
        with pytest.raises(ValueError):
            bands.insert(1, float("inf"), 1)
        with pytest.raises(ValueError):
            bands.insert(1, 1.0, 0)

    def test_remove(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 3)
        bands.remove(1)
        assert len(bands) == 0
        assert bands.band_load(0.5, 2.0) == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            DensityBands().remove(5)

    def test_items_sorted_by_density(self):
        bands = DensityBands()
        bands.insert(1, 3.0, 1)
        bands.insert(2, 1.0, 1)
        bands.insert(3, 2.0, 1)
        assert [jid for jid, _, _ in bands.items()] == [2, 3, 1]


class TestBandLoad:
    def test_half_open_interval(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 2)
        bands.insert(2, 2.0, 3)
        assert bands.band_load(1.0, 2.0) == 2  # 2.0 excluded
        assert bands.band_load(1.0, 2.0001) == 5
        assert bands.band_load(0.0, 10.0) == 5

    def test_load_at_least(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 2)
        bands.insert(2, 2.0, 3)
        assert bands.load_at_least(1.5) == 3
        assert bands.load_at_least(1.0) == 5
        assert bands.load_at_least(5.0) == 0

    def test_equal_densities_accumulate(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 2)
        bands.insert(2, 1.0, 3)
        assert bands.band_load(1.0, 1.5) == 5


class TestCanInsert:
    def test_empty_respects_capacity(self):
        bands = DensityBands()
        assert bands.can_insert(1.0, 5, c=2.0, capacity=5.0)
        assert not bands.can_insert(1.0, 6, c=2.0, capacity=5.0)

    def test_own_band_counts_existing(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 4)
        # new job at density 1.5: own band [1.5, 3.0) is empty, but the
        # existing job's band [1.0, 2.0) would contain it
        assert not bands.can_insert(1.5, 3, c=2.0, capacity=6.0)
        assert bands.can_insert(1.5, 2, c=2.0, capacity=6.0)

    def test_far_densities_do_not_interact(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 5)
        assert bands.can_insert(100.0, 5, c=2.0, capacity=5.0)
        assert bands.can_insert(0.01, 5, c=2.0, capacity=5.0)

    def test_insert_does_not_check(self):
        bands = DensityBands()
        bands.insert(1, 1.0, 100)  # no capacity enforcement here
        assert bands.max_band_load(2.0) == 100


def _brute_force_can_insert(jobs, density, allotment, c, capacity):
    """Reference implementation: check every anchor including the new."""
    candidate = jobs + [(density, allotment)]
    for v_j, _ in candidate:
        load = sum(n for v, n in candidate if v_j <= v < c * v_j)
        if load > capacity + 1e-9:
            return False
    return True


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=8,
    ),
    st.floats(min_value=0.01, max_value=100.0),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=1.5, max_value=10.0),
    st.floats(min_value=1.0, max_value=30.0),
)
def test_can_insert_matches_brute_force(jobs, density, allotment, c, capacity):
    from hypothesis import assume

    bands = DensityBands()
    for i, (v, n) in enumerate(jobs):
        bands.insert(i, v, n)
    # can_insert's precondition (maintained by the scheduler): the
    # tracked set already satisfies the band invariant.
    assume(bands.max_band_load(c) <= capacity + 1e-9)
    expected = _brute_force_can_insert(jobs, density, allotment, c, capacity)
    assert bands.can_insert(density, allotment, c, capacity) == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=8,
    ),
    st.floats(min_value=1.5, max_value=10.0),
)
def test_max_band_load_matches_brute_force(jobs, c):
    bands = DensityBands()
    for i, (v, n) in enumerate(jobs):
        bands.insert(i, v, n)
    expected = max(
        sum(n for v, n in jobs if v_j <= v < c * v_j) for v_j, _ in jobs
    )
    assert bands.max_band_load(c) == expected
