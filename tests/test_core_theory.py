"""Unit + property tests for repro.core.theory.Constants."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Constants
from tests.conftest import job_parameters


class TestDerivation:
    def test_defaults(self):
        c = Constants.from_epsilon(1.0)
        assert c.delta == 0.25
        assert c.b == pytest.approx(math.sqrt(1.5 / 2.0))
        assert c.c >= 1.0 + 1.0 / (c.delta * c.epsilon)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            Constants.from_epsilon(0.0)
        with pytest.raises(ValueError):
            Constants.from_epsilon(-1.0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            Constants.from_epsilon(1.0, delta=0.5)  # = eps/2 not allowed
        with pytest.raises(ValueError):
            Constants.from_epsilon(1.0, delta=0.0)

    def test_rejects_small_c(self):
        with pytest.raises(ValueError):
            Constants.from_epsilon(1.0, c=2.0)  # below paper minimum (5)

    def test_explicit_paper_c_accepted(self):
        c = Constants.from_epsilon(1.0, c=5.0)
        assert c.c == 5.0

    def test_b_consistency_enforced(self):
        with pytest.raises(ValueError):
            Constants(epsilon=1.0, delta=0.25, c=60.0, b=0.5)


class TestDerivedQuantities:
    def test_a_formula(self):
        c = Constants.from_epsilon(1.0)  # delta = 0.25
        assert c.a == pytest.approx(1.0 + 1.5 / 0.5)  # = 4

    def test_completion_coefficient_positive(self):
        for eps in (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
            c = Constants.from_epsilon(eps)
            assert c.completion_coefficient > 0, eps

    def test_paper_minimal_c_coefficient_nonpositive_for_small_eps(self):
        # documents the deviation: the paper's minimal c makes the
        # Lemma 5 coefficient <= 0 for small epsilon
        eps, delta = 0.25, 0.0625
        c = Constants.from_epsilon(eps, c=1.0 + 1.0 / (delta * eps))
        assert c.completion_coefficient <= 0

    def test_competitive_ratios_finite_and_ordered(self):
        c = Constants.from_epsilon(1.0)
        assert 1.0 < c.competitive_ratio_throughput < float("inf")
        assert c.competitive_ratio_profit > c.competitive_ratio_throughput

    def test_ratio_grows_as_eps_shrinks(self):
        r = [
            Constants.from_epsilon(eps).competitive_ratio_throughput
            for eps in (2.0, 1.0, 0.5, 0.25)
        ]
        assert r[0] < r[1] < r[2] < r[3]

    def test_band_capacity(self):
        c = Constants.from_epsilon(1.0)
        assert c.band_capacity(100) == pytest.approx(c.b * 100)
        assert c.allotment_cap(100) == pytest.approx(c.b * c.b * 100)


class TestPerJobQuantities:
    def test_allotment_sequential_job(self):
        c = Constants.from_epsilon(1.0)
        assert c.allotment_real(10.0, 10.0, 100.0) == 0.0
        assert c.allotment(10.0, 10.0, 100.0, m=8) == 1

    def test_allotment_infeasible_denominator(self):
        c = Constants.from_epsilon(1.0)  # 1+2delta = 1.5
        # D/1.5 <= L -> infinite real allotment, clamped to m
        assert math.isinf(c.allotment_real(100.0, 10.0, 15.0))
        assert c.allotment(100.0, 10.0, 15.0, m=8) == 8

    def test_allotment_hand_computed(self):
        c = Constants.from_epsilon(1.0)  # delta=.25 -> 1+2delta=1.5
        # W=130, L=10, D=60: n = 120 / (40 - 10) = 4
        assert c.allotment_real(130.0, 10.0, 60.0) == pytest.approx(4.0)
        assert c.allotment(130.0, 10.0, 60.0, m=16) == 4

    def test_execution_bound(self):
        c = Constants.from_epsilon(1.0)
        # x = (130-10)/4 + 10 = 40
        assert c.execution_bound(130.0, 10.0, 4) == pytest.approx(40.0)

    def test_density(self):
        c = Constants.from_epsilon(1.0)
        assert c.density(80.0, 40.0, 4) == pytest.approx(0.5)

    def test_delta_good(self):
        c = Constants.from_epsilon(1.0)
        assert c.is_delta_good(60.0, 40.0)  # 60 >= 1.5*40
        assert not c.is_delta_good(59.0, 40.0)

    def test_delta_fresh(self):
        c = Constants.from_epsilon(1.0)  # 1+delta = 1.25
        assert c.is_delta_fresh(100.0, 50.0, 40.0)  # 50 >= 50
        assert not c.is_delta_fresh(100.0, 51.0, 40.0)


class TestLemmasNumerically:
    """Lemmas 1-3 hold for every assumption-satisfying job (hypothesis)."""

    @given(job_parameters())
    def test_lemma1_allotment_cap(self, params):
        work, span, m, epsilon = params
        consts = Constants.from_epsilon(epsilon)
        deadline = consts.slack_requirement(work, span, m) * 1.000001
        real = consts.allotment_real(work, span, deadline)
        assert real <= consts.allotment_cap(m) + 1e-6

    @given(job_parameters())
    def test_lemma2_delta_good(self, params):
        work, span, m, epsilon = params
        consts = Constants.from_epsilon(epsilon)
        deadline = consts.slack_requirement(work, span, m) * 1.000001
        n = consts.allotment(work, span, deadline, m)
        x = consts.execution_bound(work, span, n)
        assert consts.is_delta_good(deadline, x)

    @given(job_parameters())
    def test_lemma3_processor_step_inflation(self, params):
        work, span, m, epsilon = params
        consts = Constants.from_epsilon(epsilon)
        deadline = consts.slack_requirement(work, span, m) * 1.000001
        n = consts.allotment(work, span, deadline, m)
        x = consts.execution_bound(work, span, n)
        # +x allowance for ceil-rounding of n (adds at most L <= x)
        assert x * n <= consts.a * work + x + 1e-6

    @given(job_parameters())
    def test_integral_allotment_only_shrinks_x(self, params):
        """Rounding n up can only shorten the execution bound x."""
        work, span, m, epsilon = params
        consts = Constants.from_epsilon(epsilon)
        deadline = consts.slack_requirement(work, span, m) * 1.000001
        real = consts.allotment_real(work, span, deadline)
        n = consts.allotment(work, span, deadline, m)
        if 0 < real and not math.isinf(real) and n >= real:
            x_real = consts.execution_bound(work, span, max(real, 1e-12))
            x_int = consts.execution_bound(work, span, n)
            if real >= 1:
                assert x_int <= x_real + 1e-9
