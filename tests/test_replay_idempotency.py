"""Replay idempotency pins: keyed replay admits each job exactly once.

Recovery in the resilient cluster is *at-least-once* delivery (a
replayed tail may overlap retried sends), made exactly-once by
idempotency keys derived from log positions.  These tests pin the
sharp version: replaying a recovered shard's log tail **twice** yields
results bit-identical to replaying it once, in both cluster modes.
"""

import pytest

from repro.cluster import ShardConfig
from repro.cluster.shard import make_shard
from repro.resilience import ResilientClusterService, SupervisorConfig
from repro.workloads import WorkloadConfig, generate_workload

CFG = ShardConfig(m=4, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})


def workload(n_jobs=60, m=8, seed=9):
    specs = generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=m, load=2.5, epsilon=1.0, seed=seed)
    )
    specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
    return specs


def mid_time(specs):
    arrivals = sorted(sp.arrival for sp in specs)
    return arrivals[len(arrivals) // 2]


@pytest.mark.parametrize("mode", ["inprocess", "process"])
class TestShardKeyDedupe:
    def test_duplicate_keys_admit_once(self, mode):
        specs = workload(n_jobs=20)
        once = make_shard(0, CFG, mode)
        once.start()
        for i, spec in enumerate(specs):
            once.submit(spec, spec.arrival, key=f"k{i}")
        single = once.finish()

        twice = make_shard(0, CFG, mode)
        twice.start()
        for i, spec in enumerate(specs):
            twice.submit(spec, spec.arrival, key=f"k{i}")
            twice.submit(spec, spec.arrival, key=f"k{i}")  # duplicate send
        double = twice.finish()

        assert double.result.records == single.result.records
        assert double.total_profit == single.total_profit

    def test_unkeyed_submissions_match_keyed(self, mode):
        # key=None preserves PR 3 semantics and keys never perturb a
        # duplicate-free stream: both runs are bit-identical
        specs = workload(n_jobs=20)
        unkeyed = make_shard(0, CFG, mode)
        unkeyed.start()
        for spec in specs:
            unkeyed.submit(spec, spec.arrival)
        plain = unkeyed.finish()

        keyed = make_shard(0, CFG, mode)
        keyed.start()
        for i, spec in enumerate(specs):
            keyed.submit(spec, spec.arrival, key=f"k{i}")
        with_keys = keyed.finish()
        assert with_keys.result.records == plain.result.records
        assert with_keys.total_profit == plain.total_profit

    def test_restore_clears_seen_keys(self, mode):
        # a restored shard must accept the replayed tail even though the
        # same keys were delivered to the previous incarnation
        specs = workload(n_jobs=12)
        shard = make_shard(0, CFG, mode)
        shard.start()
        for i, spec in enumerate(specs[:6]):
            shard.submit(spec, spec.arrival, key=f"k{i}")
        snapshot = shard.snapshot()
        shard.kill()
        shard.restore(None)
        # fresh incarnation, same keys: all must land
        for i, spec in enumerate(specs[:6]):
            shard.submit(spec, spec.arrival, key=f"k{i}")
        replayed = shard.finish()

        clean = make_shard(0, CFG, mode)
        clean.start()
        for spec in specs[:6]:
            clean.submit(spec, spec.arrival)
        baseline = clean.finish()
        assert replayed.result.records == baseline.result.records
        assert snapshot is not None


@pytest.mark.parametrize("mode", ["inprocess", "process"])
class TestDoubleReplayPin:
    def test_replaying_log_tail_twice_is_identical(self, mode):
        """Kill a shard, recover it, then replay the same tail again:
        the keyed second replay must change nothing."""
        specs = workload()
        fault_t = mid_time(specs)

        def run(extra_replays):
            cluster = ResilientClusterService(
                8,
                2,
                config=ShardConfig(
                    m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0}
                ),
                mode=mode,
                supervisor=SupervisorConfig(
                    heartbeat_every=1,
                    heartbeat_timeout=0.25,
                    max_restarts=8,
                    backoff_base=0.001,
                    backoff_max=0.01,
                ),
            )
            cluster.start()
            injected = False
            replay_pending = False
            for spec in specs:
                if spec.arrival >= fault_t and not injected:
                    cluster.inject_crash(0)
                    injected = True
                    replay_pending = True
                cluster.submit(spec, t=spec.arrival)
                if replay_pending and cluster.recoveries:
                    replay_pending = False  # recovered: replay again
                    for _ in range(extra_replays):
                        event = cluster.recoveries[-1]
                        log_index, _ = cluster._load_checkpoint(event.shard)
                        tail = cluster.logs[event.shard].entries[log_index:]
                        for offset, (entry_t, tail_spec) in enumerate(
                            tail, start=log_index
                        ):
                            cluster.shards[event.shard].submit(
                                tail_spec,
                                entry_t,
                                key=cluster._submit_key(event.shard, offset),
                            )
            return cluster.finish()

        once = run(extra_replays=0)
        twice = run(extra_replays=2)
        assert twice.records == once.records
        assert twice.total_profit == once.total_profit
        assert twice.num_shed == once.num_shed

    def test_inprocess_admission_counter_unchanged(self, mode):
        """The dedupe happens before admission: the shard's engine sees
        each replayed job exactly once (pinned via completion totals)."""
        if mode != "inprocess":
            pytest.skip("counter introspection is in-process only")
        specs = workload(n_jobs=30)
        shard = make_shard(0, CFG, "inprocess")
        shard.start()
        for i, spec in enumerate(specs):
            for _ in range(3):  # triple delivery, one key
                shard.submit(spec, spec.arrival, key=f"k{i}")
        service = shard.service
        total = (
            service.queue.depth
            + service.in_flight
            + service.sim.counters.completions
            + service.sim.counters.expiries
            + len(service.shed_log)
        )
        assert total == len(specs)
        shard.finish()
