"""Unit tests for baseline schedulers and ablations."""

import pytest

from repro.baselines import (
    FIFOScheduler,
    GlobalEDF,
    GreedyDensity,
    LeastLaxityFirst,
    RandomScheduler,
    SNSNoAdmission,
    SNSWorkDensity,
    WorkConservingSNS,
)
from repro.core import SNSScheduler
from repro.dag import block, chain
from repro.sim import JobSpec, Simulator
from repro.sim.jobs import ActiveJob


def view_of(spec):
    return ActiveJob(spec).view


class TestPriorityOrders:
    def test_edf_prefers_earlier_deadline(self):
        edf = GlobalEDF()
        edf.on_start(4, 1.0)
        early = view_of(JobSpec(0, chain(2), arrival=0, deadline=5))
        late = view_of(JobSpec(1, chain(2), arrival=0, deadline=9))
        assert edf.priority(early, 0) < edf.priority(late, 0)

    def test_edf_deadline_less_jobs_last(self):
        from repro.profit import StepProfit

        edf = GlobalEDF()
        edf.on_start(4, 1.0)
        with_d = view_of(JobSpec(0, chain(2), arrival=0, deadline=500))
        without = view_of(JobSpec(1, chain(2), arrival=0,
                                  profit_fn=StepProfit(1, 50)))
        assert edf.priority(with_d, 0) < edf.priority(without, 0)

    def test_llf_prefers_less_laxity(self):
        llf = LeastLaxityFirst()
        llf.on_start(2, 1.0)
        tight = view_of(JobSpec(0, chain(8), arrival=0, deadline=10))
        loose = view_of(JobSpec(1, chain(2), arrival=0, deadline=10))
        assert llf.priority(tight, 0) < llf.priority(loose, 0)

    def test_greedy_prefers_denser(self):
        g = GreedyDensity()
        g.on_start(2, 1.0)
        dense = view_of(JobSpec(0, chain(2), arrival=0, deadline=10, profit=4.0))
        sparse = view_of(JobSpec(1, chain(2), arrival=0, deadline=10, profit=1.0))
        assert g.priority(dense, 0) < g.priority(sparse, 0)

    def test_fifo_prefers_earlier_arrival(self):
        f = FIFOScheduler()
        a = view_of(JobSpec(0, chain(2), arrival=3, deadline=10))
        b = view_of(JobSpec(1, chain(2), arrival=5, deadline=12))
        assert f.priority(a, 0) < f.priority(b, 0)


class TestWorkConservation:
    def test_list_scheduler_uses_all_ready_nodes(self):
        spec = JobSpec(0, block(8), arrival=0, deadline=100)
        result = Simulator(m=4, scheduler=FIFOScheduler()).run([spec])
        assert result.records[0].completion_time == 2

    def test_splits_across_jobs(self):
        specs = [
            JobSpec(0, block(2), arrival=0, deadline=100),
            JobSpec(1, block(2), arrival=0, deadline=100),
        ]
        result = Simulator(m=4, scheduler=FIFOScheduler()).run(specs)
        assert result.end_time == 1  # all four nodes in one step


class TestEDFSkipHopeless:
    def test_hopeless_job_skipped(self):
        # job 0 cannot finish (work 100, window 5); with skip_hopeless
        # EDF gives the machine to job 1 immediately
        specs = [
            JobSpec(0, block(100, node_work=1.0), arrival=0, deadline=5),
            JobSpec(1, chain(10), arrival=0, deadline=100),
        ]
        res = Simulator(m=1, scheduler=GlobalEDF(skip_hopeless=True)).run(specs)
        assert res.records[1].completion_time == 10


class TestRandomScheduler:
    def test_seeded_determinism(self):
        specs = [
            JobSpec(i, chain(4), arrival=0, deadline=50) for i in range(6)
        ]
        r1 = Simulator(m=2, scheduler=RandomScheduler(9)).run(specs)
        r2 = Simulator(m=2, scheduler=RandomScheduler(9)).run(specs)
        assert {k: v.completion_time for k, v in r1.records.items()} == {
            k: v.completion_time for k, v in r2.records.items()
        }

    def test_priority_stable_within_run(self):
        sched = RandomScheduler(1)
        sched.on_start(2, 1.0)
        v = view_of(JobSpec(0, chain(2), arrival=0, deadline=10))
        sched.on_arrival(v, 0)
        assert sched.priority(v, 0) == sched.priority(v, 5)


class TestAblations:
    def test_no_admission_admits_everything(self):
        sched = SNSNoAdmission(epsilon=1.0)
        sched.on_start(m=2, speed=1.0)
        # not delta-good, would be parked by S
        v = view_of(JobSpec(0, chain(10), arrival=0, deadline=12))
        sched.on_arrival(v, 0)
        assert 0 in sched.queue_started

    def test_work_conserving_tops_up(self):
        sched = WorkConservingSNS(epsilon=1.0)
        spec = JobSpec(0, block(64, node_work=1.0), arrival=0, deadline=40)
        result = Simulator(m=8, scheduler=sched).run([spec])
        plain = Simulator(
            m=8, scheduler=SNSScheduler(epsilon=1.0)
        ).run([spec])
        # extra processors only help
        assert (
            result.records[0].completion_time
            <= plain.records[0].completion_time
        )

    def test_work_density_orders_by_p_over_w(self):
        sched = SNSWorkDensity(epsilon=1.0)
        sched.on_start(m=8, speed=1.0)
        v = view_of(JobSpec(0, chain(10), arrival=0, deadline=100, profit=5.0))
        state = sched.compute_state(v)
        assert state.density == pytest.approx(0.5)
