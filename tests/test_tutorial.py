"""Execute every Python snippet in docs/TUTORIAL.md.

The tutorial's code blocks share one namespace (later blocks reference
earlier variables), exactly as a reader following along would have.
Keeping this test green keeps the tutorial honest.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def python_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_tutorial_has_blocks():
    assert len(python_blocks()) >= 8


def test_tutorial_snippets_execute(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # persistence snippet writes e1.json
    namespace: dict = {}
    for i, block in enumerate(python_blocks()):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")
    # spot-check the claims the tutorial prints
    assert namespace["dag"].total_work == 11.0
    assert namespace["dag"].span == 7.0
    out = capsys.readouterr().out
    assert "CriticalPathPicker 64" in out
    assert "AdversarialPicker 120" in out
