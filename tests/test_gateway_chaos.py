"""End-to-end gateway chaos: faults, audits, and degraded telemetry.

The cluster-level chaos harness pins bit-identity; a gateway run with
elastic scaling and live faults is allowed to differ from its clean
twin, so the claim here is the *audit*: every seeded schedule must
conserve jobs, complete each at most once, and keep steal transactions
settled -- plus the run itself must be bit-identical when repeated.
"""

import http.client
import json
from types import SimpleNamespace

import pytest

from repro.cluster import ShardConfig
from repro.cluster.elastic import ElasticCluster
from repro.gateway.autoscale import Autoscaler
from repro.gateway.clock import VirtualClock
from repro.gateway.gateway import Gateway, RetryQueue
from repro.gateway.kpi import KpiFeed
from repro.gateway.load import LoadConfig, LoadGenerator
from repro.gateway.server import KpiServer
from repro.resilience.audit import AuditReport, audit_run
from repro.resilience.chaos import (
    COORDINATION_FAULT_KINDS,
    CORE_FAULT_KINDS,
    FAULT_KINDS,
    ChaosSchedule,
    run_gateway_chaos,
)
from repro.resilience.elastic import SupervisedElasticCluster


def run_chaos(seed, schedule=None, tmp_path=None, **kwargs):
    kwargs.setdefault("n_jobs", 96)
    return run_gateway_chaos(
        seed=seed,
        schedule=schedule,
        workdir=None if tmp_path is None else str(tmp_path),
        **kwargs,
    )


class TestKindSplit:
    def test_kind_families_are_disjoint_and_complete(self):
        assert set(CORE_FAULT_KINDS) | set(COORDINATION_FAULT_KINDS) == set(
            FAULT_KINDS
        )
        assert not set(CORE_FAULT_KINDS) & set(COORDINATION_FAULT_KINDS)
        for kind in (
            "steal-interrupt",
            "scale-during-crash",
            "ledger-partition",
            "tick-stall",
        ):
            assert kind in COORDINATION_FAULT_KINDS


class TestRunGatewayChaos:
    def test_seeded_run_audits_clean_and_repeats_bit_identical(
        self, tmp_path
    ):
        a = run_chaos(3, tmp_path=tmp_path / "a")
        b = run_chaos(3, tmp_path=tmp_path / "b")
        assert a.ok and a.audit.ok
        assert a.faults_fired >= 1
        assert a.schedule == b.schedule
        assert a.chaos_fingerprint == b.chaos_fingerprint
        assert a.clean_fingerprint == b.clean_fingerprint
        assert a.chaos_profit == b.chaos_profit

    def test_steal_interrupt_schedule_settles_exactly_once(self, tmp_path):
        report = run_chaos(
            5,
            schedule=ChaosSchedule.parse(
                "ledger-partition:2:120,steal-interrupt:0:340,crash:1:420"
            ),
            tmp_path=tmp_path,
            n_jobs=120,
        )
        assert report.ok, [str(v) for v in report.audit.violations]
        assert report.faults_fired == 3
        txns = report.audit.to_dict()
        assert txns["ok"] is True

    def test_report_to_dict_carries_nested_audit(self, tmp_path):
        report = run_chaos(4, tmp_path=tmp_path)
        data = report.to_dict()
        assert data["ok"] == report.ok
        assert data["schedule"] == report.schedule
        assert data["audit"]["submitted"] == report.audit.submitted
        assert "profit_ratio" in data
        json.dumps(data)  # the CI artifact must be JSON-clean


class TestSupervisorAutoscaleRace:
    """A shard restart racing an elastic resize, in both orders.

    Either interleaving -- crash before the resize tick, or a fused
    scale-during-crash event followed by a plain crash -- must leave
    the books balanced and repeat bit-identically under the same seed.
    """

    @pytest.mark.parametrize(
        "schedule",
        [
            "crash:1:180,scale-during-crash:0:320",
            "scale-during-crash:0:180,crash:1:320",
        ],
    )
    def test_both_orderings_audit_clean_and_repeat(self, schedule, tmp_path):
        parsed = ChaosSchedule.parse(schedule)
        a = run_chaos(13, schedule=parsed, tmp_path=tmp_path / "a")
        b = run_chaos(13, schedule=parsed, tmp_path=tmp_path / "b")
        assert a.ok, [str(v) for v in a.audit.violations]
        assert a.faults_fired == 2
        assert a.chaos_fingerprint == b.chaos_fingerprint
        assert a.recoveries == b.recoveries
        assert a.supervision_events == b.supervision_events


class TestFaultFreeIdentity:
    def test_supervision_and_retry_do_not_change_clean_runs(self):
        """The whole resilience stack -- supervisor, WAL-logged steals,
        retry queue -- must be invisible on a fault-free gateway run:
        same fingerprint as the plain elastic cluster."""

        def run(make_cluster, retry=False):
            cluster = make_cluster(
                ShardConfig(
                    m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0}
                )
            )
            gw = Gateway(
                cluster,
                LoadGenerator(LoadConfig(n_jobs=96, m=8, seed=42, load=1.5)),
                clock=VirtualClock(),
                steps_per_tick=20,
                buffer_capacity=512,
                autoscaler=Autoscaler(k_min=1, k_max=4),
                retry=RetryQueue(seed=42) if retry else None,
            )
            return gw.run().fingerprint()

        plain = run(
            lambda cfg: ElasticCluster(8, 4, config=cfg, router="least-loaded")
        )
        supervised = run(
            lambda cfg: SupervisedElasticCluster(
                8, 4, config=cfg, router="least-loaded"
            )
        )
        with_retry = run(
            lambda cfg: SupervisedElasticCluster(
                8, 4, config=cfg, router="least-loaded"
            ),
            retry=True,
        )
        assert plain == supervised == with_retry


class TestHealthzDegraded:
    def test_healthz_reports_degraded_shards_and_rung(self):
        feed = KpiFeed()
        feed.publish(
            {"tick": 1, "degraded_shards": 0, "degradation": "normal"}
        )
        feed.publish(
            {"tick": 2, "degraded_shards": 2, "degradation": "shed-low-density"}
        )
        with KpiServer(feed) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=5
            )
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
        assert health["ok"] is True
        assert health["degraded_shards"] == 2
        assert health["degradation"] == "shed-low-density"

    def test_healthz_defaults_before_first_snapshot(self):
        with KpiServer(KpiFeed()) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=5
            )
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
        assert health["degraded_shards"] == 0
        assert health["degradation"] == "normal"


def fake_cluster_result(records_by_shard, shed_by_shard=None, extra=None):
    shed_by_shard = shed_by_shard or [[] for _ in records_by_shard]
    return SimpleNamespace(
        shard_results=[
            SimpleNamespace(
                result=SimpleNamespace(records=records), shed=shed
            )
            for records, shed in zip(records_by_shard, shed_by_shard)
        ],
        extra=extra or {},
        total_profit=sum(
            getattr(rec, "profit", 1.0)
            for records in records_by_shard
            for rec in records.values()
            if rec.completed
        ),
    )


def rec(completed=True, profit=1.0):
    return SimpleNamespace(
        completed=completed, expired=not completed, profit=profit
    )


class TestAuditUnit:
    def test_clean_books_pass(self):
        result = fake_cluster_result([{1: rec(), 2: rec(False)}, {3: rec()}])
        report = audit_run(result, [1, 2, 3])
        assert report.ok
        assert report.completed == 2 and report.expired == 1

    def test_lost_job_is_a_conservation_violation(self):
        report = audit_run(fake_cluster_result([{1: rec()}]), [1, 2])
        assert [v.invariant for v in report.violations] == ["conservation"]
        assert report.violations[0].job_id == 2

    def test_duplicate_is_conservation_and_exactly_once(self):
        result = fake_cluster_result([{1: rec()}, {1: rec()}])
        report = audit_run(result, [1])
        kinds = sorted(v.invariant for v in report.violations)
        assert kinds == ["conservation", "exactly-once"]

    def test_unsettled_txn_flagged(self):
        result = fake_cluster_result(
            [{1: rec()}], extra={"steal_txns": {"transfer": 1}}
        )
        report = audit_run(result, [1])
        assert [v.invariant for v in report.violations] == ["txn-settled"]

    def test_profit_floor_gates_against_baseline(self):
        result = fake_cluster_result([{1: rec(profit=1.0)}])
        bad = audit_run(result, [1], baseline_profit=2.0, profit_floor=0.7)
        assert [v.invariant for v in bad.violations] == ["profit-floor"]
        good = audit_run(result, [1], baseline_profit=2.0, profit_floor=0.5)
        assert good.ok
        assert good.profit_ratio == pytest.approx(0.5)

    def test_report_write_roundtrip(self, tmp_path):
        report = audit_run(fake_cluster_result([{1: rec()}]), [1])
        path = tmp_path / "audit.json"
        report.write(str(path))
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["invariants"][0] == "conservation"
        assert isinstance(report, AuditReport)
