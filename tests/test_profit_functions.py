"""Unit tests for repro.profit."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.profit import (
    FlatThenExponential,
    FlatThenLinear,
    Staircase,
    StepProfit,
    check_flat_until,
    check_non_increasing,
    check_theorem3_assumption,
    from_deadline,
    validate_profit_function,
)


class TestStepProfit:
    def test_values(self):
        fn = StepProfit(3.0, 10.0)
        assert fn(0) == 3.0
        assert fn(10.0) == 3.0
        assert fn(10.0001) == 0.0

    def test_horizon(self):
        fn = StepProfit(3.0, 10.0)
        assert fn.horizon(0.0) == 11.0
        assert fn.horizon(5.0) == 0.0  # already below threshold

    def test_from_deadline(self):
        fn = from_deadline(2.0, 8)
        assert isinstance(fn, StepProfit)
        assert fn(8) == 2.0
        assert fn(9) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StepProfit(-1.0, 5.0)
        with pytest.raises(ValueError):
            StepProfit(1.0, -5.0)


class TestFlatThenLinear:
    def test_values(self):
        fn = FlatThenLinear(2.0, 4.0, decay_span=8.0)
        assert fn(4.0) == 2.0
        assert fn(8.0) == pytest.approx(1.0)
        assert fn(12.0) == 0.0
        assert fn(100.0) == 0.0

    def test_horizon(self):
        fn = FlatThenLinear(2.0, 4.0, decay_span=8.0)
        assert fn.horizon(0.0) == 12.0
        assert fn.horizon(1.0) == pytest.approx(8.0)

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            FlatThenLinear(1.0, 1.0, decay_span=0.0)


class TestFlatThenExponential:
    def test_values(self):
        fn = FlatThenExponential(1.0, 2.0, tau=3.0)
        assert fn(2.0) == 1.0
        assert fn(5.0) == pytest.approx(math.exp(-1.0))

    def test_never_zero(self):
        fn = FlatThenExponential(1.0, 2.0, tau=3.0)
        assert fn(1000.0) > 0
        assert math.isinf(fn.horizon(0.0))

    def test_horizon_threshold(self):
        fn = FlatThenExponential(1.0, 2.0, tau=3.0)
        t = fn.horizon(0.5)
        assert fn(t) == pytest.approx(0.5)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            FlatThenExponential(1.0, 1.0, tau=-1.0)


class TestStaircase:
    def test_values(self):
        fn = Staircase(3.0, [(4.0, 2.0), (8.0, 1.0), (12.0, 0.0)])
        assert fn(4.0) == 3.0
        assert fn(4.5) == 2.0
        assert fn(8.0) == 2.0
        assert fn(8.5) == 1.0
        assert fn(12.5) == 0.0

    def test_x_star_is_first_breakpoint(self):
        fn = Staircase(3.0, [(4.0, 2.0)])
        assert fn.x_star == 4.0

    def test_horizon(self):
        fn = Staircase(3.0, [(4.0, 2.0), (8.0, 0.0)])
        assert fn.horizon(0.0) == 9.0
        assert fn.horizon(2.5) == 5.0

    def test_rejects_increasing_levels(self):
        with pytest.raises(ValueError):
            Staircase(1.0, [(4.0, 2.0)])
        with pytest.raises(ValueError):
            Staircase(3.0, [(4.0, 1.0), (8.0, 2.0)])

    def test_rejects_unordered_times(self):
        with pytest.raises(ValueError):
            Staircase(3.0, [(8.0, 2.0), (4.0, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Staircase(3.0, [])


ALL_FNS = [
    StepProfit(2.0, 10.0),
    FlatThenLinear(2.0, 10.0, decay_span=5.0),
    FlatThenExponential(2.0, 10.0, tau=4.0),
    Staircase(2.0, [(10.0, 1.0), (20.0, 0.0)]),
]


class TestValidation:
    @pytest.mark.parametrize("fn", ALL_FNS, ids=lambda f: type(f).__name__)
    def test_all_functions_valid(self, fn):
        assert validate_profit_function(fn) == []

    @pytest.mark.parametrize("fn", ALL_FNS, ids=lambda f: type(f).__name__)
    def test_non_increasing(self, fn):
        assert check_non_increasing(fn, 60.0)

    @pytest.mark.parametrize("fn", ALL_FNS, ids=lambda f: type(f).__name__)
    def test_flat_until_knee(self, fn):
        assert check_flat_until(fn, fn.x_star)

    def test_increasing_function_caught(self):
        class Bad:
            peak = 1.0
            x_star = 5.0

            def __call__(self, t):
                return t  # increasing!

            def horizon(self, threshold=0.0):
                return math.inf

        assert not check_non_increasing(Bad(), 10.0)
        assert "increases" in " ".join(validate_profit_function(Bad(), 10.0))

    def test_theorem3_assumption(self):
        # W=16, L=2, m=4 -> bound = 5.5; (1+1)*5.5 = 11
        good = StepProfit(1.0, 11.0)
        bad = StepProfit(1.0, 10.0)
        assert check_theorem3_assumption(good, 16.0, 2.0, 4, 1.0)
        assert not check_theorem3_assumption(bad, 16.0, 2.0, 4, 1.0)


@given(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.1, max_value=50.0),
    st.lists(st.floats(min_value=0.0, max_value=200.0), min_size=2, max_size=20),
)
def test_property_non_increasing_linear(peak, x_star, span, times):
    fn = FlatThenLinear(peak, x_star, span)
    ordered = sorted(times)
    values = [fn(t) for t in ordered]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    assert all(v >= 0 for v in values)
