"""Numpy edge cases for the array engine's struct-of-arrays arena.

The arena's bit-identity contract (see ``repro.sim.array_engine``)
leans on specific float64 facts; this file stresses the places where
they could plausibly break:

* **empty and degenerate arenas** -- empty workloads, schedulers that
  allocate nothing, and *explicit zero allocations* (a job keyed in
  the dict with 0 processors holds no segment but once held one: a
  regression pin for the stale-entry removal gate);
* **reduction order** -- profit sums and ``done_work`` accumulate in
  the event engine's exact per-node order, not in a vectorized
  reduction, so decimal-unrepresentable values (0.1-like) must agree
  bit-for-bit across backends and across batch/stream chunk splits;
* **large magnitudes** -- node works near 2**50 and wide ``k * dt``
  processor-step products stay below 2**53 where float64 arithmetic
  on integers is exact; nothing overflows into inf (the arena uses
  +inf as its pad/retired marker, so a finite value overflowing to
  inf would silently vanish from the completion scan).
"""

from __future__ import annotations

import math
from dataclasses import asdict

from repro.core import SNSScheduler
from repro.dag import DAGStructure
from repro.sim import SchedulerBase, make_engine
from repro.sim.jobs import JobSpec
from repro.workloads import WorkloadConfig, generate_workload

BACKENDS = ("legacy", "event", "array")


def observables(result):
    return (
        {
            jid: (
                rec.arrival,
                rec.deadline,
                rec.completion_time,
                rec.profit,
                rec.processor_steps,
                rec.expired,
                rec.abandoned,
                rec.assigned_deadline,
            )
            for jid, rec in result.records.items()
        },
        asdict(result.counters),
        result.end_time,
        result.total_profit,
    )


def chain_spec(job_id, works, profit=1.0, arrival=0, deadline=10**9):
    edges = [(i, i + 1) for i in range(len(works) - 1)]
    return JobSpec(
        job_id=job_id,
        structure=DAGStructure([float(w) for w in works], edges, name="chain"),
        arrival=arrival,
        profit=profit,
        deadline=deadline,
    )


def wide_spec(job_id, works, profit=1.0, arrival=0, deadline=10**9):
    """Independent nodes: maximally parallel."""
    return JobSpec(
        job_id=job_id,
        structure=DAGStructure([float(w) for w in works], [], name="wide"),
        arrival=arrival,
        profit=profit,
        deadline=deadline,
    )


def run_all_backends(specs, m, scheduler_factory, **kw):
    return {
        backend: observables(
            make_engine(backend, m=m, scheduler=scheduler_factory(), **kw).run(
                specs
            )
        )
        for backend in BACKENDS
    }


def assert_backends_agree(specs, m, scheduler_factory, **kw):
    results = run_all_backends(specs, m, scheduler_factory, **kw)
    assert results["array"] == results["event"]
    assert results["legacy"] == results["event"]


class StarveScheduler(SchedulerBase):
    """Allocates nothing, ever: the arena must stay empty and the
    engine must abandon cleanly."""

    def allocate(self, t):
        return {}

    def snapshot_state(self):
        return {}

    def restore_state(self, data, views):
        return None


class ZeroKeyScheduler(SchedulerBase):
    """Round-robins one processor, keeping *every* live job keyed in
    the allocation dict -- benched jobs explicitly at 0.

    Regression pin: the array engine's removal gate must count jobs
    with k > 0, not dict entries; an explicit 0 once left a stale
    arena segment live, double-processing its completed nodes.
    """

    def __init__(self) -> None:
        self.live: list[int] = []
        self.turn = 0

    def on_arrival(self, job, t):
        self.live.append(job.job_id)

    def on_completion(self, job, t):
        self.live.remove(job.job_id)

    def on_expiry(self, job, t):
        self.live.remove(job.job_id)

    def allocate(self, t):
        if not self.live:
            return {}
        self.turn += 1
        chosen = self.live[self.turn % len(self.live)]
        return {job_id: (1 if job_id == chosen else 0) for job_id in self.live}


class TestEmptyAndDegenerate:
    def test_empty_workload(self):
        for backend in BACKENDS:
            result = make_engine(
                backend, m=4, scheduler=SNSScheduler(epsilon=1.0)
            ).run([])
            assert result.records == {}
            assert result.total_profit == 0.0

    def test_starved_arena_never_populates(self):
        specs = [chain_spec(j, [3, 2], deadline=50) for j in range(4)]
        assert_backends_agree(specs, 4, StarveScheduler)

    def test_explicit_zero_allocations(self):
        # chains long enough that jobs are benched (k=0, entry keyed)
        # and re-picked across many completions
        specs = [chain_spec(j, [2] * 6) for j in range(5)]
        assert_backends_agree(specs, 4, ZeroKeyScheduler)

    def test_single_node_single_processor(self):
        specs = [wide_spec(0, [1])]
        assert_backends_agree(specs, 1, lambda: SNSScheduler(epsilon=1.0))


class TestReductionOrderDeterminism:
    def test_profit_sum_bitwise_across_backends(self):
        # 0.1 is not representable in binary; a different summation
        # order (e.g. a numpy reduction) would change the low bits
        profits = [0.1, 0.2, 0.3, 0.7, 1.1, 0.1, 0.3]
        specs = [
            wide_spec(j, [1, 1], profit=p, arrival=j)
            for j, p in enumerate(profits)
        ]
        results = run_all_backends(specs, 4, lambda: SNSScheduler(epsilon=1.0))
        assert results["array"] == results["event"] == results["legacy"]
        # and these values really do expose summation differences: the
        # naive left-to-right sum disagrees with the exact (fsum) one
        assert sum(profits) != math.fsum(profits)

    def test_fractional_works_batch_equals_stream(self):
        # chunk boundaries differ between batch and stream; remaining
        # work drains through the same subtraction sequence regardless
        specs = [
            chain_spec(j, [0.1, 0.3, 0.7], arrival=j, deadline=200)
            for j in range(6)
        ]
        sim = make_engine("array", m=2, scheduler=SNSScheduler(epsilon=1.0))
        batch = sim.run(specs)
        sim2 = make_engine("array", m=2, scheduler=SNSScheduler(epsilon=1.0))
        sim2.start()
        for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
            sim2.submit(spec, t=spec.arrival)
        stream = sim2.finish()
        assert observables(batch)[0] == observables(stream)[0]
        assert batch.total_profit == stream.total_profit

    def test_done_work_order_under_simultaneous_completions(self):
        # equal works across parallel chains complete whole bands at
        # once; done_work accumulates per node in pick order, which a
        # segment-order bug would permute
        works = [0.1] * 8
        specs = [wide_spec(j, works, profit=0.1) for j in range(3)]
        assert_backends_agree(specs, 8, lambda: SNSScheduler(epsilon=1.0))


class TestLargeMagnitudes:
    def test_huge_works_stay_exact(self):
        big = float(2**50)
        specs = [
            wide_spec(0, [big, big - 1, big + 1024], deadline=2**53),
            chain_spec(1, [big / 2, big / 4], deadline=2**53),
        ]
        results = run_all_backends(
            specs, 4, lambda: SNSScheduler(epsilon=1.0)
        )
        assert results["array"] == results["event"] == results["legacy"]
        records = results["array"][0]
        # processor-steps landed finite and exact (k * dt products are
        # integers below 2**53, where float64 arithmetic is exact)
        for rec in records.values():
            assert rec[4] == int(rec[4])

    def test_wide_k_times_dt_products(self):
        # 64 processors x ~2**45-step chunks: allocated/busy-step
        # counters and psteps reach ~2**51 without losing integrality
        big = float(2**45)
        specs = [wide_spec(j, [big] * 32, deadline=2**53) for j in range(2)]
        results = run_all_backends(
            specs, 64, lambda: SNSScheduler(epsilon=1.0)
        )
        assert results["array"] == results["event"] == results["legacy"]
        counters = results["array"][1]
        assert counters["busy_steps"] == int(counters["busy_steps"])
        assert counters["busy_steps"] > 0

    def test_mixed_magnitudes_with_expiry(self):
        # a tiny job next to a huge one: the arena-wide minimum must
        # stay exact while values 2**40 apart share the vector
        specs = [
            wide_spec(0, [float(2**40)] * 4, deadline=2**42),
            chain_spec(1, [1.0, 2.0], deadline=10),
            wide_spec(2, [0.5] * 3, deadline=2**42),
        ]
        assert_backends_agree(specs, 4, lambda: SNSScheduler(epsilon=1.0))

    def test_generated_workload_large_scale_spot(self):
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=20, m=8, load=3.0, family="fork_join", epsilon=1.0,
                seed=123,
            )
        )
        assert_backends_agree(specs, 8, lambda: SNSScheduler(epsilon=1.0))
