"""Unit tests for repro.dag.validate."""

import pytest

from repro.dag import DAGJob, chain, validate_structure
from repro.dag.node import (
    ALLOWED_TRANSITIONS,
    NodeState,
    is_allowed_transition,
)
from repro.dag.validate import ValidationError, validate_job_state


class TestNodeState:
    def test_terminal(self):
        assert NodeState.DONE.is_terminal()
        assert not NodeState.READY.is_terminal()

    def test_executable(self):
        assert NodeState.READY.is_executable()
        assert NodeState.RUNNING.is_executable()
        assert not NodeState.PENDING.is_executable()
        assert not NodeState.DONE.is_executable()

    def test_allowed_transitions(self):
        assert is_allowed_transition(NodeState.PENDING, NodeState.READY)
        assert is_allowed_transition(NodeState.RUNNING, NodeState.READY)
        assert not is_allowed_transition(NodeState.DONE, NodeState.READY)
        assert not is_allowed_transition(NodeState.PENDING, NodeState.DONE)

    def test_transition_table_size(self):
        assert len(ALLOWED_TRANSITIONS) == 4


class TestValidateStructure:
    def test_good_structures_pass(self, diamond):
        validate_structure(diamond)
        validate_structure(chain(10))


class TestValidateJobState:
    def test_fresh_job_valid(self, diamond):
        validate_job_state(DAGJob(diamond))

    def test_mid_execution_valid(self, diamond):
        job = DAGJob(diamond)
        job.mark_running([0])
        job.process(0, 1.0)
        job.mark_running([1])
        validate_job_state(job)

    def test_corrupted_ready_set_detected(self, diamond):
        job = DAGJob(diamond)
        job._ready[3] = None  # 3's predecessors are not done
        with pytest.raises(ValidationError):
            validate_job_state(job)

    def test_corrupted_state_detected(self, diamond):
        job = DAGJob(diamond)
        job._state[3] = NodeState.READY  # not in ready set, preds unfinished
        with pytest.raises(ValidationError):
            validate_job_state(job)

    def test_corrupted_counter_detected(self, diamond):
        job = DAGJob(diamond)
        job._done_count = 2
        with pytest.raises(ValidationError):
            validate_job_state(job)

    def test_remaining_work_mismatch_detected(self, diamond):
        job = DAGJob(diamond)
        job._remaining[0] = 0.0  # zero remaining but not DONE
        with pytest.raises(ValidationError):
            validate_job_state(job)
