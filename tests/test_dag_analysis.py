"""Unit tests for repro.dag.analysis."""

import numpy as np
import pytest

from repro.dag import block, chain, fork_join
from repro.dag.analysis import (
    node_depths,
    profile,
    width_profile,
    work_parallelism_profile,
)


class TestDepthsAndWidths:
    def test_chain_depths(self):
        depths = node_depths(chain(4))
        assert list(depths) == [0, 1, 2, 3]

    def test_block_all_depth_zero(self):
        assert list(node_depths(block(5))) == [0] * 5

    def test_diamond_depths(self, diamond):
        assert list(node_depths(diamond)) == [0, 1, 1, 2]

    def test_width_profile_chain(self):
        assert list(width_profile(chain(4))) == [1, 1, 1, 1]

    def test_width_profile_fork_join(self):
        assert list(width_profile(fork_join(5))) == [1, 5, 1]


class TestWorkProfile:
    def test_conserves_total_work(self, diamond):
        prof = work_parallelism_profile(diamond, bins=8)
        assert prof.sum() == pytest.approx(diamond.total_work)

    def test_block_front_loaded(self):
        prof = work_parallelism_profile(block(8), bins=4)
        assert prof[0] == 8.0
        assert prof[1:].sum() == 0.0

    def test_chain_spread(self):
        prof = work_parallelism_profile(chain(8), bins=8)
        assert np.all(prof == 1.0)


class TestProfile:
    def test_fork_join_profile(self):
        p = profile(fork_join(6, node_work=2.0, fork_work=1.0, join_work=1.0))
        assert p.num_nodes == 8
        assert p.depth == 3
        assert p.max_width == 6
        assert p.max_out_degree == 6
        assert p.max_in_degree == 6
        assert p.span == 4.0

    def test_as_row_lengths(self, diamond):
        row = profile(diamond).as_row()
        assert len(row) == 8

    def test_average_parallelism(self):
        p = profile(block(16))
        assert p.average_parallelism == 16.0
