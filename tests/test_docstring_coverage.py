"""Quality gate: every public item in the library carries a docstring.

"Public" = importable from a `repro.*` module without a leading
underscore.  Keeps the documentation deliverable from rotting.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    missing: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            missing.append(name)
            continue
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(meth):
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module.__name__}: undocumented public items {missing}"
