"""Unit tests for repro.dag.serialize."""

import json

import pytest

from repro.dag import (
    structure_from_dict,
    structure_from_json,
    structure_to_dict,
    structure_to_dot,
    structure_to_json,
)


class TestDictRoundTrip:
    def test_round_trip(self, diamond):
        data = structure_to_dict(diamond)
        back = structure_from_dict(data)
        assert back == diamond
        assert back.name == diamond.name

    def test_dict_is_json_compatible(self, diamond):
        data = structure_to_dict(diamond)
        json.dumps(data)  # must not raise

    def test_version_field(self, diamond):
        assert structure_to_dict(diamond)["version"] == 1

    def test_unknown_version_rejected(self, diamond):
        data = structure_to_dict(diamond)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            structure_from_dict(data)

    def test_missing_edges_defaults_empty(self):
        back = structure_from_dict({"version": 1, "work": [1.0, 2.0]})
        assert back.num_edges == 0


class TestJsonRoundTrip:
    def test_round_trip(self, diamond):
        text = structure_to_json(diamond, indent=2)
        back = structure_from_json(text)
        assert back == diamond

    def test_compact(self, diamond):
        text = structure_to_json(diamond)
        assert "\n" not in text


class TestDot:
    def test_dot_contains_nodes_and_edges(self, diamond):
        dot = structure_to_dot(diamond)
        assert dot.startswith('digraph "diamond"')
        assert "n0 -> n1;" in dot
        assert 'n2 [label="2 (3)"];' in dot
        assert dot.rstrip().endswith("}")
