"""Unit tests for repro.sim.jobs: specs, views, records."""

import math

import pytest

from repro.dag import chain, block
from repro.profit import StepProfit
from repro.sim import JobSpec
from repro.sim.jobs import ActiveJob, CompletionRecord


class TestJobSpec:
    def test_deadline_job(self):
        spec = JobSpec(1, chain(4), arrival=2, deadline=10, profit=3.0)
        assert spec.relative_deadline == 8
        assert spec.work == 4.0
        assert spec.span == 4.0

    def test_profit_fn_job(self):
        fn = StepProfit(2.0, 16.0)
        spec = JobSpec(1, chain(4), arrival=0, profit_fn=fn)
        assert spec.relative_deadline is None
        assert spec.profit_fn is fn

    def test_requires_deadline_or_fn(self):
        with pytest.raises(ValueError):
            JobSpec(1, chain(4), arrival=0)

    def test_deadline_and_fn_exclusive(self):
        with pytest.raises(ValueError):
            JobSpec(1, chain(4), arrival=0, deadline=10, profit_fn=StepProfit(1, 5))

    def test_deadline_after_arrival(self):
        with pytest.raises(ValueError):
            JobSpec(1, chain(4), arrival=5, deadline=5)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(1, chain(4), arrival=-1, deadline=4)

    def test_negative_profit_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(1, chain(4), arrival=0, deadline=4, profit=-1.0)

    def test_min_execution_time(self):
        spec = JobSpec(0, block(8, node_work=2.0), arrival=0, deadline=100)
        # W=16, L=2, m=4 -> max(2, 4) = 4
        assert spec.min_execution_time(4) == 4.0
        assert spec.min_execution_time(16) == 2.0

    def test_sequential_bound(self):
        spec = JobSpec(0, block(8, node_work=2.0), arrival=0, deadline=100)
        # (16-2)/4 + 2 = 5.5
        assert spec.sequential_bound(4) == pytest.approx(5.5)

    def test_profit_at_deadline_job(self):
        spec = JobSpec(0, chain(2), arrival=0, deadline=10, profit=5.0)
        assert spec.profit_at(10) == 5.0
        assert spec.profit_at(11) == 0.0

    def test_profit_at_fn_job(self):
        spec = JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(5.0, 10.0))
        assert spec.profit_at(10) == 5.0
        assert spec.profit_at(10.5) == 0.0


class TestJobView:
    def test_exposes_only_permitted_data(self):
        spec = JobSpec(3, chain(4), arrival=1, deadline=9, profit=2.0)
        view = ActiveJob(spec).view
        assert view.job_id == 3
        assert view.arrival == 1
        assert view.deadline == 9
        assert view.relative_deadline == 8
        assert view.profit == 2.0
        assert view.work == 4.0
        assert view.span == 4.0
        assert view.num_ready == 1
        assert not view.is_complete

    def test_no_dag_topology_access(self):
        view = ActiveJob(JobSpec(0, chain(4), arrival=0, deadline=9)).view
        assert not hasattr(view, "dag")
        assert not hasattr(view, "structure")
        assert not hasattr(view, "ready_nodes")

    def test_slack_factor(self):
        spec = JobSpec(0, block(8, node_work=2.0), arrival=0, deadline=11)
        view = ActiveJob(spec).view
        assert view.slack_factor(4) == pytest.approx(11 / 5.5)

    def test_slack_factor_no_deadline(self):
        spec = JobSpec(0, chain(4), arrival=0, profit_fn=StepProfit(1, 20))
        assert ActiveJob(spec).view.slack_factor(4) == math.inf

    def test_work_completed_tracks_progress(self):
        job = ActiveJob(JobSpec(0, chain(4), arrival=0, deadline=9))
        assert job.view.work_completed == 0.0
        job.dag.mark_running([0])
        job.dag.process(0, 1.0)
        assert job.view.work_completed == pytest.approx(1.0)


class TestActiveJob:
    def test_effective_deadline_prefers_spec(self):
        job = ActiveJob(JobSpec(0, chain(2), arrival=0, deadline=7))
        job.assigned_deadline = 5
        assert job.effective_deadline() == 7

    def test_effective_deadline_assigned(self):
        job = ActiveJob(JobSpec(0, chain(2), arrival=0, profit_fn=StepProfit(1, 9)))
        assert job.effective_deadline() is None
        job.assigned_deadline = 5
        assert job.effective_deadline() == 5

    def test_liveness(self):
        job = ActiveJob(JobSpec(0, chain(1), arrival=0, deadline=5))
        assert job.is_live()
        job.expired = True
        assert not job.is_live()


class TestCompletionRecord:
    def test_on_time(self):
        rec = CompletionRecord(0, 0, 10, 8, profit=1.0)
        assert rec.completed
        assert rec.on_time

    def test_late_is_not_on_time(self):
        rec = CompletionRecord(0, 0, 10, 12, profit=0.0)
        assert rec.completed
        assert not rec.on_time

    def test_incomplete(self):
        rec = CompletionRecord(0, 0, 10, None, profit=0.0)
        assert not rec.completed
        assert not rec.on_time

    def test_assigned_deadline_counts(self):
        rec = CompletionRecord(
            0, 0, None, 8, profit=1.0, assigned_deadline=9
        )
        assert rec.on_time
        rec2 = CompletionRecord(
            0, 0, None, 10, profit=0.5, assigned_deadline=9
        )
        assert not rec2.on_time

    def test_no_deadline_completion_on_time(self):
        rec = CompletionRecord(0, 0, None, 50, profit=0.5)
        assert rec.on_time
