"""Micro-benchmarks of the analysis toolchain (bounds, search, report)."""

import pytest

from repro.analysis import (
    interval_milp_upper_bound,
    randomized_offline_search,
    scheduler_report,
)
from repro.baselines import GlobalEDF
from repro.core import SNSScheduler
from repro.workloads import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def specs():
    return generate_workload(
        WorkloadConfig(n_jobs=40, m=8, load=2.0, epsilon=1.0, seed=3)
    )


@pytest.mark.benchmark(group="micro")
def test_micro_milp_bound(benchmark, specs):
    bound = benchmark(lambda: interval_milp_upper_bound(specs, 8))
    assert bound > 0


@pytest.mark.benchmark(group="micro")
def test_micro_offline_search(benchmark, specs):
    result = benchmark(
        lambda: randomized_offline_search(specs, 8, restarts=8, rng=0)
    )
    assert result.profit > 0


@pytest.mark.benchmark(group="micro")
def test_micro_scheduler_report(benchmark, specs):
    text = benchmark(
        lambda: scheduler_report(
            specs,
            8,
            {"S": lambda: SNSScheduler(epsilon=1.0), "EDF": GlobalEDF},
            bound_method="feasible",
        )
    )
    assert "Comparison" in text
