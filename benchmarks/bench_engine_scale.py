"""Benchmark E11 + micro-benchmarks of the substrate hot paths."""

import numpy as np
import pytest

from repro.core import Constants, DensityBands, SNSScheduler
from repro.dag import DAGJob, block_with_chain
from repro.experiments.e11_engine import run
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


@pytest.mark.benchmark(group="experiments")
def test_e11_engine_scale(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        assert row[5] > 100  # at least 100 simulated steps per second


@pytest.mark.benchmark(group="micro")
def test_micro_simulation_run(benchmark):
    specs = generate_workload(
        WorkloadConfig(n_jobs=60, m=8, load=2.0, epsilon=1.0, seed=0)
    )

    def go():
        return Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(
            list(specs)
        )

    result = benchmark(go)
    assert result.num_jobs == 60


@pytest.mark.benchmark(group="micro")
def test_micro_dag_unfold(benchmark):
    dag = block_with_chain(4096.0, 8)

    def go():
        job = DAGJob(dag)
        while not job.is_complete():
            ready = job.ready_nodes()[:8]
            job.mark_running(ready)
            for node in ready:
                job.process(node, 1.0)
        return job

    job = benchmark(go)
    assert job.is_complete()


@pytest.mark.benchmark(group="micro")
def test_micro_band_admission(benchmark):
    consts = Constants.from_epsilon(1.0)
    rng = np.random.default_rng(0)
    densities = rng.uniform(0.01, 10.0, size=200)
    allotments = rng.integers(1, 4, size=200)

    def go():
        bands = DensityBands()
        admitted = 0
        for i, (v, n) in enumerate(zip(densities, allotments)):
            if bands.can_insert(float(v), int(n), consts.c, 0.87 * 64):
                bands.insert(i, float(v), int(n))
                admitted += 1
        return admitted

    admitted = benchmark(go)
    assert admitted > 0


@pytest.mark.benchmark(group="micro")
def test_micro_lp_bound(benchmark):
    from repro.analysis import interval_lp_upper_bound

    specs = generate_workload(
        WorkloadConfig(n_jobs=40, m=8, load=2.0, epsilon=1.0, seed=1)
    )
    bound = benchmark(lambda: interval_lp_upper_bound(specs, 8))
    assert bound > 0


@pytest.mark.benchmark(group="micro")
def test_micro_workload_generation(benchmark):
    def go():
        return generate_workload(
            WorkloadConfig(n_jobs=100, m=8, load=2.0, epsilon=1.0, seed=2)
        )

    specs = benchmark(go)
    assert len(specs) == 100
