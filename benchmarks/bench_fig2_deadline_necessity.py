"""Benchmark E2: regenerate the Figure 2 deadline-necessity table."""

import pytest

from repro.experiments.e02_fig2 import run


@pytest.mark.benchmark(group="experiments")
def test_e02_fig2_deadline_necessity(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    ratios = [row[5] for row in result.rows]
    assert ratios == sorted(ratios)  # approaches the bound monotonically
    assert ratios[-1] >= 0.95
    # below the bound, nobody meets the deadline once nodes are small
    assert result.rows[-1][7] == "no"
