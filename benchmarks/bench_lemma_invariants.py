"""Benchmark E8: regenerate the lemma-invariant verification table."""

import pytest

from repro.experiments.e08_invariants import run


@pytest.mark.benchmark(group="experiments")
def test_e08_lemma_invariants(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        assert row[3] == 0, f"lemma violations at eps={row[0]} seed={row[1]}"
        assert row[4] == 0, "assumption should hold on slack workloads"
        assert row[5] == 0, "post-hoc verification failed"
