"""Benchmark E7: regenerate the S-vs-baselines load sweep and domino."""

import pytest

from repro.experiments.e07_baselines import run


@pytest.mark.benchmark(group="experiments")
def test_e07_baselines(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    load_rows = [r for r in result.rows if isinstance(r[0], float)]
    headers = result.headers
    s_col = headers.index("S(eps=1)")
    fifo_col = headers.index("FIFO")
    edf_col = headers.index("EDF")
    top = load_rows[-1]  # highest load
    # under heavy overload S holds a better fraction than FIFO and EDF
    assert top[s_col] > top[fifo_col]
    # and S's fraction never collapses below 20% of the bound
    assert all(r[s_col] > 0.2 for r in load_rows)
    # domino at speed 1: EDF completes ~nothing
    domino = {r[0]: (r[1], r[2]) for r in result.rows if isinstance(r[0], str)}
    assert domino["domino:EDF"][0] < 0.1
    # S at speed 2.5 (Corollary 1 regime) recovers a constant fraction
    assert domino["domino:S(eps=1)"][1] >= 0.4
