"""Benchmark E5: regenerate the Corollary 2 (1+eps)-speed table."""

import pytest

from repro.experiments.e05_cor2 import run


@pytest.mark.benchmark(group="experiments")
def test_e05_cor2_reasonable_deadlines(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    by_key = {(row[0], row[1]): row[2] for row in result.rows}
    for eps in (0.25, 0.5, 1.0):
        assert by_key[(eps, 1.0 + eps)] >= by_key[(eps, 1.0)]
    # at least one eps shows a dramatic (>3x or from-zero) recovery
    gains = [
        by_key[(eps, 1.0 + eps)] - by_key[(eps, 1.0)] for eps in (0.25, 0.5, 1.0)
    ]
    assert max(gains) > 0.1
