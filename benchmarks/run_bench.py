#!/usr/bin/env python
"""Benchmark-regression runner: emits a ``BENCH_engine.json`` snapshot.

Measures the four quantities future PRs must defend (see
docs/PERFORMANCE.md):

* ``engine_scale`` -- the three engine backends (event-driven,
  numpy-array, frozen legacy stepper) on growing SNS workloads:
  wall-clock, speedups, jobs/sec and decisions/sec, with a
  three-way bit-identity check of records/counters/profit on every
  config.  SNS churn (many tiny picks, allocation changes every
  decision) is the array backend's *worst* regime; these rows report
  it honestly rather than gating it.
* ``engine_stress`` -- the array backend's home regime: wide
  multi-chain jobs under the reservation-stable
  :class:`~repro.baselines.federated.FederatedScheduler` on a large
  machine, where decisions are cheap and chunks drain thousands of
  nodes at once.  Full mode gates the array backend at >= 5x over the
  event engine (plus bit-identity).
* ``engine_wave`` -- peak job throughput: a spread-arrival wave of
  unit-work jobs.  Full mode gates the best backend at >= 100k
  jobs/sec.  The event engine wins this row (per-job fixed costs
  dominate; the arena adds constant overhead per churned job) -- the
  array column is reported, not gated.
* ``sweep`` -- serial vs multi-worker wall-clock of a small E3-style
  grid through :func:`repro.analysis.sweep.run_sweep`, with
  cell-for-cell equality.  The worker count comes from
  :func:`repro.analysis.sweep.adaptive_workers`: on a 1-CPU host the
  section runs serial-only and *claims no parallel speedup* (the
  ``parallel_speedup`` field is ``null`` and never gates).
* ``service`` -- streaming pass-through overhead of
  :class:`repro.service.SchedulingService` relative to batch
  ``Simulator.run`` on the same workload.
* ``scenario_overhead`` -- spec-driven construction through
  :mod:`repro.scenarios` (canonical spec -> registry -> builder) vs
  hand-wiring the identical batch run on the engine acceptance config,
  gated at <= 2% wall-clock overhead and fingerprint bit-identity
  under ``--check``.

A second snapshot, ``BENCH_cluster.json``, covers the sharded cluster
(:mod:`repro.cluster`): process-mode throughput at shard counts
1/2/4/8 (the k=4 point must clear 1.5x over k=1 -- on a single-CPU
host the speedup comes from subproblem scaling, since per-decision
scheduler cost grows with the active set each shard holds), migration
on/off under a deliberately skewed router, and the wall-clock cost of
a kill-and-recover cycle with its fault-free-equality check.

A third snapshot, ``BENCH_resilience.json``, covers the supervised
cluster (:mod:`repro.resilience`): hang detection and restart latency
under heartbeat supervision, bit-identity of a seeded chaos schedule
against the fault-free run, the fraction of profit retained when
1 of 4 shards degrades out early (gated at >= 70% under ``--check``),
and the coordinated gateway chaos gates: a seeded coordination-fault
schedule must pass the invariant audit at >= 70% of fault-free profit,
and the fault-free supervised gateway must fingerprint identically to
the plain elastic one.

A fourth snapshot, ``BENCH_observability.json``, prices the tracing
layer (:mod:`repro.observability`): engine wall-clock with no recorder
at all, with the disabled :data:`~repro.observability.NULL_RECORDER`
(the always-installed fast path), and with a live
:class:`~repro.observability.TraceRecorder` plus profiler.  Under
``--check`` the disabled path must cost < 2% over no recorder and full
tracing < 10%, and all three runs must stay bit-identical.

A fifth snapshot, ``BENCH_gateway.json``, covers the real-time gateway
(:mod:`repro.gateway`) under a :class:`~repro.gateway.VirtualClock`:
open-loop Poisson load at 0.8x/1.0x/1.2x saturation against a fixed
4-shard cluster (gated at or below saturation on p99 admission latency
<= 50 steps and near-zero shed), autoscaled profit on a flash-crowd
trace vs every fixed shard count (gated at >= 95% of the best fixed k
in full mode), and fingerprint bit-identity of two repeated seeded
runs across an autoscaler up/down cycle.

Timing methodology: each timed subject runs ``repeats`` times with the
competing subjects interleaved round-robin (so machine-load drift hits
all subjects equally) and garbage collection frozen around each run;
the reported time is the best of the repeats.  Run from the repository
root::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [-o OUT.json]

``--quick`` shrinks every section to smoke-test size (seconds, for CI);
the default sizes take a few minutes.  ``--check`` additionally fails
(exit 1) if any bit-identity or equality assertion is violated, which
is how CI uses it.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import platform
import random
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.sweep import adaptive_workers, run_sweep  # noqa: E402
from repro.baselines.federated import FederatedScheduler  # noqa: E402
from repro.dag.graph import DAGStructure  # noqa: E402
from repro.cluster import (  # noqa: E402
    ClusterService,
    FaultInjector,
    QueueBalancer,
    Router,
    ShardConfig,
    coordinate,
)
from repro.core import SNSScheduler  # noqa: E402
from repro.experiments.e03_thm2 import _thm2_value  # noqa: E402
from repro.service import SchedulingService  # noqa: E402
from repro.sim import ArraySimulator, Simulator  # noqa: E402
from repro.sim._legacy_engine import LegacySimulator  # noqa: E402
from repro.sim.jobs import JobSpec  # noqa: E402
from repro.workloads import WorkloadConfig, generate_workload  # noqa: E402

#: (n_jobs, m) engine-scale configs; the last is the acceptance config.
SCALE_CONFIGS = [(50, 8), (100, 16), (200, 32), (400, 64), (800, 64)]
QUICK_SCALE_CONFIGS = [(50, 8), (100, 16)]


def _timed(fn, repeats: int) -> list[float]:
    """Wall-clock each call with GC frozen; returns all samples."""
    samples = []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        finally:
            gc.enable()
    return samples


def _interleaved(subjects: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` per subject, rounds interleaved so load
    drift during the measurement hits every subject equally."""
    samples: dict[str, list[float]] = {name: [] for name in subjects}
    for _ in range(repeats):
        for name, fn in subjects.items():
            samples[name].extend(_timed(fn, 1))
    return {name: min(vals) for name, vals in samples.items()}


def _record_tuple(rec) -> tuple:
    return (
        rec.job_id,
        rec.arrival,
        rec.deadline,
        rec.completion_time,
        rec.profit,
        rec.processor_steps,
        rec.expired,
        rec.abandoned,
        rec.assigned_deadline,
    )


def _identical(res_a, res_b) -> bool:
    """Bit-identity of the observable outputs of two runs."""
    return (
        [_record_tuple(r) for r in res_a.records.values()]
        == [_record_tuple(r) for r in res_b.records.values()]
        and asdict(res_a.counters) == asdict(res_b.counters)
        and res_a.end_time == res_b.end_time
        and res_a.total_profit == res_b.total_profit
    )


def bench_engine_scale(quick: bool, repeats: int) -> list[dict]:
    """Three-backend engine comparison on growing SNS workloads."""
    rows = []
    for n_jobs, m in QUICK_SCALE_CONFIGS if quick else SCALE_CONFIGS:
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=n_jobs,
                m=m,
                load=2.0,
                family="mixed",
                epsilon=1.0,
                seed=n_jobs,
            )
        )

        def run_event():
            return Simulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(specs)

        def run_array():
            return ArraySimulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(
                specs
            )

        def run_legacy():
            return LegacySimulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(
                specs
            )

        res_event, res_array, res_legacy = run_event(), run_array(), run_legacy()
        best = _interleaved(
            {"event": run_event, "array": run_array, "legacy": run_legacy},
            repeats,
        )
        rows.append(
            {
                "n_jobs": n_jobs,
                "m": m,
                "identical": _identical(res_event, res_legacy)
                and _identical(res_event, res_array),
                "engine_seconds": best["event"],
                "array_seconds": best["array"],
                "legacy_seconds": best["legacy"],
                "speedup": best["legacy"] / best["event"],
                "array_speedup_vs_event": best["event"] / best["array"],
                "array_speedup_vs_legacy": best["legacy"] / best["array"],
                "jobs_per_sec": n_jobs / best["event"],
                "decisions_per_sec": res_event.counters.decisions / best["event"],
                "steps_per_sec": res_event.counters.steps / best["event"],
                "total_profit": res_event.total_profit,
            }
        )
        print(
            f"engine n={n_jobs:4d} m={m:3d} "
            f"event={rows[-1]['speedup']:.2f}x vs legacy, "
            f"array={rows[-1]['array_speedup_vs_event']:.2f}x vs event "
            f"identical={rows[-1]['identical']}"
        )
    return rows


def _multichain_specs(
    n_jobs: int, width: int, length: int, wlo: int, whi: int, seed: int
) -> list[JobSpec]:
    """Wide multi-chain jobs sized so FederatedScheduler reserves
    exactly ``width`` processors each (deadline = span + W/width)."""
    rng = random.Random(seed)
    specs = []
    for j in range(n_jobs):
        works = [float(rng.randint(wlo, whi)) for _ in range(width * length)]
        edges = []
        spans = []
        for c in range(width):
            base = c * length
            edges += [(base + i, base + i + 1) for i in range(length - 1)]
            spans.append(sum(works[base : base + length]))
        total = sum(works)
        span = max(spans)
        rel = int(span + math.ceil((total - span) / width)) + 1
        specs.append(
            JobSpec(
                job_id=j,
                structure=DAGStructure(works, edges, name="multichain"),
                arrival=0,
                profit=1.0,
                deadline=rel,
            )
        )
    return specs


def bench_engine_stress(quick: bool, repeats: int) -> dict:
    """Array-backend home regime: wide jobs, stable reservations.

    :class:`FederatedScheduler` allocates from fixed reservations
    (cheap, allocation-stable decisions), so wall-clock is dominated by
    draining node work -- the part the arena vectorizes.  Full mode
    gates the array backend at >= 5x over the event engine here; the
    legacy stepper is skipped (it is another ~10x slower on this shape
    and the scale rows already pin it).
    """
    if quick:
        n_jobs, width, length, wlo, whi, m = 16, 16, 8, 100, 1000, 512
    else:
        n_jobs, width, length, wlo, whi, m = 64, 64, 8, 1000, 10000, 8192
    specs = _multichain_specs(n_jobs, width, length, wlo, whi, seed=7)

    def run_event():
        return Simulator(m=m, scheduler=FederatedScheduler()).run(specs)

    def run_array():
        return ArraySimulator(m=m, scheduler=FederatedScheduler()).run(specs)

    res_event, res_array = run_event(), run_array()
    best = _interleaved({"event": run_event, "array": run_array}, repeats)
    speedup = best["event"] / best["array"]
    row = {
        "n_jobs": n_jobs,
        "chain_width": width,
        "chain_length": length,
        "m": m,
        "nodes_total": n_jobs * width * length,
        "identical": _identical(res_event, res_array),
        "completed": sum(
            1
            for rec in res_event.records.values()
            if rec.completion_time is not None
        ),
        "event_seconds": best["event"],
        "array_seconds": best["array"],
        "array_speedup_vs_event": speedup,
        "node_completions_per_sec": n_jobs * width * length / best["array"],
        # full mode gates >= 5x; quick sizes are too small to amortize
        # the arena and only check identity
        "speedup_ok": quick or speedup >= 5.0,
    }
    print(
        f"engine-stress jobs={n_jobs} width={width} m={m}: "
        f"array {speedup:.2f}x vs event "
        f"identical={row['identical']}"
    )
    return row


def bench_engine_wave(quick: bool, repeats: int) -> dict:
    """Peak job throughput: a spread-arrival wave of unit-work jobs.

    Every engine cost here is per-job bookkeeping (arrival, one-node
    execution, completion record); full mode gates the best backend at
    >= 100k jobs/sec.  This is the array backend's worst regime -- the
    arena adds constant overhead per churned job and vectorizes
    nothing -- so its column is reported but never gated.
    """
    n_jobs = 2000 if quick else 20000
    spread = 200 if quick else 2000
    m = 64
    specs = [
        JobSpec(
            job_id=j,
            structure=DAGStructure([1.0], [], name="unit"),
            arrival=(j * spread) // n_jobs,
            profit=1.0,
            deadline=10**9,
        )
        for j in range(n_jobs)
    ]

    def run_event():
        return Simulator(m=m, scheduler=FederatedScheduler()).run(specs)

    def run_array():
        return ArraySimulator(m=m, scheduler=FederatedScheduler()).run(specs)

    res_event, res_array = run_event(), run_array()
    # extra rounds: the jobs/sec gate is an absolute number, so this row
    # deserves more samples than the relative-speedup sections
    best = _interleaved(
        {"event": run_event, "array": run_array}, max(repeats, 5)
    )
    jobs_per_sec = {name: n_jobs / seconds for name, seconds in best.items()}
    peak = max(jobs_per_sec.values())
    row = {
        "n_jobs": n_jobs,
        "m": m,
        "arrival_spread": spread,
        "identical": _identical(res_event, res_array),
        "event_seconds": best["event"],
        "array_seconds": best["array"],
        "event_jobs_per_sec": jobs_per_sec["event"],
        "array_jobs_per_sec": jobs_per_sec["array"],
        "peak_jobs_per_sec": peak,
        # full mode gates the 100k+ jobs/sec target on the best backend
        "throughput_ok": quick or peak >= 100_000.0,
    }
    print(
        f"engine-wave n={n_jobs}: event {jobs_per_sec['event'] / 1e3:.0f}k "
        f"array {jobs_per_sec['array'] / 1e3:.0f}k jobs/sec "
        f"identical={row['identical']}"
    )
    return row


def bench_sweep(quick: bool, repeats: int) -> dict:
    """Serial vs adaptive-worker wall-clock on a small Theorem-2 grid.

    The worker count comes from :func:`adaptive_workers` (capped at 2
    so the comparison stays apples-to-apples across hosts).  On a
    1-CPU host there is no fan-out to measure: the section runs the
    serial sweep only and reports ``parallel_speedup: null`` --
    claiming a parallel win the hardware cannot deliver would poison
    the snapshot.
    """
    # Full mode must be large enough that the worker-pool startup
    # (a few hundred ms to import the scientific stack twice)
    # amortizes; quick mode only checks cell-for-cell equality.
    grid = {
        "epsilon": [0.5, 1.0] if quick else [0.25, 0.5, 1.0, 2.0],
        "n_jobs": [20 if quick else 400],
        "m": [8],
        "load": [2.0],
    }
    seeds = [0, 1] if quick else [0, 1, 2, 3, 4]
    workers = adaptive_workers(max_workers=2)

    serial = run_sweep(_thm2_value, grid, seeds, workers=1)
    if workers <= 1:
        best = _interleaved(
            {"serial": lambda: run_sweep(_thm2_value, grid, seeds, workers=1)},
            repeats,
        )
        return {
            "grid_cells": len(serial),
            "seeds": len(seeds),
            "workers": 1,
            "identical": True,
            "serial_seconds": best["serial"],
            "parallel_seconds": None,
            "parallel_speedup": None,
        }

    parallel = run_sweep(_thm2_value, grid, seeds, workers=workers)
    best = _interleaved(
        {
            "serial": lambda: run_sweep(_thm2_value, grid, seeds, workers=1),
            "parallel": lambda: run_sweep(
                _thm2_value, grid, seeds, workers=workers
            ),
        },
        repeats,
    )
    return {
        "grid_cells": len(serial),
        "seeds": len(seeds),
        "workers": workers,
        "identical": serial == parallel,
        "serial_seconds": best["serial"],
        "parallel_seconds": best["parallel"],
        "parallel_speedup": best["serial"] / best["parallel"],
    }


def sweep_gate_ok(section: dict, quick: bool) -> bool:
    """Gate for the sweep section: equality always; and a *claimed*
    parallel speedup below 1.0 never passes (at full scale, where pool
    startup amortizes).  A serial-only section (1-CPU host: ``workers
    == 1``, ``parallel_speedup`` null) passes on equality alone --
    there is no parallel claim to defend."""
    if not section["identical"]:
        return False
    speedup = section.get("parallel_speedup")
    if section.get("workers", 1) <= 1 or speedup is None:
        return True
    return quick or speedup >= 1.0


def bench_service(quick: bool, repeats: int, engine: str = "event") -> dict:
    """Streaming pass-through overhead relative to batch runs.

    ``engine`` selects the service's backend (``--service-engine``);
    the batch reference always runs the event engine, so on the array
    backend the equality column doubles as a cross-backend pin.
    """
    n_jobs = 100 if quick else 400
    specs = generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=8, load=2.5, epsilon=1.0, seed=5)
    )

    def run_batch():
        return Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(list(specs))

    def run_stream():
        return SchedulingService(
            8, SNSScheduler(epsilon=1.0), engine=engine
        ).run_stream(specs)

    batch, stream = run_batch(), run_stream()
    best = _interleaved({"batch": run_batch, "stream": run_stream}, repeats)
    return {
        "n_jobs": n_jobs,
        "engine": engine,
        "identical_profit": batch.total_profit == stream.total_profit,
        "batch_seconds": best["batch"],
        "stream_seconds": best["stream"],
        "passthrough_overhead": best["stream"] / best["batch"],
    }


def bench_scenario_overhead(quick: bool, repeats: int) -> dict:
    """Spec-driven construction overhead on the engine acceptance config.

    The declarative path (parse the canonical spec, registry lookups,
    :class:`~repro.scenarios.ScenarioBuilder` assembly) must price in
    at <= 2% wall-clock over hand-wiring the identical batch run, and
    both paths must agree on the result fingerprint.  Both subjects
    include workload generation -- the builder regenerates from the
    spec's seed, so the direct subject must too.
    """
    from repro.scenarios import ScenarioBuilder, ScenarioSpec
    from repro.scenarios.builder import result_fingerprint

    n_jobs, m = (QUICK_SCALE_CONFIGS if quick else SCALE_CONFIGS)[-1]
    doc = {
        "scenario": {"mode": "batch", "seed": n_jobs},
        "workload": {
            "n_jobs": n_jobs,
            "m": m,
            "load": 2.0,
            "family": "mixed",
            "epsilon": 1.0,
        },
        "scheduler": {"name": "sns"},
    }

    def run_spec():
        return ScenarioBuilder(ScenarioSpec.from_dict(doc)).execute()

    def run_direct():
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=n_jobs,
                m=m,
                load=2.0,
                family="mixed",
                epsilon=1.0,
                seed=n_jobs,
            )
        )
        specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
        return Simulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(specs)

    res_spec, res_direct = run_spec(), run_direct()
    best = _interleaved({"spec": run_spec, "direct": run_direct}, repeats)
    slack = 0.005
    return {
        "n_jobs": n_jobs,
        "m": m,
        "identical": res_spec.fingerprint()
        == result_fingerprint("batch", res_direct),
        "direct_seconds": best["direct"],
        "spec_seconds": best["spec"],
        "construction_overhead": best["spec"] / best["direct"],
        "overhead_ok": best["spec"] <= best["direct"] * 1.02 + slack,
    }


#: Shard counts every cluster-scaling row measures.
CLUSTER_SHARD_COUNTS = [1, 2, 4, 8]


class _HotSpotRouter(Router):
    """Routes everything to shard 0 -- the migration stressor."""

    name = "hotspot"
    needs_stats = False

    def route(self, spec, stats):
        return 0


def _cluster_workload(quick: bool):
    n_jobs, m = (800, 16) if quick else (12000, 64)
    return m, generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=4.0, family="mixed", epsilon=1.0, seed=7
        )
    )


def bench_cluster_scaling(quick: bool, repeats: int) -> list[dict]:
    """Process-mode throughput at shard counts 1/2/4/8."""
    m, specs = _cluster_workload(quick)
    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    def runner(k):
        def run():
            return ClusterService(
                m, k, config=config, router="consistent-hash", mode="process"
            ).run_stream(specs)

        return run

    profits = {k: runner(k)().total_profit for k in CLUSTER_SHARD_COUNTS}
    best = _interleaved(
        {str(k): runner(k) for k in CLUSTER_SHARD_COUNTS}, repeats
    )
    rows = []
    for k in CLUSTER_SHARD_COUNTS:
        seconds = best[str(k)]
        rows.append(
            {
                "shards": k,
                "n_jobs": len(specs),
                "m": m,
                "seconds": seconds,
                "jobs_per_sec": len(specs) / seconds,
                "speedup_vs_1": best["1"] / seconds,
                "total_profit": profits[k],
            }
        )
        print(
            f"cluster k={k} {seconds:.2f}s "
            f"({rows[-1]['jobs_per_sec']:.0f} jobs/sec, "
            f"{rows[-1]['speedup_vs_1']:.2f}x vs k=1)"
        )
    return rows


#: Coordinator settings the coordination bench (and the CLI defaults)
#: stand behind; tuned on the full 12k-job workload -- see
#: docs/SCHEDULING.md for the sweep.
COORDINATION_SETTINGS = {
    "refresh_every": 64,
    "steal_batch": 64,
    "steal_margin": 3.0,
    "max_displaced": 3,
    "max_moves_per_job": 2,
}


def bench_cluster_coordination(quick: bool, repeats: int) -> dict:
    """Coordinated k=4 vs k=1 profit and wall time, in-process mode.

    In-process shards are the substrate the elastic cluster and the
    gateway actually run on, and the mode where the coordinator's
    refresh/steal round trips are function calls instead of IPC fences;
    process-mode parallel scaling keeps its own section (``scaling``),
    whose k=4 speedup gate is unchanged by coordination (the coordinated
    fleet uses the same shards).  Profits are deterministic, so they are
    measured once; wall times use the interleaved best-of protocol.
    """
    m, specs = _cluster_workload(quick)
    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    def build(coordinated: bool, k: int) -> ClusterService:
        cluster = ClusterService(
            m,
            k,
            config=config,
            router="band-aware" if coordinated else "consistent-hash",
            mode="inprocess",
        )
        if coordinated:
            coordinate(cluster, **COORDINATION_SETTINGS)
        return cluster

    def runner(coordinated: bool, k: int):
        def run():
            return build(coordinated, k).run_stream(specs)

        return run

    profits = {
        "k1": runner(False, 1)().total_profit,
        "k4_uncoordinated": runner(False, 4)().total_profit,
    }
    coordinated_cluster = build(True, 4)
    profits["k4_coordinated"] = coordinated_cluster.run_stream(
        specs
    ).total_profit
    counters = coordinated_cluster.cluster_metrics.values()

    best = _interleaved(
        {name: runner("coordinated" in name, 1 if name == "k1" else 4)
         for name in profits},
        repeats,
    )
    rows = {}
    for name, profit in profits.items():
        seconds = best[name]
        rows[name] = {
            "shards": 1 if name == "k1" else 4,
            "seconds": seconds,
            "jobs_per_sec": len(specs) / seconds,
            "total_profit": profit,
            "profit_vs_k1": profit / profits["k1"],
        }
        print(
            f"coordination {name}: {seconds:.2f}s "
            f"profit {profit:.1f} ({rows[name]['profit_vs_k1']:.1%} of k=1)"
        )
    coordinated = rows["k4_coordinated"]
    return {
        "mode": "inprocess",
        "n_jobs": len(specs),
        "m": m,
        "settings": dict(COORDINATION_SETTINGS),
        "rows": rows,
        "steals": int(counters.get("steals_total", 0)),
        "steals_displaced": int(counters.get("steals_displaced_total", 0)),
        "profit_gate": 0.95,
        # full workload: coordinated k=4 recovers >=95% of the k=1
        # profit that plain sharding sheds; quick sizes (m=16 -> 4
        # machines/shard) clamp allotments too hard to reach the bar,
        # so quick mode gates improvement over uncoordinated only
        "profit_ok": coordinated["profit_vs_k1"] >= 0.95,
        "improves_uncoordinated": coordinated["total_profit"]
        >= rows["k4_uncoordinated"]["total_profit"],
        # wall-clock no-regression floor (generous: the host timing
        # noise on k=1 swings ~2x between runs; profit is the signal,
        # this just pins that coordination is not a slowdown cliff)
        "throughput_ok": coordinated["seconds"]
        <= 1.5 * rows["k1"]["seconds"],
    }


def bench_cluster_migration(quick: bool) -> dict:
    """Shed/profit with and without migration under a skewed router."""
    n_jobs = 200 if quick else 2000
    m = 16
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=3.0, family="mixed", epsilon=1.0, seed=7
        )
    )
    config = ShardConfig(
        m=1,
        scheduler="sns",
        scheduler_kwargs={"epsilon": 1.0},
        capacity=8,
        max_in_flight=8,
    )

    def run(migrate: bool):
        cluster = ClusterService(
            m,
            4,
            config=config,
            router=_HotSpotRouter(),
            mode="process",
            migration=QueueBalancer() if migrate else None,
            migrate_every=2 if migrate else 0,
        )
        result = cluster.run_stream(specs)
        return result, cluster

    off, _ = run(False)
    on, cluster = run(True)
    return {
        "n_jobs": n_jobs,
        "m": m,
        "shards": 4,
        "shed_without": off.num_shed,
        "shed_with": on.num_shed,
        "profit_without": off.total_profit,
        "profit_with": on.total_profit,
        "migrated": cluster.cluster_metrics.values()["migrations_total"],
        "improved": on.num_shed <= off.num_shed
        and on.total_profit >= off.total_profit,
    }


def bench_cluster_recovery(quick: bool) -> dict:
    """Kill-and-recover wall time plus fault-free bit-equality."""
    n_jobs = 200 if quick else 2000
    m = 32
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=3.0, family="mixed", epsilon=1.0, seed=7
        )
    )
    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})
    fault_at = sorted(s.arrival for s in specs)[len(specs) // 2]

    def run(injector):
        # a wide checkpoint interval leaves a real log tail to replay,
        # so the recovery timing covers restore + replay, not just restore
        return ClusterService(
            m,
            4,
            config=config,
            router="consistent-hash",
            mode="process",
            fault_injector=injector,
            checkpoint_every=512 if injector else None,
        ).run_stream(specs)

    clean = run(None)
    injector = FaultInjector().add(shard=1, at=fault_at)
    faulted = run(injector)
    event = injector.events[0]
    return {
        "n_jobs": n_jobs,
        "m": m,
        "shards": 4,
        "fault_at": fault_at,
        "recovery_seconds": event.wall_seconds,
        "replayed_submissions": event.replayed,
        "checkpoint_time": event.checkpoint_time,
        "identical": faulted.records == clean.records
        and faulted.total_profit == clean.total_profit,
    }


def bench_resilience_detection(quick: bool) -> dict:
    """Hang detection + restart latency under heartbeat supervision."""
    from repro.resilience import (
        ResilientClusterService,
        RpcPolicy,
        SupervisorConfig,
    )

    n_jobs = 150 if quick else 600
    m = 8
    heartbeat_timeout = 0.3
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=2.5, family="mixed", epsilon=1.0, seed=7
        )
    )
    specs.sort(key=lambda s: (s.arrival, s.job_id))
    fault_at = specs[len(specs) // 2].arrival
    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    cluster = ResilientClusterService(
        m,
        2,
        config=config,
        mode="process",
        supervisor=SupervisorConfig(
            heartbeat_timeout=heartbeat_timeout,
            heartbeat_every=1,
            max_restarts=8,
            backoff_base=0.001,
            backoff_max=0.01,
        ),
        rpc=RpcPolicy(call_timeout=1.0, retries=0),
    )
    cluster.start()
    injected = False
    for spec in specs:
        if spec.arrival >= fault_at and not injected:
            cluster.inject_hang(0, 2.0)
            injected = True
        cluster.submit(spec, t=spec.arrival)
    cluster.finish()
    event = next(e for e in cluster.supervisor.events if e.reason == "hang")
    return {
        "n_jobs": n_jobs,
        "m": m,
        "shards": 2,
        "heartbeat_timeout": heartbeat_timeout,
        "detection_seconds": event.detection_seconds,
        "restart_seconds": event.restart_seconds,
        # one rpc call_timeout of slack: a synchronous fence may eat
        # its deadline before the heartbeat gets its turn
        "within_deadline": event.detection_seconds <= heartbeat_timeout + 1.0,
    }


def bench_resilience_chaos(quick: bool) -> dict:
    """Seeded crash schedule: bit-identity with the fault-free run."""
    from repro.resilience import ChaosSchedule, run_chaos

    n_jobs = 150 if quick else 600
    m = 8
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=2.5, family="mixed", epsilon=1.0, seed=7
        )
    )
    horizon = max(s.arrival for s in specs)
    schedule = ChaosSchedule.generate(
        7, k=2, horizon=horizon, n_events=3, kinds=("crash", "pipe-drop")
    )
    report = run_chaos(specs, m=m, k=2, schedule=schedule, mode="inprocess")
    return {
        "n_jobs": n_jobs,
        "schedule": report.schedule,
        "recoveries": report.recoveries,
        "identical": report.ok,
    }


def bench_resilience_degraded(quick: bool) -> dict:
    """Throughput retained when 1 of 4 shards degrades out early."""
    from repro.resilience import ResilientClusterService, SupervisorConfig

    n_jobs = 300 if quick else 2000
    m = 16
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=2.5, family="mixed", epsilon=1.0, seed=7
        )
    )
    specs.sort(key=lambda s: (s.arrival, s.job_id))
    # kill early: the degraded cluster serves most of the stream on 3/4
    # of its machines, the worst case for retention
    fault_at = specs[len(specs) // 10].arrival
    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    def run(inject: bool):
        cluster = ResilientClusterService(
            m,
            4,
            config=config,
            mode="inprocess",
            supervisor=SupervisorConfig(
                heartbeat_every=1, max_restarts=0, on_exhausted="degrade"
            ),
        )
        cluster.start()
        injected = False
        for spec in specs:
            if inject and spec.arrival >= fault_at and not injected:
                cluster.inject_crash(1)
                injected = True
            cluster.submit(spec, t=spec.arrival)
        return cluster.finish()

    clean = run(False)
    degraded = run(True)
    retained = (
        degraded.total_profit / clean.total_profit
        if clean.total_profit > 0
        else 1.0
    )
    return {
        "n_jobs": n_jobs,
        "m": m,
        "shards": 4,
        "fault_at": fault_at,
        "clean_profit": clean.total_profit,
        "degraded_profit": degraded.total_profit,
        "throughput_retained": retained,
        "degraded_shards": degraded.extra.get("degraded_shards", []),
        # losing 1 of 4 shards early must keep >= 70% of the profit
        "retained_ok": retained >= 0.7,
    }


def bench_resilience_coordinated(quick: bool) -> dict:
    """Coordinated/elastic gateway chaos: audit, floor, and identity.

    Two gates.  A seeded coordination-fault schedule (ledger partition,
    interrupted steal, shard crash) over the autoscaled gateway must
    pass the post-run invariant audit with >= 70% of the fault-free
    profit.  And with no faults at all, the whole resilience stack --
    supervision, journaled steals, retry queue -- must be invisible:
    the supervised run's fingerprint must equal the plain elastic one.
    """
    import tempfile

    from repro.cluster import ElasticCluster
    from repro.gateway import (
        Autoscaler,
        Gateway,
        LoadConfig,
        LoadGenerator,
        RetryQueue,
        VirtualClock,
    )
    from repro.resilience import (
        ChaosSchedule,
        SupervisedElasticCluster,
        run_gateway_chaos,
    )

    n_jobs = 96 if quick else 240
    schedule = ChaosSchedule.parse(
        "ledger-partition:2:120,steal-interrupt:0:340,crash:1:420"
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-gw-") as workdir:
        report = run_gateway_chaos(
            seed=5,
            schedule=schedule,
            n_jobs=n_jobs,
            m=8,
            k_max=4,
            workdir=workdir,
        )

    config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})

    def clean_fingerprint(supervised: bool) -> str:
        if supervised:
            cluster = SupervisedElasticCluster(
                8, 4, config=config, router="least-loaded"
            )
        else:
            cluster = ElasticCluster(8, 4, config=config, router="least-loaded")
        gateway = Gateway(
            cluster,
            LoadGenerator(LoadConfig(n_jobs=n_jobs, m=8, seed=42, load=1.5)),
            clock=VirtualClock(),
            steps_per_tick=20,
            buffer_capacity=512,
            autoscaler=Autoscaler(k_min=1, k_max=4),
            retry=RetryQueue(seed=42) if supervised else None,
        )
        return gateway.run().fingerprint()

    plain = clean_fingerprint(False)
    supervised = clean_fingerprint(True)
    return {
        "n_jobs": n_jobs,
        "schedule": report.schedule,
        "faults_fired": report.faults_fired,
        "recoveries": report.recoveries,
        "audit_ok": report.audit.ok,
        "profit_ratio": report.audit.profit_ratio,
        "profit_floor_ok": report.audit.profit_ratio is None
        or report.audit.profit_ratio >= 0.7,
        "clean_fingerprint_plain": plain,
        "clean_fingerprint_supervised": supervised,
        "fault_free_identical": plain == supervised,
    }


def _gateway_run(
    n_jobs: int,
    load: float,
    *,
    k_initial: int = 4,
    autoscale: bool = False,
    process: str = "poisson",
    seed: int = 7,
):
    """One virtual-clock gateway run on the bench's canonical cluster:
    m=8 split into 4 shard units, SNS per shard, least-loaded routing."""
    from repro.cluster import ElasticCluster
    from repro.gateway import (
        Autoscaler,
        Gateway,
        LoadConfig,
        LoadGenerator,
        VirtualClock,
    )

    generator = LoadGenerator(
        LoadConfig(n_jobs=n_jobs, m=8, load=load, seed=seed, process=process)
    )
    cluster = ElasticCluster(
        m=8,
        k_max=4,
        k_initial=k_initial,
        config=ShardConfig(
            m=1,
            scheduler="sns",
            scheduler_kwargs={"epsilon": 1.0},
            capacity=64,
            max_in_flight=8,
        ),
        router="least-loaded",
    )
    autoscaler = Autoscaler(k_min=1, k_max=4) if autoscale else None
    gateway = Gateway(
        cluster,
        generator,
        clock=VirtualClock(),
        tick_seconds=0.01,
        steps_per_tick=10,
        autoscaler=autoscaler,
    )
    start = time.perf_counter()
    result = gateway.run()
    return result, time.perf_counter() - start


def bench_gateway_sustained(quick: bool) -> list[dict]:
    """Open-loop Poisson load at 0.8x/1.0x/1.2x saturation, fixed k=4.

    The gated rows are 0.8 and 1.0: at or below saturation the gateway
    must keep p99 admission latency bounded (<= 50 simulated steps, 5
    ticks of buffer wait) and shed almost nothing (<= 5% below
    saturation, <= 10% at saturation).  The 1.2x row is reported for
    context -- above saturation shedding is the *correct* response, so
    it carries no bound.
    """
    n_jobs = 300 if quick else 1200
    rows = []
    for load in (0.8, 1.0, 1.2):
        result, wall = _gateway_run(n_jobs, load)
        summary = result.summary()
        shed_total = summary["shed"] + summary["gateway_shed"]
        shed_fraction = shed_total / max(summary["generated"], 1)
        p99 = summary["admission_latency_p99"] or 0.0
        gated = load <= 1.0
        rows.append(
            {
                "load": load,
                "n_jobs": n_jobs,
                "ticks": summary["ticks"],
                "sim_end": summary["sim_end"],
                "bench_seconds": wall,
                "jobs_per_sec": summary["generated"] / wall,
                "admission_latency_p50": summary["admission_latency_p50"],
                "admission_latency_p99": summary["admission_latency_p99"],
                "shed_fraction": shed_fraction,
                "total_profit": summary["total_profit"],
                "gated": gated,
                "latency_ok": (not gated) or p99 <= 50.0,
                "shed_ok": (not gated)
                or shed_fraction <= (0.10 if load >= 1.0 else 0.05),
            }
        )
        print(
            f"gateway load={load:.1f} n={n_jobs}: "
            f"p99={p99:.1f} steps, shed={shed_fraction:.1%}, "
            f"{rows[-1]['jobs_per_sec']:.0f} jobs/sec"
        )
    return rows


def bench_gateway_autoscale(quick: bool) -> dict:
    """Autoscaled profit vs every fixed shard count on one trace.

    A flash-crowd trace at 1.2x saturation; the autoscaler starts at
    k=1 and must earn >= 95% of the best fixed k's profit (gated in
    full mode only -- the quick trace is too short for the hysteresis
    windows to be meaningful).
    """
    n_jobs = 300 if quick else 1200
    fixed = {}
    for k in (1, 2, 3, 4):
        result, _ = _gateway_run(n_jobs, 1.2, k_initial=k, process="flash-crowd")
        fixed[k] = result.total_profit
    auto, _ = _gateway_run(
        n_jobs, 1.2, k_initial=1, autoscale=True, process="flash-crowd"
    )
    best_k = max(fixed, key=lambda k: fixed[k])
    ratio = auto.total_profit / fixed[best_k] if fixed[best_k] > 0 else 1.0
    row = {
        "n_jobs": n_jobs,
        "process": "flash-crowd",
        "load": 1.2,
        "fixed_profits": {str(k): p for k, p in fixed.items()},
        "best_fixed_k": best_k,
        "best_fixed_profit": fixed[best_k],
        "autoscaled_profit": auto.total_profit,
        "ratio": ratio,
        "scale_path": [e.k_after for e in auto.scale_events],
        "scale_events": len(auto.scale_events),
        "ratio_ok": ratio >= 0.95,
    }
    print(
        f"gateway autoscale: {auto.total_profit:.1f} vs best fixed "
        f"k={best_k} {fixed[best_k]:.1f} ({ratio:.1%}), "
        f"path {row['scale_path']}"
    )
    return row


def bench_gateway_determinism(quick: bool) -> dict:
    """Two identical seeded virtual-clock runs, fingerprint-equal.

    Covers an autoscaler up/down cycle: the fingerprint hashes the
    submission order and placement, front-door drops, scheduler sheds,
    per-job profits (exact bit patterns) and the scale trajectory.
    """
    n_jobs = 300 if quick else 400
    a, _ = _gateway_run(
        n_jobs, 1.2, k_initial=1, autoscale=True, process="flash-crowd"
    )
    b, _ = _gateway_run(
        n_jobs, 1.2, k_initial=1, autoscale=True, process="flash-crowd"
    )
    return {
        "n_jobs": n_jobs,
        "fingerprint": a.fingerprint()[:16],
        "scale_events": len(a.scale_events),
        "identical": a.fingerprint() == b.fingerprint(),
    }


def bench_observability(
    quick: bool, repeats: int, trace_path: str | None = None
) -> dict:
    """Tracing overhead: no recorder vs disabled recorder vs full trace.

    The bit-identity checks are the load-bearing part: a recorder that
    perturbed the schedule would be worse than a slow one.  The timing
    gates get a small absolute slack (5 ms) on top of the relative
    bound so sub-second quick runs don't flake on scheduler jitter.
    """
    from repro.observability import (
        NULL_RECORDER,
        Profiler,
        TraceRecorder,
        recompute_profit,
        validate_trace,
        write_jsonl,
    )

    # quick stays at 400 jobs: smaller runs are over in ~13 ms, where
    # per-event constants and scheduler jitter dominate the ratio
    n_jobs, m = (400, 32) if quick else (800, 64)
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=2.0, family="mixed", epsilon=1.0, seed=17
        )
    )

    def run(recorder=None, profiler=None):
        return Simulator(
            m=m,
            scheduler=SNSScheduler(epsilon=1.0),
            recorder=recorder,
            profiler=profiler,
        ).run(list(specs))

    res_base = run()
    res_noop = run(NULL_RECORDER)
    tracer, profiler = TraceRecorder(), Profiler()
    res_traced = run(tracer, profiler)
    violations = validate_trace(tracer.events)
    profit_ok = recompute_profit(tracer.events) == res_traced.total_profit
    if trace_path:
        write_jsonl(tracer.events, trace_path)
        print(f"wrote {trace_path} ({len(tracer)} events)")

    best = _interleaved(
        {
            "baseline": run,
            "noop": lambda: run(NULL_RECORDER),
            "traced": lambda: run(TraceRecorder(), Profiler()),
        },
        repeats,
    )
    slack = 0.005
    disabled_overhead = best["noop"] / best["baseline"] - 1.0
    enabled_overhead = best["traced"] / best["baseline"] - 1.0
    row = {
        "n_jobs": n_jobs,
        "m": m,
        "events": len(tracer),
        "identical_noop": _identical(res_base, res_noop),
        "identical_traced": _identical(res_base, res_traced),
        "trace_valid": not violations,
        "profit_recomputed_ok": profit_ok,
        "baseline_seconds": best["baseline"],
        "noop_seconds": best["noop"],
        "traced_seconds": best["traced"],
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_ok": best["noop"] <= best["baseline"] * 1.02 + slack,
        "enabled_ok": best["traced"] <= best["baseline"] * 1.10 + slack,
    }
    print(
        f"observability n={n_jobs} m={m}: disabled "
        f"{disabled_overhead:+.2%}, traced {enabled_overhead:+.2%} "
        f"({row['events']} events, identical="
        f"{row['identical_noop'] and row['identical_traced']})"
    )
    return row


def main(argv=None) -> int:
    """Run every section and write the JSON snapshot."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_engine.json"),
        help="where to write the JSON snapshot",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test sizes (seconds, for CI) instead of full scale",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved timing rounds per subject (best is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every bit-identity/equality assertion holds",
    )
    parser.add_argument(
        "--service-engine",
        choices=["event", "array"],
        default="event",
        help="engine backend for the service section (the batch"
        " reference stays on 'event', so 'array' doubles the equality"
        " column as a cross-backend pin)",
    )
    parser.add_argument(
        "--cluster-output",
        default=str(Path(__file__).resolve().parent / "BENCH_cluster.json"),
        help="where to write the cluster JSON snapshot",
    )
    parser.add_argument(
        "--skip-cluster",
        action="store_true",
        help="skip the repro.cluster sections (and BENCH_cluster.json)",
    )
    parser.add_argument(
        "--resilience-output",
        default=str(Path(__file__).resolve().parent / "BENCH_resilience.json"),
        help="where to write the resilience JSON snapshot",
    )
    parser.add_argument(
        "--skip-resilience",
        action="store_true",
        help="skip the repro.resilience sections (and BENCH_resilience.json)",
    )
    parser.add_argument(
        "--observability-output",
        default=str(
            Path(__file__).resolve().parent / "BENCH_observability.json"
        ),
        help="where to write the observability JSON snapshot",
    )
    parser.add_argument(
        "--skip-observability",
        action="store_true",
        help="skip the tracing-overhead section (and "
        "BENCH_observability.json)",
    )
    parser.add_argument(
        "--gateway-output",
        default=str(Path(__file__).resolve().parent / "BENCH_gateway.json"),
        help="where to write the gateway JSON snapshot",
    )
    parser.add_argument(
        "--skip-gateway",
        action="store_true",
        help="skip the repro.gateway sections (and BENCH_gateway.json)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also dump the observability section's trace to PATH (JSONL)",
    )
    args = parser.parse_args(argv)

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except OSError:  # pragma: no cover - git missing
        rev = ""

    snapshot = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # interpret sweep.parallel_speedup relative to this: with a
            # single CPU the 2-worker pool cannot beat serial
            "cpu_count": os.cpu_count(),
            "git_rev": rev,
            "quick": args.quick,
            "repeats": args.repeats,
        },
        # wave (absolute jobs/sec gate) runs before stress: minutes of
        # saturated numpy right before an absolute-throughput measurement
        # depress it noticeably on thermally-limited hosts
        "engine_scale": bench_engine_scale(args.quick, args.repeats),
        "engine_wave": bench_engine_wave(args.quick, args.repeats),
        "engine_stress": bench_engine_stress(args.quick, args.repeats),
        "sweep": bench_sweep(args.quick, args.repeats),
        "service": bench_service(
            args.quick, args.repeats, args.service_engine
        ),
        "scenario_overhead": bench_scenario_overhead(args.quick, args.repeats),
    }

    out = Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out}")

    ok = (
        all(row["identical"] for row in snapshot["engine_scale"])
        and snapshot["engine_stress"]["identical"]
        and snapshot["engine_stress"]["speedup_ok"]
        and snapshot["engine_wave"]["identical"]
        and snapshot["engine_wave"]["throughput_ok"]
        and sweep_gate_ok(snapshot["sweep"], args.quick)
        and snapshot["service"]["identical_profit"]
        and snapshot["scenario_overhead"]["identical"]
        and snapshot["scenario_overhead"]["overhead_ok"]
    )
    largest = snapshot["engine_scale"][-1]
    stress = snapshot["engine_stress"]
    wave = snapshot["engine_wave"]
    print(
        f"largest config n={largest['n_jobs']} m={largest['m']}: "
        f"{largest['speedup']:.2f}x vs legacy, "
        f"{largest['jobs_per_sec']:.0f} jobs/sec, "
        f"{largest['decisions_per_sec']:.0f} decisions/sec"
    )
    print(
        f"engine stress: array {stress['array_speedup_vs_event']:.2f}x vs "
        f"event (gate {'5x full-mode' if not args.quick else 'identity only'}); "
        f"wave peak {wave['peak_jobs_per_sec'] / 1e3:.0f}k jobs/sec"
    )

    if not args.skip_cluster:
        cluster_snapshot = {
            "meta": snapshot["meta"],
            "scaling": bench_cluster_scaling(args.quick, args.repeats),
            "coordination": bench_cluster_coordination(
                args.quick, args.repeats
            ),
            "migration": bench_cluster_migration(args.quick),
            "recovery": bench_cluster_recovery(args.quick),
        }
        cluster_out = Path(args.cluster_output)
        cluster_out.write_text(json.dumps(cluster_snapshot, indent=2) + "\n")
        print(f"wrote {cluster_out}")

        at4 = next(
            row
            for row in cluster_snapshot["scaling"]
            if row["shards"] == 4
        )
        coordination = cluster_snapshot["coordination"]
        coordinated_row = coordination["rows"]["k4_coordinated"]
        print(
            f"cluster k=4: {at4['speedup_vs_1']:.2f}x vs k=1, "
            f"coordinated profit {coordinated_row['profit_vs_k1']:.1%} of k=1 "
            f"({coordination['steals']} steals), "
            f"migration improved={cluster_snapshot['migration']['improved']}, "
            f"recovery {cluster_snapshot['recovery']['recovery_seconds'] * 1e3:.1f} ms "
            f"identical={cluster_snapshot['recovery']['identical']}"
        )
        ok = ok and cluster_snapshot["recovery"]["identical"]
        ok = ok and cluster_snapshot["migration"]["improved"]
        # coordination must beat plain sharding at every size (profits
        # are deterministic, so this gate never flakes)
        ok = ok and coordination["improves_uncoordinated"]
        # throughput scaling and the 95%-of-k=1 profit bar only gate in
        # full mode: the quick sizes are too small for the sharding win
        # to clear the IPC floor, and 4-machine shards clamp allotments
        # too hard for coordination to close the whole gap
        if not args.quick:
            ok = ok and at4["speedup_vs_1"] > 1.5
            ok = ok and coordination["profit_ok"]
            ok = ok and coordination["throughput_ok"]

    if not args.skip_resilience:
        resilience_snapshot = {
            "meta": snapshot["meta"],
            "detection": bench_resilience_detection(args.quick),
            "chaos": bench_resilience_chaos(args.quick),
            "degraded": bench_resilience_degraded(args.quick),
            "coordinated": bench_resilience_coordinated(args.quick),
        }
        resilience_out = Path(args.resilience_output)
        resilience_out.write_text(
            json.dumps(resilience_snapshot, indent=2) + "\n"
        )
        print(f"wrote {resilience_out}")

        detection = resilience_snapshot["detection"]
        degraded = resilience_snapshot["degraded"]
        coordinated = resilience_snapshot["coordinated"]
        print(
            f"resilience: hang detected in "
            f"{detection['detection_seconds'] * 1e3:.1f} ms, restart "
            f"{detection['restart_seconds'] * 1e3:.1f} ms, chaos identical="
            f"{resilience_snapshot['chaos']['identical']}, "
            f"throughput retained at k=4 with 1 shard down: "
            f"{degraded['throughput_retained']:.1%}, gateway chaos audit="
            f"{coordinated['audit_ok']} (profit ratio "
            f"{coordinated['profit_ratio']:.2f}), fault-free identity="
            f"{coordinated['fault_free_identical']}"
        )
        ok = ok and detection["within_deadline"]
        ok = ok and resilience_snapshot["chaos"]["identical"]
        ok = ok and degraded["retained_ok"]
        ok = ok and coordinated["audit_ok"]
        ok = ok and coordinated["profit_floor_ok"]
        ok = ok and coordinated["fault_free_identical"]

    if not args.skip_observability:
        observability_snapshot = {
            "meta": snapshot["meta"],
            "overhead": bench_observability(
                args.quick, args.repeats, trace_path=args.trace
            ),
        }
        observability_out = Path(args.observability_output)
        observability_out.write_text(
            json.dumps(observability_snapshot, indent=2) + "\n"
        )
        print(f"wrote {observability_out}")

        overhead = observability_snapshot["overhead"]
        ok = ok and overhead["identical_noop"]
        ok = ok and overhead["identical_traced"]
        ok = ok and overhead["trace_valid"]
        ok = ok and overhead["profit_recomputed_ok"]
        ok = ok and overhead["disabled_ok"]
        ok = ok and overhead["enabled_ok"]

    if not args.skip_gateway:
        gateway_snapshot = {
            "meta": snapshot["meta"],
            "sustained": bench_gateway_sustained(args.quick),
            "autoscale": bench_gateway_autoscale(args.quick),
            "determinism": bench_gateway_determinism(args.quick),
        }
        gateway_out = Path(args.gateway_output)
        gateway_out.write_text(json.dumps(gateway_snapshot, indent=2) + "\n")
        print(f"wrote {gateway_out}")

        autoscale = gateway_snapshot["autoscale"]
        determinism = gateway_snapshot["determinism"]
        saturated = next(
            row
            for row in gateway_snapshot["sustained"]
            if row["load"] == 1.0
        )
        print(
            f"gateway: p99 at saturation "
            f"{(saturated['admission_latency_p99'] or 0.0):.1f} steps, "
            f"shed {saturated['shed_fraction']:.1%}, autoscaled/best-fixed "
            f"{autoscale['ratio']:.1%}, deterministic="
            f"{determinism['identical']}"
        )
        for row in gateway_snapshot["sustained"]:
            ok = ok and row["latency_ok"] and row["shed_ok"]
        ok = ok and determinism["identical"]
        # the hysteresis windows need the full trace length to settle,
        # so the profit-ratio gate only applies at full scale
        if not args.quick:
            ok = ok and autoscale["ratio_ok"]

    if args.check and not ok:
        print("FAILED: output mismatch between timed subjects", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
