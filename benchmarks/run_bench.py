#!/usr/bin/env python
"""Benchmark-regression runner: emits a ``BENCH_engine.json`` snapshot.

Measures the four quantities future PRs must defend (see
docs/PERFORMANCE.md):

* ``engine_scale`` -- event-driven engine vs the frozen legacy stepper
  (``repro.sim._legacy_engine``) on growing workloads: wall-clock,
  speedup, jobs/sec and decisions/sec, with a bit-identity check of
  records/counters/profit on every config.
* ``sweep`` -- serial vs 2-worker wall-clock of a small E3-style grid
  through :func:`repro.analysis.sweep.run_sweep`, with cell-for-cell
  equality.
* ``service`` -- streaming pass-through overhead of
  :class:`repro.service.SchedulingService` relative to batch
  ``Simulator.run`` on the same workload.

Timing methodology: each timed subject runs ``repeats`` times with the
competing subjects interleaved round-robin (so machine-load drift hits
all subjects equally) and garbage collection frozen around each run;
the reported time is the best of the repeats.  Run from the repository
root::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [-o OUT.json]

``--quick`` shrinks every section to smoke-test size (seconds, for CI);
the default sizes take a few minutes.  ``--check`` additionally fails
(exit 1) if any bit-identity or equality assertion is violated, which
is how CI uses it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.sweep import run_sweep  # noqa: E402
from repro.core import SNSScheduler  # noqa: E402
from repro.experiments.e03_thm2 import _thm2_value  # noqa: E402
from repro.service import SchedulingService  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.sim._legacy_engine import LegacySimulator  # noqa: E402
from repro.workloads import WorkloadConfig, generate_workload  # noqa: E402

#: (n_jobs, m) engine-scale configs; the last is the acceptance config.
SCALE_CONFIGS = [(50, 8), (100, 16), (200, 32), (400, 64), (800, 64)]
QUICK_SCALE_CONFIGS = [(50, 8), (100, 16)]


def _timed(fn, repeats: int) -> list[float]:
    """Wall-clock each call with GC frozen; returns all samples."""
    samples = []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        finally:
            gc.enable()
    return samples


def _interleaved(subjects: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` per subject, rounds interleaved so load
    drift during the measurement hits every subject equally."""
    samples: dict[str, list[float]] = {name: [] for name in subjects}
    for _ in range(repeats):
        for name, fn in subjects.items():
            samples[name].extend(_timed(fn, 1))
    return {name: min(vals) for name, vals in samples.items()}


def _record_tuple(rec) -> tuple:
    return (
        rec.job_id,
        rec.arrival,
        rec.deadline,
        rec.completion_time,
        rec.profit,
        rec.processor_steps,
        rec.expired,
        rec.abandoned,
        rec.assigned_deadline,
    )


def _identical(res_a, res_b) -> bool:
    """Bit-identity of the observable outputs of two runs."""
    return (
        [_record_tuple(r) for r in res_a.records.values()]
        == [_record_tuple(r) for r in res_b.records.values()]
        and asdict(res_a.counters) == asdict(res_b.counters)
        and res_a.end_time == res_b.end_time
        and res_a.total_profit == res_b.total_profit
    )


def bench_engine_scale(quick: bool, repeats: int) -> list[dict]:
    """Legacy-vs-event-driven engine comparison across scales."""
    rows = []
    for n_jobs, m in QUICK_SCALE_CONFIGS if quick else SCALE_CONFIGS:
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=n_jobs,
                m=m,
                load=2.0,
                family="mixed",
                epsilon=1.0,
                seed=n_jobs,
            )
        )

        def run_new():
            return Simulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(specs)

        def run_legacy():
            return LegacySimulator(m=m, scheduler=SNSScheduler(epsilon=1.0)).run(
                specs
            )

        res_new, res_legacy = run_new(), run_legacy()
        best = _interleaved({"new": run_new, "legacy": run_legacy}, repeats)
        rows.append(
            {
                "n_jobs": n_jobs,
                "m": m,
                "identical": _identical(res_new, res_legacy),
                "engine_seconds": best["new"],
                "legacy_seconds": best["legacy"],
                "speedup": best["legacy"] / best["new"],
                "jobs_per_sec": n_jobs / best["new"],
                "decisions_per_sec": res_new.counters.decisions / best["new"],
                "steps_per_sec": res_new.counters.steps / best["new"],
                "total_profit": res_new.total_profit,
            }
        )
        print(
            f"engine n={n_jobs:4d} m={m:3d} "
            f"speedup={rows[-1]['speedup']:.2f}x "
            f"identical={rows[-1]['identical']}"
        )
    return rows


def bench_sweep(quick: bool, repeats: int) -> dict:
    """Serial vs 2-worker wall-clock on a small Theorem-2 grid."""
    # Full mode must be large enough that the worker-pool startup
    # (a few hundred ms to import the scientific stack twice)
    # amortizes; quick mode only checks cell-for-cell equality.
    grid = {
        "epsilon": [0.5, 1.0] if quick else [0.25, 0.5, 1.0, 2.0],
        "n_jobs": [20 if quick else 400],
        "m": [8],
        "load": [2.0],
    }
    seeds = [0, 1] if quick else [0, 1, 2, 3, 4]

    serial = run_sweep(_thm2_value, grid, seeds, workers=1)
    parallel = run_sweep(_thm2_value, grid, seeds, workers=2)
    best = _interleaved(
        {
            "serial": lambda: run_sweep(_thm2_value, grid, seeds, workers=1),
            "parallel": lambda: run_sweep(_thm2_value, grid, seeds, workers=2),
        },
        repeats,
    )
    return {
        "grid_cells": len(serial),
        "seeds": len(seeds),
        "workers": 2,
        "identical": serial == parallel,
        "serial_seconds": best["serial"],
        "parallel_seconds": best["parallel"],
        "parallel_speedup": best["serial"] / best["parallel"],
    }


def bench_service(quick: bool, repeats: int) -> dict:
    """Streaming pass-through overhead relative to batch runs."""
    n_jobs = 100 if quick else 400
    specs = generate_workload(
        WorkloadConfig(n_jobs=n_jobs, m=8, load=2.5, epsilon=1.0, seed=5)
    )

    def run_batch():
        return Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(list(specs))

    def run_stream():
        return SchedulingService(8, SNSScheduler(epsilon=1.0)).run_stream(specs)

    batch, stream = run_batch(), run_stream()
    best = _interleaved({"batch": run_batch, "stream": run_stream}, repeats)
    return {
        "n_jobs": n_jobs,
        "identical_profit": batch.total_profit == stream.total_profit,
        "batch_seconds": best["batch"],
        "stream_seconds": best["stream"],
        "passthrough_overhead": best["stream"] / best["batch"],
    }


def main(argv=None) -> int:
    """Run every section and write the JSON snapshot."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_engine.json"),
        help="where to write the JSON snapshot",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test sizes (seconds, for CI) instead of full scale",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved timing rounds per subject (best is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every bit-identity/equality assertion holds",
    )
    args = parser.parse_args(argv)

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except OSError:  # pragma: no cover - git missing
        rev = ""

    snapshot = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # interpret sweep.parallel_speedup relative to this: with a
            # single CPU the 2-worker pool cannot beat serial
            "cpu_count": os.cpu_count(),
            "git_rev": rev,
            "quick": args.quick,
            "repeats": args.repeats,
        },
        "engine_scale": bench_engine_scale(args.quick, args.repeats),
        "sweep": bench_sweep(args.quick, args.repeats),
        "service": bench_service(args.quick, args.repeats),
    }

    out = Path(args.output)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out}")

    ok = (
        all(row["identical"] for row in snapshot["engine_scale"])
        and snapshot["sweep"]["identical"]
        and snapshot["service"]["identical_profit"]
    )
    largest = snapshot["engine_scale"][-1]
    print(
        f"largest config n={largest['n_jobs']} m={largest['m']}: "
        f"{largest['speedup']:.2f}x vs legacy, "
        f"{largest['jobs_per_sec']:.0f} jobs/sec, "
        f"{largest['decisions_per_sec']:.0f} decisions/sec"
    )
    if args.check and not ok:
        print("FAILED: output mismatch between timed subjects", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
