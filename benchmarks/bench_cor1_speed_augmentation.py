"""Benchmark E4: regenerate the Corollary 1 speed-augmentation sweep."""

import pytest

from repro.experiments.e04_cor1 import run


@pytest.mark.benchmark(group="experiments")
def test_e04_cor1_speed_augmentation(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    by_speed = {row[0]: row[1] for row in result.rows}
    # poor at speed 1, solid constant by 2.5 (Corollary 1's 2 + eps)
    assert by_speed[2.5] > 3 * by_speed[1.0]
    assert by_speed[2.5] > 0.5
