"""Benchmark E12: federated / non-clairvoyant / recurring-task panels."""

import pytest

from repro.experiments.e12_extensions import run


@pytest.mark.benchmark(group="experiments")
def test_e12_extensions(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    by_scenario = {row[0]: row[1:] for row in result.rows}
    # every scheduler earns something in every scenario
    for scenario, values in by_scenario.items():
        for value in values:
            assert value > 0, scenario
    # low-utilization periodic task sets complete essentially everything
    first_periodic = next(
        row for row in result.rows if str(row[0]).startswith("periodic")
    )
    assert all(v >= 0.9 for v in first_periodic[1:])
