"""Benchmark E9: regenerate the ablation table."""

import pytest

from repro.experiments.e09_ablations import run


@pytest.mark.benchmark(group="experiments")
def test_e09_ablations(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    trap = {r[1]: r[2] for r in result.rows if r[0] == "trap"}
    # admission control is the difference on the trap stream
    assert trap["S"] >= 3 * trap["S-no-admission"]
    # work conservation only helps
    assert trap["S-work-conserving"] >= trap["S"] - 1e-9
    loads = sorted({r[0] for r in result.rows if r[0] != "trap"})
    wc = {
        r[0]: r[2]
        for r in result.rows
        if r[1] == "S-work-conserving" and r[0] != "trap"
    }
    plain = {r[0]: r[2] for r in result.rows if r[1] == "S" and r[0] != "trap"}
    for load in loads:
        assert wc[load] >= plain[load] - 0.05
