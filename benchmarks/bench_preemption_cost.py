"""Benchmark E13: profit degradation under preemption overhead."""

import pytest

from repro.experiments.e13_preemption_cost import run


@pytest.mark.benchmark(group="experiments")
def test_e13_preemption_cost(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    s_col = result.headers.index("S(eps=1)")
    edf_col = result.headers.index("EDF")
    s_vals = [row[s_col] for row in result.rows]
    edf_vals = [row[edf_col] for row in result.rows]
    # S nearly flat in the overhead; EDF visibly degrades
    assert min(s_vals) >= max(s_vals) - 0.05
    assert edf_vals[-1] < edf_vals[0]
    # S's preemption count is tiny compared to EDF's
    sp_col = result.headers.index("preempts:S(eps=1)")
    ep_col = result.headers.index("preempts:EDF")
    for row in result.rows:
        assert row[sp_col] <= row[ep_col] / 5
