"""Benchmark E14: exact-OPT competitive ratios on small instances."""

import pytest

from repro.experiments.e14_small_exact import run


@pytest.mark.benchmark(group="experiments")
def test_e14_small_exact(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        # the bracket closes on most instances
        assert row[2] >= 0.7 * row[1]
        # exact ratios are small constants, far below the proven bound
        worst = row[6]
        if worst != "-":
            assert float(worst) < 20.0
