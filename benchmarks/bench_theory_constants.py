"""Benchmark E10: regenerate the derived-constants / O(1/eps^6) table."""

import pytest

from repro.experiments.e10_constants import run


@pytest.mark.benchmark(group="experiments")
def test_e10_theory_constants(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    ratios = [float(row[6]) for row in result.rows]
    epsilons = [row[0] for row in result.rows]
    # ratio decreases as eps grows
    assert ratios == sorted(ratios, reverse=True)
    # growth is polynomial, bounded by O(1/eps^6) with a uniform constant
    scaled = [r * e ** 6 for r, e in zip(ratios, epsilons)]
    assert max(scaled[:3]) < 10 * min(scaled[:3]) * 10  # same order as eps -> 0
    for row in result.rows:
        assert float(row[5]) > 0  # Lemma 5 coefficient positive
