"""Benchmark harness configuration.

Every ``bench_*`` module regenerates one experiment table (E1..E11 from
DESIGN.md) under pytest-benchmark timing and asserts the qualitative
claim the paper makes.  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_FULL=1`` for full-size experiments (several minutes);
the default quick mode preserves every qualitative shape.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    """Whether to run reduced-size experiments (default yes)."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


@pytest.fixture
def show():
    """Print an ExperimentResult table to the benchmark log."""

    def _show(result):
        print()
        print(result.to_text())
        return result

    return _show
