"""Benchmark E6: regenerate the Theorem 3 general-profit table."""

import pytest

from repro.experiments.e06_thm3 import run


@pytest.mark.benchmark(group="experiments")
def test_e06_thm3_general_profit(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        decay, load, s_frac = row[0], row[1], row[2]
        # S earns a nonvanishing fraction in every decay/load regime
        assert s_frac > 0.05, f"{decay}@{load}"
