"""Service-layer overhead: batch `Simulator.run` vs the streaming
service in pass-through configuration, plus the cost of backpressure
bookkeeping and a checkpoint cycle.

The service adds a queue offer, admission decision and telemetry sync
per job on top of the engine's work; pass-through mode must stay within
a small constant factor of batch throughput for the serving layer to be
usable as the default driver.
"""

import json

import pytest

from repro.core import SNSScheduler
from repro.service import (
    SchedulingService,
    make_shed_policy,
    service_from_dict,
    service_to_dict,
)
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def _specs(quick):
    n = 150 if quick else 1500
    return generate_workload(
        WorkloadConfig(n_jobs=n, m=8, load=2.5, epsilon=1.0, seed=5)
    )


@pytest.mark.benchmark(group="service")
def test_batch_baseline(benchmark, quick):
    specs = _specs(quick)

    def go():
        return Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(
            list(specs)
        )

    result = benchmark(go)
    assert result.num_jobs == len(specs)


@pytest.mark.benchmark(group="service")
def test_service_passthrough(benchmark, quick):
    """Same workload through the service with no backpressure: measures
    pure serving-layer overhead (queue + telemetry + per-job advance)."""
    specs = _specs(quick)
    batch = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(list(specs))

    def go():
        service = SchedulingService(8, SNSScheduler(epsilon=1.0))
        return service.run_stream(specs)

    result = benchmark(go)
    assert result.total_profit == batch.total_profit
    assert result.num_shed == 0


@pytest.mark.benchmark(group="service")
def test_service_backpressure(benchmark, quick):
    """Bounded queue + in-flight cap + density shedding engaged."""
    specs = _specs(quick)

    def go():
        service = SchedulingService(
            8,
            SNSScheduler(epsilon=1.0),
            capacity=16,
            shed_policy=make_shed_policy("reject-lowest-density"),
            max_in_flight=24,
            sample_every=100,
        )
        return service.run_stream(specs)

    result = benchmark(go)
    assert len(result.result.records) + result.num_shed == len(specs)


@pytest.mark.benchmark(group="service")
def test_checkpoint_cycle(benchmark, quick):
    """JSON snapshot + restore of a mid-stream service."""
    specs = sorted(_specs(quick), key=lambda s: (s.arrival, s.job_id))
    service = SchedulingService(8, SNSScheduler(epsilon=1.0))
    service.start()
    for spec in specs[: len(specs) // 2]:
        service.submit(spec, t=spec.arrival)

    def cycle():
        blob = json.dumps(service_to_dict(service))
        return service_from_dict(json.loads(blob), SNSScheduler(epsilon=1.0))

    restored = benchmark(cycle)
    assert restored.now == service.now
    assert restored.in_flight == service.in_flight
