"""Benchmark E3: regenerate the Theorem 2 competitiveness table."""

import pytest

from repro.experiments.e03_thm2 import run


@pytest.mark.benchmark(group="experiments")
def test_e03_thm2_competitive(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    eps_rows = [r for r in result.rows if isinstance(r[0], float)]
    for row in eps_rows:
        frac = row[1]
        assert 0 < frac <= 1.0 + 1e-6
        # empirical ratio is orders of magnitude below the proven bound
        assert 1.0 / frac < float(row[4])
