"""Benchmark E1: regenerate the Figure 1 / Theorem 1 lower-bound table."""

import pytest

from repro.experiments.e01_fig1 import run


@pytest.mark.benchmark(group="experiments")
def test_e01_fig1_lower_bound(benchmark, quick, show):
    result = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        m, ratio, predicted = row[0], row[6], row[7]
        assert ratio == pytest.approx(predicted, rel=0.02), f"m={m}"
        # recovery speed lands near 2 - 1/m (within step-quantization)
        assert row[8] <= 2.05
