"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(environments without the `wheel` package).  Metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
