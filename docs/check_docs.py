#!/usr/bin/env python
"""Docs-consistency check: every code reference in the docs must exist.

Run from the repository root::

    PYTHONPATH=src python docs/check_docs.py

Scans ``README.md`` and ``docs/*.md`` and verifies three kinds of
references against the actual tree, exiting 1 with a per-reference
report if any is broken:

1. **Imports in python code fences** — every ``import repro...`` /
   ``from repro... import name`` line must import, and each imported
   name must exist in that module.
2. **Backticked dotted names** — any `` `repro.a.b.C` `` token must
   resolve: the longest importable module prefix is imported and the
   remainder is followed with ``getattr``.
3. **Repo-relative paths** — markdown link targets and backticked
   ``docs/...``, ``src/...``, ``tests/...``, ``benchmarks/...``,
   ``examples/...`` paths must exist on disk.
4. **Component names** — rows of catalog tables whose header is
   ``| kind | name | ... |`` (docs/SCENARIOS.md), and backticked
   ``kind:name`` tokens anywhere (e.g. `` `scheduler:sns` ``), must
   name components registered in the shared component registry.

The point is to fail CI when a doc names a module, symbol, or file that
a refactor renamed — the docs are checked against the code, not against
themselves.
"""

import argparse
import ast
import importlib
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
BACKTICK_RE = re.compile(r"`([^`\n]+)`")
DOTTED_RE = re.compile(r"\brepro(?:\.\w+)+")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(r"^(?:docs|src|tests|benchmarks|examples)/[\w./-]+$")


def doc_files():
    return [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


def resolve_dotted(name: str) -> bool:
    """Import the longest module prefix of ``name``, getattr the rest."""
    parts = name.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_import_line(node, errors, where):
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] != "repro":
                continue
            if not resolve_dotted(alias.name):
                errors.append(f"{where}: import {alias.name} fails")
    elif isinstance(node, ast.ImportFrom):
        if node.level or not node.module:
            return
        if node.module.split(".")[0] != "repro":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            if not resolve_dotted(f"{node.module}.{alias.name}"):
                errors.append(
                    f"{where}: from {node.module} import {alias.name} fails"
                )


def check_code_fences(text: str, doc: str, errors):
    for lang, body in FENCE_RE.findall(text):
        if lang not in ("python", "py"):
            continue
        # Doc snippets are often fragments; parse line-by-line so one
        # elided `...` doesn't hide the import lines around it.
        for line in body.splitlines():
            stripped = line.strip()
            if not stripped.startswith(("import ", "from ")):
                continue
            try:
                tree = ast.parse(stripped)
            except SyntaxError:
                continue
            for node in tree.body:
                check_import_line(node, errors, doc)


def strip_fences(text: str) -> str:
    return FENCE_RE.sub("", text)


def check_dotted_names(text: str, doc: str, errors):
    for token in BACKTICK_RE.findall(strip_fences(text)):
        for name in DOTTED_RE.findall(token):
            if not resolve_dotted(name):
                errors.append(f"{doc}: `{name}` does not resolve")


def check_paths(text: str, doc_path: pathlib.Path, errors):
    doc = doc_path.relative_to(ROOT).as_posix()
    prose = strip_fences(text)
    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        rel = target.split("#")[0]
        if not rel:
            continue
        if not (doc_path.parent / rel).exists():
            errors.append(f"{doc}: link target {target} missing")
    for token in BACKTICK_RE.findall(prose):
        if PATH_RE.match(token) and not (ROOT / token).exists():
            errors.append(f"{doc}: path `{token}` missing")


TABLE_ROW_RE = re.compile(r"^\|(.+)\|\s*$")
COMPONENT_TOKEN_RE = re.compile(r"^([a-z][a-z-]*):([A-Za-z0-9_.-]+)$")


def _component_registry():
    from repro.scenarios.components import install_default_components
    from repro.scenarios.registry import REGISTRY

    install_default_components()
    return REGISTRY


def check_components(text: str, doc: str, errors):
    """Validate doc-referenced component names against the registry."""
    registry = _component_registry()
    kinds = set(registry.kinds())

    def verify(kind, name, where):
        if not registry.has(kind, name):
            hint = registry.suggest(kind, name)
            extra = f" (did you mean {hint[0]!r}?)" if hint else ""
            errors.append(
                f"{doc}: {where} names unregistered {kind} "
                f"{name!r}{extra}"
            )

    # catalog tables: | kind | name | ... | rows under that header
    in_catalog = False
    for line in text.splitlines():
        match = TABLE_ROW_RE.match(line.strip())
        if not match:
            in_catalog = False
            continue
        cells = [c.strip().strip("`") for c in match.group(1).split("|")]
        if len(cells) >= 2 and cells[0] == "kind" and cells[1] == "name":
            in_catalog = True
            continue
        if not in_catalog or set(cells[0]) <= {"-", " "}:
            continue
        if cells[0] in kinds:
            verify(cells[0], cells[1], "catalog row")

    # backticked kind:name tokens in prose
    for token in BACKTICK_RE.findall(strip_fences(text)):
        match = COMPONENT_TOKEN_RE.match(token)
        if match and match.group(1) in kinds:
            verify(match.group(1), match.group(2), f"`{token}`")


def main(argv=None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    errors = []
    for path in doc_files():
        text = path.read_text()
        doc = path.relative_to(ROOT).as_posix()
        check_code_fences(text, doc, errors)
        check_dotted_names(text, doc, errors)
        check_paths(text, path, errors)
        check_components(text, doc, errors)
    if errors:
        print(f"docs-consistency: {len(errors)} broken reference(s)")
        for err in errors:
            print(f"  {err}")
        return 1
    print(f"docs-consistency: OK ({len(doc_files())} documents)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
