#!/usr/bin/env python
"""Regenerate docs/API.md: the public-API index with one-line summaries.

Run from the repository root::

    python docs/gen_api.py          # rewrite API.md
    python docs/gen_api.py --check  # exit 1 if API.md is stale (CI)
"""

import argparse
import importlib
import inspect
import pathlib
import pkgutil
import sys

import repro

OUT = pathlib.Path(__file__).resolve().parent / "API.md"


def first_line(obj) -> str:
    """First sentence-ish line of an object's docstring."""
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0].strip()


def render() -> str:
    """Walk every repro module and render the index document."""
    lines = [
        "# API index",
        "",
        "Generated from docstrings (`python docs/gen_api.py` regenerates; see",
        "CONTRIBUTING.md).  One line per public item: the first sentence of its",
        "docstring.",
        "",
    ]
    modules = [repro] + [
        importlib.import_module(info.name)
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    for module in modules:
        public = []
        for name, obj in sorted(vars(module).items()):
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            kind = "class" if inspect.isclass(obj) else "def"
            public.append(f"- `{kind} {name}` — {first_line(obj)}")
        if not public:
            continue
        lines += [f"## `{module.__name__}`", "", first_line(module), ""]
        lines += public
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Rewrite API.md, or with ``--check`` verify it is current."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="don't write; exit 1 if docs/API.md differs from a fresh render",
    )
    args = parser.parse_args(argv)
    text = render()
    if args.check:
        current = OUT.read_text() if OUT.exists() else ""
        if current != text:
            print(
                f"{OUT} is stale: regenerate with `python docs/gen_api.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{OUT} is up to date")
        return 0
    OUT.write_text(text)
    print(f"wrote {OUT} ({text.count(chr(10)) + 1} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
