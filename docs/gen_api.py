#!/usr/bin/env python
"""Regenerate docs/API.md: the public-API index with one-line summaries.

Run from the repository root::

    python docs/gen_api.py
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

OUT = pathlib.Path(__file__).resolve().parent / "API.md"


def first_line(obj) -> str:
    """First sentence-ish line of an object's docstring."""
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0].strip()


def main() -> None:
    """Walk every repro module and emit the index."""
    lines = [
        "# API index",
        "",
        "Generated from docstrings (`python docs/gen_api.py` regenerates; see",
        "CONTRIBUTING.md).  One line per public item: the first sentence of its",
        "docstring.",
        "",
    ]
    modules = [repro] + [
        importlib.import_module(info.name)
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    for module in modules:
        public = []
        for name, obj in sorted(vars(module).items()):
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            kind = "class" if inspect.isclass(obj) else "def"
            public.append(f"- `{kind} {name}` — {first_line(obj)}")
        if not public:
            continue
        lines += [f"## `{module.__name__}`", "", first_line(module), ""]
        lines += public
        lines.append("")
    OUT.write_text("\n".join(lines))
    print(f"wrote {OUT} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
