"""The fixed-timestep gateway loop: wall time in, simulated time out.

:class:`Gateway` is the real-time front of the reproduction.  It maps
wall-clock time onto the simulation's integer clock with a fixed
timestep -- each tick is ``tick_seconds`` of wall time and exactly
``steps_per_tick`` simulated steps -- and on every tick it:

1. **paces**: asks the clock to sleep until the tick boundary (a
   :class:`~repro.gateway.clock.VirtualClock` jumps instantly, so the
   identical loop runs in tests at CPU speed);
2. **ingests**: pulls every load-generator arrival due before the new
   simulated boundary into the bounded
   :class:`~repro.gateway.ingest.IngestBuffer`, recording overflow as
   gateway sheds;
3. **dispatches**: drains a batch into the elastic cluster, submitting
   each job at its own intended arrival time (so a gateway run without
   overflow is *equivalent* to the offline ``run_stream`` replay of the
   same trace -- a tested property, not an aspiration);
4. **advances** every shard's scheduler to the boundary;
5. **autoscales**: lets the policy inspect live shard stats and resize
   the active prefix;
6. **publishes** a KPI snapshot to the feed.

Everything downstream of the clock is deterministic, so two seeded
virtual-clock runs produce bit-identical traffic, placements, sheds,
KPIs and profit -- which is how a *real-time* system gets a regression
suite with exact expectations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.elastic import ElasticCluster, ScaleEvent
from repro.cluster.service import ClusterResult
from repro.errors import GatewayError
from repro.gateway.autoscale import Autoscaler
from repro.gateway.clock import Clock, WallClock
from repro.gateway.ingest import DroppedSubmission, IngestBuffer
from repro.gateway.kpi import KpiAggregator, KpiFeed
from repro.gateway.load import LoadGenerator


@dataclass
class GatewayResult:
    """Everything a finished gateway run reports."""

    cluster: ClusterResult
    #: ticks the loop executed
    ticks: int
    #: simulated time at shutdown
    sim_end: int
    #: wall seconds the run took (virtual seconds under a VirtualClock)
    wall_seconds: float
    #: jobs the load generator produced
    generated: int
    #: jobs actually submitted to the cluster
    delivered: int
    #: front-door refusals (ingest-buffer overflow)
    dropped: list[DroppedSubmission]
    #: ``(tick, job_id, shard)`` per delivered job, in delivery order
    submissions: list[tuple[int, int, int]]
    #: autoscaler resize steps actually applied
    scale_events: list[ScaleEvent]
    #: published KPI snapshots, oldest first
    kpis: list[dict[str, Any]] = field(default_factory=list)
    #: ticks that overran their wall deadline (wall clock only)
    late_ticks: int = 0

    @property
    def total_profit(self) -> float:
        """Profit earned across all shards."""
        return self.cluster.total_profit

    @property
    def gateway_shed(self) -> int:
        """Jobs refused at the front door (never reached the cluster)."""
        return len(self.dropped)

    def fingerprint(self) -> str:
        """SHA-256 digest of everything observable about the run.

        Covers the submission order and placement, front-door drops,
        scheduler sheds, per-job completion records (times and exact
        profit bit patterns via ``repr``) and the scale trajectory.
        Two runs are *the same run* iff their fingerprints match -- the
        determinism suite's single-line assertion.
        """
        records = self.cluster.records
        payload = {
            "submissions": self.submissions,
            "dropped": [
                (d.job_id, d.arrival, d.tick, repr(d.profit))
                for d in self.dropped
            ],
            "shed": [
                (s.job_id, s.time, s.reason) for s in self.cluster.shed
            ],
            "records": [
                (
                    records[job_id].job_id,
                    records[job_id].arrival,
                    records[job_id].completion_time,
                    repr(records[job_id].profit),
                )
                for job_id in sorted(records)
            ],
            "scale": [
                (e.time, e.direction, e.k_after, e.moved)
                for e in self.scale_events
            ],
            "profit": repr(self.total_profit),
            "sim_end": self.sim_end,
            "ticks": self.ticks,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def summary(self) -> dict[str, Any]:
        """Flat summary dict (the CLI's and bench's reporting surface)."""
        metrics = self.cluster.metrics
        hists = metrics.histograms()
        latency = hists.get("admission_latency", {})
        return {
            "ticks": self.ticks,
            "sim_end": self.sim_end,
            "wall_seconds": round(self.wall_seconds, 6),
            "generated": self.generated,
            "delivered": self.delivered,
            "gateway_shed": self.gateway_shed,
            "shed": self.cluster.num_shed,
            "completed": sum(
                1 for r in self.cluster.records.values() if r.completed
            ),
            "total_profit": self.total_profit,
            "admission_latency_p50": latency.get("p50"),
            "admission_latency_p99": latency.get("p99"),
            "scale_events": len(self.scale_events),
            "late_ticks": self.late_ticks,
            "fingerprint": self.fingerprint(),
        }


class Gateway:
    """Paced open-loop traffic front for an :class:`ElasticCluster`.

    Parameters
    ----------
    cluster:
        The elastic cluster to serve into (not yet started is fine).
    load:
        The seeded open-loop traffic source.
    clock:
        Time source (default :class:`WallClock`).  Pass a
        :class:`~repro.gateway.clock.VirtualClock` for deterministic
        full-speed runs.
    tick_seconds:
        Wall seconds per tick.
    steps_per_tick:
        Simulated steps that elapse each tick (the wall/sim exchange
        rate).
    buffer_capacity:
        Ingest bound; overflow becomes gateway sheds.
    max_dispatch_per_tick:
        Cap on jobs handed to the cluster per tick (None = drain all
        buffered work every tick).
    autoscaler:
        Optional :class:`~repro.gateway.autoscale.Autoscaler`; when
        None the shard count stays at the cluster's ``k_active``.
    feed:
        Optional :class:`KpiFeed` to publish snapshots on (the SSE
        server consumes this).
    kpi_window, kpi_every:
        Rolling-rate window (snapshots) and publish cadence (ticks).
    """

    def __init__(
        self,
        cluster: ElasticCluster,
        load: LoadGenerator,
        *,
        clock: Optional[Clock] = None,
        tick_seconds: float = 0.05,
        steps_per_tick: int = 20,
        buffer_capacity: int = 4096,
        max_dispatch_per_tick: Optional[int] = None,
        autoscaler: Optional[Autoscaler] = None,
        feed: Optional[KpiFeed] = None,
        kpi_window: int = 20,
        kpi_every: int = 1,
    ) -> None:
        if tick_seconds <= 0:
            raise GatewayError("tick_seconds must be positive")
        if steps_per_tick < 1:
            raise GatewayError("steps_per_tick must be >= 1")
        if max_dispatch_per_tick is not None and max_dispatch_per_tick < 1:
            raise GatewayError("max_dispatch_per_tick must be >= 1")
        if kpi_every < 1:
            raise GatewayError("kpi_every must be >= 1")
        self.cluster = cluster
        self.load = load
        self.clock: Clock = clock if clock is not None else WallClock()
        self.tick_seconds = float(tick_seconds)
        self.steps_per_tick = int(steps_per_tick)
        self.buffer = IngestBuffer(buffer_capacity)
        self.max_dispatch_per_tick = max_dispatch_per_tick
        self.autoscaler = autoscaler
        self.feed = feed
        self.kpi = KpiAggregator(window=kpi_window)
        self.kpi_every = int(kpi_every)

    # ------------------------------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> GatewayResult:
        """Serve the whole stream (or ``max_ticks`` ticks) and drain.

        The loop ends when the generator is exhausted and the ingest
        buffer is empty (or at ``max_ticks``); the cluster then drains
        its queued and in-flight work through ``finish()`` exactly as
        the offline paths do.  The feed, if any, receives one final
        snapshot and is closed.
        """
        cluster = self.cluster
        cluster.start()
        specs = iter(self.load)
        pending = next(specs, None)

        dropped: list[DroppedSubmission] = []
        submissions: list[tuple[int, int, int]] = []
        kpis: list[dict[str, Any]] = []
        generated = 0
        delivered = 0
        late_ticks = 0
        tick = 0
        start_wall = self.clock.now()

        while True:
            if max_ticks is not None and tick >= max_ticks:
                break
            if pending is None and len(self.buffer) == 0 and tick > 0:
                break
            tick += 1
            deadline = start_wall + tick * self.tick_seconds
            self.clock.sleep_until(deadline)
            if self.clock.now() - deadline > self.tick_seconds:
                late_ticks += 1
            boundary = tick * self.steps_per_tick

            # ingest every arrival due strictly before the new boundary
            while pending is not None and pending.arrival < boundary:
                generated += 1
                if not self.buffer.offer(pending):
                    dropped.append(
                        DroppedSubmission(
                            job_id=pending.job_id,
                            arrival=pending.arrival,
                            tick=tick,
                            profit=pending.profit,
                        )
                    )
                pending = next(specs, None)

            # dispatch a batch; each job keeps its intended arrival time
            # (the cluster clamps to its own clock, so order holds)
            for spec in self.buffer.drain(self.max_dispatch_per_tick):
                shard = cluster.submit(spec, t=spec.arrival)
                submissions.append((tick, spec.job_id, shard))
                delivered += 1

            cluster.advance_to(boundary)

            if self.autoscaler is not None:
                target = self.autoscaler.decide(
                    tick, cluster.k_active, cluster.active_stats()
                )
                if target != cluster.k_active:
                    cluster.scale_to(target, t=boundary)

            if tick % self.kpi_every == 0:
                snapshot = self._snapshot(
                    tick, boundary, start_wall, generated, len(dropped)
                )
                kpis.append(snapshot)
                if self.feed is not None:
                    self.feed.publish(snapshot)

        sim_end = tick * self.steps_per_tick
        result = cluster.finish()
        gateway_result = GatewayResult(
            cluster=result,
            ticks=tick,
            sim_end=sim_end,
            wall_seconds=self.clock.now() - start_wall,
            generated=generated,
            delivered=delivered,
            dropped=dropped,
            submissions=submissions,
            scale_events=list(cluster.scale_events),
            kpis=kpis,
            late_ticks=late_ticks,
        )
        if self.feed is not None:
            final = dict(kpis[-1]) if kpis else {}
            final["final"] = True
            final["total_profit"] = gateway_result.total_profit
            self.feed.publish(final)
            self.feed.close()
        return gateway_result

    # ------------------------------------------------------------------
    def _snapshot(
        self,
        tick: int,
        boundary: int,
        start_wall: float,
        generated: int,
        gateway_shed: int,
    ) -> dict[str, Any]:
        cluster = self.cluster
        stats = cluster.active_stats()
        return self.kpi.snapshot(
            tick=tick,
            sim_t=boundary,
            wall_s=self.clock.now() - start_wall,
            metrics=cluster.live_metrics(),
            active_shards=cluster.k_active,
            queue_depth=sum(s.queue_depth for s in stats),
            in_flight=sum(s.in_flight for s in stats),
            generated=generated,
            gateway_shed=gateway_shed,
            buffer_depth=len(self.buffer),
        )
