"""The fixed-timestep gateway loop: wall time in, simulated time out.

:class:`Gateway` is the real-time front of the reproduction.  It maps
wall-clock time onto the simulation's integer clock with a fixed
timestep -- each tick is ``tick_seconds`` of wall time and exactly
``steps_per_tick`` simulated steps -- and on every tick it:

1. **paces**: asks the clock to sleep until the tick boundary (a
   :class:`~repro.gateway.clock.VirtualClock` jumps instantly, so the
   identical loop runs in tests at CPU speed);
2. **ingests**: pulls every load-generator arrival due before the new
   simulated boundary into the bounded
   :class:`~repro.gateway.ingest.IngestBuffer`, recording overflow as
   gateway sheds;
3. **dispatches**: drains a batch into the elastic cluster, submitting
   each job at its own intended arrival time (so a gateway run without
   overflow is *equivalent* to the offline ``run_stream`` replay of the
   same trace -- a tested property, not an aspiration);
4. **advances** every shard's scheduler to the boundary;
5. **autoscales**: lets the policy inspect live shard stats and resize
   the active prefix;
6. **publishes** a KPI snapshot to the feed.

Everything downstream of the clock is deterministic, so two seeded
virtual-clock runs produce bit-identical traffic, placements, sheds,
KPIs and profit -- which is how a *real-time* system gets a regression
suite with exact expectations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.elastic import ElasticCluster, ScaleEvent
from repro.cluster.service import ClusterResult
from repro.core.theory import Constants
from repro.errors import GatewayError, ShardFailedError, ShardTimeoutError
from repro.gateway.autoscale import Autoscaler
from repro.gateway.clock import Clock, WallClock
from repro.gateway.ingest import DroppedSubmission, IngestBuffer, RetryQueue
from repro.gateway.kpi import KpiAggregator, KpiFeed
from repro.gateway.load import LoadGenerator
from repro.service.queue import sns_density
from repro.sim.jobs import JobSpec


@dataclass
class GatewayResult:
    """Everything a finished gateway run reports."""

    cluster: ClusterResult
    #: ticks the loop executed
    ticks: int
    #: simulated time at shutdown
    sim_end: int
    #: wall seconds the run took (virtual seconds under a VirtualClock)
    wall_seconds: float
    #: jobs the load generator produced
    generated: int
    #: jobs actually submitted to the cluster
    delivered: int
    #: front-door refusals (ingest-buffer overflow)
    dropped: list[DroppedSubmission]
    #: ``(tick, job_id, shard)`` per delivered job, in delivery order
    submissions: list[tuple[int, int, int]]
    #: autoscaler resize steps actually applied
    scale_events: list[ScaleEvent]
    #: published KPI snapshots, oldest first
    kpis: list[dict[str, Any]] = field(default_factory=list)
    #: ticks that overran their wall deadline (wall clock only)
    late_ticks: int = 0
    #: submissions redelivered through the retry queue (0 without one)
    retried: int = 0

    @property
    def total_profit(self) -> float:
        """Profit earned across all shards."""
        return self.cluster.total_profit

    @property
    def gateway_shed(self) -> int:
        """Jobs refused at the front door (never reached the cluster)."""
        return len(self.dropped)

    def fingerprint(self) -> str:
        """SHA-256 digest of everything observable about the run.

        Covers the submission order and placement, front-door drops,
        scheduler sheds, per-job completion records (times and exact
        profit bit patterns via ``repr``) and the scale trajectory.
        Two runs are *the same run* iff their fingerprints match -- the
        determinism suite's single-line assertion.
        """
        records = self.cluster.records
        payload = {
            "submissions": self.submissions,
            "dropped": [
                (d.job_id, d.arrival, d.tick, repr(d.profit))
                for d in self.dropped
            ],
            "shed": [
                (s.job_id, s.time, s.reason) for s in self.cluster.shed
            ],
            "records": [
                (
                    records[job_id].job_id,
                    records[job_id].arrival,
                    records[job_id].completion_time,
                    repr(records[job_id].profit),
                )
                for job_id in sorted(records)
            ],
            "scale": [
                (e.time, e.direction, e.k_after, e.moved)
                for e in self.scale_events
            ],
            "profit": repr(self.total_profit),
            "sim_end": self.sim_end,
            "ticks": self.ticks,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def summary(self) -> dict[str, Any]:
        """Flat summary dict (the CLI's and bench's reporting surface)."""
        metrics = self.cluster.metrics
        hists = metrics.histograms()
        latency = hists.get("admission_latency", {})
        return {
            "ticks": self.ticks,
            "sim_end": self.sim_end,
            "wall_seconds": round(self.wall_seconds, 6),
            "generated": self.generated,
            "delivered": self.delivered,
            "gateway_shed": self.gateway_shed,
            "shed": self.cluster.num_shed,
            "completed": sum(
                1 for r in self.cluster.records.values() if r.completed
            ),
            "total_profit": self.total_profit,
            "admission_latency_p50": latency.get("p50"),
            "admission_latency_p99": latency.get("p99"),
            "scale_events": len(self.scale_events),
            "late_ticks": self.late_ticks,
            "retried": self.retried,
            "fingerprint": self.fingerprint(),
        }


class DegradationLadder:
    """Graceful-degradation policy under sustained ingest overload.

    The ladder watches the ingest buffer's fill fraction each tick and
    climbs one rung at a time when it stays above ``enter_fraction``
    for ``patience`` consecutive ticks -- shedding progressively more
    to keep the loop serving -- and steps back down after ``relief``
    consecutive ticks at or below ``exit_fraction``:

    ======  ====================  ======================================
    level   name                  effect
    ======  ====================  ======================================
    0       ``normal``            full service
    1       ``no-tracing``        live tracing paused (observability is
                                  the cheapest thing to shed)
    2       ``shed-low-density``  buffer overflow evicts the lowest-
                                  density job instead of refusing the
                                  newest (the paper's shed order at the
                                  front door)
    3       ``reject``            arrivals refused outright
    ======  ====================  ======================================

    Every transition is traced (the trace is re-enabled just long
    enough when paused) and counted, so post-mortems can reconstruct
    exactly when and why the gateway shed what it shed.  The policy is
    a pure function of the fill-fraction sequence -- seeded runs remain
    bit-reproducible.
    """

    LEVELS = ("normal", "no-tracing", "shed-low-density", "reject")

    def __init__(
        self,
        *,
        enter_fraction: float = 0.75,
        exit_fraction: float = 0.25,
        patience: int = 3,
        relief: int = 10,
    ) -> None:
        if not 0.0 <= exit_fraction < enter_fraction <= 1.0:
            raise GatewayError("need 0 <= exit_fraction < enter_fraction <= 1")
        if patience < 1 or relief < 1:
            raise GatewayError("patience and relief must be >= 1")
        self.enter_fraction = float(enter_fraction)
        self.exit_fraction = float(exit_fraction)
        self.patience = int(patience)
        self.relief = int(relief)
        self.level = 0
        #: (tick, from_level, to_level) per applied transition
        self.transitions: list[tuple[int, int, int]] = []
        self._hot = 0
        self._cool = 0

    @property
    def name(self) -> str:
        """Current rung's name (KPI surface)."""
        return self.LEVELS[self.level]

    def observe(self, fraction: float, tick: int) -> Optional[tuple[int, int]]:
        """Feed one tick's buffer fill fraction; returns the
        ``(from_level, to_level)`` transition it triggered, if any."""
        if fraction >= self.enter_fraction:
            self._hot += 1
            self._cool = 0
        elif fraction <= self.exit_fraction:
            self._cool += 1
            self._hot = 0
        else:
            self._hot = 0
            self._cool = 0
        if self._hot >= self.patience and self.level < len(self.LEVELS) - 1:
            old, self.level = self.level, self.level + 1
            self._hot = 0
            self.transitions.append((tick, old, self.level))
            return (old, self.level)
        if self._cool >= self.relief and self.level > 0:
            old, self.level = self.level, self.level - 1
            self._cool = 0
            self.transitions.append((tick, old, self.level))
            return (old, self.level)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegradationLadder(level={self.name!r}, "
            f"transitions={len(self.transitions)})"
        )


class Gateway:
    """Paced open-loop traffic front for an :class:`ElasticCluster`.

    Parameters
    ----------
    cluster:
        The elastic cluster to serve into (not yet started is fine).
    load:
        The seeded open-loop traffic source.
    clock:
        Time source (default :class:`WallClock`).  Pass a
        :class:`~repro.gateway.clock.VirtualClock` for deterministic
        full-speed runs.
    tick_seconds:
        Wall seconds per tick.
    steps_per_tick:
        Simulated steps that elapse each tick (the wall/sim exchange
        rate).
    buffer_capacity:
        Ingest bound; overflow becomes gateway sheds.
    max_dispatch_per_tick:
        Cap on jobs handed to the cluster per tick (None = drain all
        buffered work every tick).
    autoscaler:
        Optional :class:`~repro.gateway.autoscale.Autoscaler`; when
        None the shard count stays at the cluster's ``k_active``.
    feed:
        Optional :class:`KpiFeed` to publish snapshots on (the SSE
        server consumes this).
    kpi_window, kpi_every:
        Rolling-rate window (snapshots) and publish cadence (ticks).
    retry:
        Optional :class:`~repro.gateway.ingest.RetryQueue`: submissions
        the cluster cannot take (every shard down, or a delivery raises
        mid-failover) are parked and redelivered with deadline-aware
        exponential backoff instead of shed.  ``None`` (default) keeps
        the PR 7 behaviour bit-identical.
    degradation:
        Optional :class:`DegradationLadder` driving graceful
        degradation off the buffer fill fraction.  ``None`` (default)
        disables the ladder.
    """

    def __init__(
        self,
        cluster: ElasticCluster,
        load: LoadGenerator,
        *,
        clock: Optional[Clock] = None,
        tick_seconds: float = 0.05,
        steps_per_tick: int = 20,
        buffer_capacity: int = 4096,
        max_dispatch_per_tick: Optional[int] = None,
        autoscaler: Optional[Autoscaler] = None,
        feed: Optional[KpiFeed] = None,
        kpi_window: int = 20,
        kpi_every: int = 1,
        retry: Optional[RetryQueue] = None,
        degradation: Optional[DegradationLadder] = None,
    ) -> None:
        if tick_seconds <= 0:
            raise GatewayError("tick_seconds must be positive")
        if steps_per_tick < 1:
            raise GatewayError("steps_per_tick must be >= 1")
        if max_dispatch_per_tick is not None and max_dispatch_per_tick < 1:
            raise GatewayError("max_dispatch_per_tick must be >= 1")
        if kpi_every < 1:
            raise GatewayError("kpi_every must be >= 1")
        self.cluster = cluster
        self.load = load
        self.clock: Clock = clock if clock is not None else WallClock()
        self.tick_seconds = float(tick_seconds)
        self.steps_per_tick = int(steps_per_tick)
        self.buffer = IngestBuffer(buffer_capacity)
        self.max_dispatch_per_tick = max_dispatch_per_tick
        self.autoscaler = autoscaler
        self.feed = feed
        self.kpi = KpiAggregator(window=kpi_window)
        self.kpi_every = int(kpi_every)
        self.retry = retry
        self.degradation = degradation
        #: tracer.enabled before the ladder first paused it
        self._trace_baseline: Optional[bool] = None
        self._dropped: list[DroppedSubmission] = []

    # ------------------------------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> GatewayResult:
        """Serve the whole stream (or ``max_ticks`` ticks) and drain.

        The loop ends when the generator is exhausted and the ingest
        buffer is empty (or at ``max_ticks``); the cluster then drains
        its queued and in-flight work through ``finish()`` exactly as
        the offline paths do.  The feed, if any, receives one final
        snapshot and is closed.
        """
        cluster = self.cluster
        cluster.start()
        specs = iter(self.load)
        pending = next(specs, None)

        dropped: list[DroppedSubmission] = []
        self._dropped = dropped  # _submit appends retry-expiry drops
        submissions: list[tuple[int, int, int]] = []
        kpis: list[dict[str, Any]] = []
        generated = 0
        delivered = 0
        late_ticks = 0
        tick = 0
        start_wall = self.clock.now()

        stalled = getattr(cluster, "consume_tick_stall", None)

        while True:
            if max_ticks is not None and tick >= max_ticks:
                break
            if (
                pending is None
                and len(self.buffer) == 0
                and (self.retry is None or len(self.retry) == 0)
                and tick > 0
            ):
                break
            tick += 1
            deadline = start_wall + tick * self.tick_seconds
            self.clock.sleep_until(deadline)
            if self.clock.now() - deadline > self.tick_seconds:
                late_ticks += 1
            boundary = tick * self.steps_per_tick

            # ingest every arrival due strictly before the new boundary
            while pending is not None and pending.arrival < boundary:
                generated += 1
                drop = self._offer(pending, tick)
                if drop is not None:
                    dropped.append(drop)
                pending = next(specs, None)

            # parked retries whose backoff elapsed re-enter the buffer
            # ahead of this tick's dispatch; expiries become drops
            if self.retry is not None:
                ready, expired = self.retry.due(tick, boundary)
                dropped.extend(expired)
                for spec in ready:
                    drop = self._offer(spec, tick)
                    if drop is not None:
                        dropped.append(drop)

            if self.degradation is not None:
                change = self.degradation.observe(
                    len(self.buffer) / self.buffer.capacity, tick
                )
                if change is not None:
                    self._apply_degradation(change, tick, boundary)

            # an injected tick stall freezes dispatch and scheduling for
            # this tick while arrivals keep buffering -- the loop itself
            # is the component under test here
            if stalled is not None and stalled():
                continue

            # dispatch a batch; each job keeps its intended arrival time
            # (the cluster clamps to its own clock, so order holds)
            for spec in self.buffer.drain(self.max_dispatch_per_tick):
                shard = self._submit(spec, tick, boundary)
                if shard is None:
                    continue  # parked for retry (or dropped)
                submissions.append((tick, spec.job_id, shard))
                delivered += 1

            cluster.advance_to(boundary)

            if self.autoscaler is not None:
                target = self.autoscaler.decide(
                    tick, cluster.k_active, cluster.active_stats()
                )
                if target != cluster.k_active:
                    cluster.scale_to(target, t=boundary)

            if tick % self.kpi_every == 0:
                snapshot = self._snapshot(
                    tick, boundary, start_wall, generated, len(dropped)
                )
                kpis.append(snapshot)
                if self.feed is not None:
                    self.feed.publish(snapshot)

        sim_end = tick * self.steps_per_tick
        result = cluster.finish()
        gateway_result = GatewayResult(
            cluster=result,
            ticks=tick,
            sim_end=sim_end,
            wall_seconds=self.clock.now() - start_wall,
            generated=generated,
            delivered=delivered,
            dropped=dropped,
            submissions=submissions,
            scale_events=list(cluster.scale_events),
            kpis=kpis,
            late_ticks=late_ticks,
            retried=self.retry.retried_total if self.retry is not None else 0,
        )
        if self.feed is not None:
            final = dict(kpis[-1]) if kpis else {}
            final["final"] = True
            final["total_profit"] = gateway_result.total_profit
            self.feed.publish(final)
            self.feed.close()
        return gateway_result

    # ------------------------------------------------------------------
    def _submit(
        self, spec: JobSpec, tick: int, boundary: int
    ) -> Optional[int]:
        """Deliver one drained job; park it for retry on cluster failure.

        Returns the shard index on success, ``None`` when the job went
        to the retry queue (or straight to a drop record) instead.
        Without a retry queue this is exactly ``cluster.submit`` -- the
        PR 7 delivery path, failures and all.
        """
        if self.retry is None:
            return self.cluster.submit(spec, t=spec.arrival)
        if not self._cluster_available():
            # park *before* submit: the resilient cluster's own
            # no-healthy-shard path sheds with prejudice, and a shed
            # plus a retry would double-account the job
            drop = self.retry.push(spec, tick, boundary)
            if drop is not None:
                self._dropped.append(drop)
            return None
        try:
            return self.cluster.submit(spec, t=spec.arrival)
        except (ShardFailedError, ShardTimeoutError):
            drop = self.retry.push(spec, tick, boundary)
            if drop is not None:
                self._dropped.append(drop)
            return None

    def _cluster_available(self) -> bool:
        """Whether any active shard can take a delivery right now."""
        return any(s.alive for s in self.cluster.active_stats())

    def _offer(self, spec: JobSpec, tick: int) -> Optional[DroppedSubmission]:
        """Buffer one due arrival under the current degradation rung.

        Returns the drop record when the front door refused someone --
        the newcomer (overflow / reject) or a displaced buffered job
        (shed-low-density) -- and ``None`` when everything fit.
        """
        level = self.degradation.level if self.degradation is not None else 0
        if level >= 3:
            self.buffer.rejected += 1
            return DroppedSubmission(
                job_id=spec.job_id,
                arrival=spec.arrival,
                tick=tick,
                profit=spec.profit,
                reason="degradation-reject",
            )
        if level >= 2:
            evicted = self.buffer.offer_displacing(spec, self._density)
            if evicted is None:
                return None
            return DroppedSubmission(
                job_id=evicted.job_id,
                arrival=evicted.arrival,
                tick=tick,
                profit=evicted.profit,
                reason="degradation-shed",
            )
        if self.buffer.offer(spec):
            return None
        return DroppedSubmission(
            job_id=spec.job_id,
            arrival=spec.arrival,
            tick=tick,
            profit=spec.profit,
        )

    def _density(self, spec: JobSpec) -> float:
        """The paper's shed key v_i, under the shards' machine count."""
        template = self.cluster.shards[0].config
        return sns_density(
            spec, template.m, Constants.from_epsilon(1.0), template.speed
        )

    def _apply_degradation(
        self, change: tuple[int, int], tick: int, boundary: int
    ) -> None:
        """Enact one ladder transition: count it, trace it, and pause or
        resume live tracing as the rung demands."""
        old, new = change
        metrics = getattr(self.cluster, "metrics", None)
        if metrics is not None:
            metrics.inc("degradation_transitions_total")
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None and hasattr(tracer, "enabled"):
            if self._trace_baseline is None:
                self._trace_baseline = bool(tracer.enabled)
            # re-enable just long enough that the transition itself is
            # always on the record, even while tracing is shed
            try:
                tracer.enabled = True
            except AttributeError:  # NullRecorder: stays off
                tracer = None
            if tracer is not None:
                tracer.event(
                    boundary,
                    "degradation",
                    None,
                    {
                        "from": DegradationLadder.LEVELS[old],
                        "to": DegradationLadder.LEVELS[new],
                        "tick": tick,
                    },
                )
                tracer.enabled = self._trace_baseline and new < 1

    # ------------------------------------------------------------------
    def _snapshot(
        self,
        tick: int,
        boundary: int,
        start_wall: float,
        generated: int,
        gateway_shed: int,
    ) -> dict[str, Any]:
        cluster = self.cluster
        stats = cluster.active_stats()
        supervisor = getattr(cluster, "supervisor", None)
        degraded = len(supervisor.degraded) if supervisor is not None else 0
        level = (
            self.degradation.name if self.degradation is not None else "normal"
        )
        return self.kpi.snapshot(
            tick=tick,
            sim_t=boundary,
            wall_s=self.clock.now() - start_wall,
            metrics=cluster.live_metrics(),
            active_shards=cluster.k_active,
            queue_depth=sum(s.queue_depth for s in stats),
            in_flight=sum(s.in_flight for s in stats),
            generated=generated,
            gateway_shed=gateway_shed,
            buffer_depth=len(self.buffer),
            degraded_shards=degraded,
            degradation=level,
        )
