"""Real-time open-loop traffic gateway over the elastic cluster.

Turns the batch-replay reproduction into a *service*: a fixed-timestep
loop maps wall-clock time onto the simulation's integer clock, seeded
arrival processes (Poisson, diurnal, flash-crowd, heavy-tailed user
sessions) generate open-loop traffic, a bounded ingest buffer applies
front-door backpressure, a hysteresis autoscaler resizes the active
shard prefix live, and a KPI aggregator publishes rolling profit rate,
shed fraction and p50/p99 admission latency on an SSE/JSONL feed.

Because all timing flows through a swappable :class:`Clock`, the same
loop runs paced against the wall clock in production mode and at full
CPU speed under a :class:`VirtualClock` in tests -- where seeded runs
are bit-identical, autoscaling included.

Package map
-----------
* :mod:`repro.gateway.clock` -- the wall/virtual time seam.
* :mod:`repro.gateway.load` -- seeded open-loop traffic generation.
* :mod:`repro.gateway.ingest` -- bounded front-door buffering and
  deadline-aware retry with seeded backoff jitter.
* :mod:`repro.gateway.autoscale` -- hysteresis shard-count control.
* :mod:`repro.gateway.kpi` -- KPI snapshots and the fan-out feed.
* :mod:`repro.gateway.server` -- stdlib HTTP/SSE serving of the feed.
* :mod:`repro.gateway.gateway` -- the fixed-timestep loop itself.
* :mod:`repro.gateway.cli` -- the ``repro-gateway`` console script.
"""

from repro.gateway.autoscale import Autoscaler, ScaleDecision
from repro.gateway.clock import Clock, VirtualClock, WallClock
from repro.gateway.gateway import DegradationLadder, Gateway, GatewayResult
from repro.gateway.ingest import DroppedSubmission, IngestBuffer, RetryQueue
from repro.gateway.kpi import KpiAggregator, KpiFeed
from repro.gateway.load import (
    ARRIVAL_PROCESSES,
    LoadConfig,
    LoadGenerator,
)
from repro.gateway.server import KpiServer

__all__ = [
    "ARRIVAL_PROCESSES",
    "Autoscaler",
    "Clock",
    "DegradationLadder",
    "DroppedSubmission",
    "Gateway",
    "GatewayResult",
    "IngestBuffer",
    "KpiAggregator",
    "KpiFeed",
    "KpiServer",
    "LoadConfig",
    "LoadGenerator",
    "RetryQueue",
    "ScaleDecision",
    "VirtualClock",
    "WallClock",
]
