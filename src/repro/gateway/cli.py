"""``repro-gateway``: serve open-loop traffic through the elastic cluster.

Generates a seeded open-loop traffic stream (Poisson, diurnal,
flash-crowd, or heavy-tailed sessions), paces it through the
fixed-timestep :class:`~repro.gateway.gateway.Gateway` into an
:class:`~repro.cluster.elastic.ElasticCluster`, optionally autoscales
the active shard count, and prints per-tick progress plus a final
summary.  ``--serve PORT`` exposes the live KPI feed over HTTP
(``/kpi`` SSE, ``/kpi.jsonl``, ``/healthz``) while the run is going.

Example -- a flash crowd against 2-of-4 active shards, autoscaling on,
at full CPU speed (virtual clock), KPI history written as JSONL::

    repro-gateway --n-jobs 4000 --m 16 --process flash-crowd \\
        --shards-initial 2 --shards-max 4 --autoscale \\
        --clock virtual --kpi kpi.jsonl

Drop ``--clock virtual`` to pace the same run in real time, and add
``--serve 8787`` to watch ``curl -N localhost:8787/kpi`` while it runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cluster.config import ShardConfig
from repro.cluster.elastic import ElasticCluster
from repro.errors import ScenarioError
from repro.gateway.autoscale import Autoscaler
from repro.gateway.clock import VirtualClock, WallClock
from repro.gateway.gateway import Gateway
from repro.gateway.kpi import KpiFeed
from repro.gateway.load import ARRIVAL_PROCESSES, LoadConfig, LoadGenerator
from repro.gateway.server import KpiServer
from repro.service.queue import SHED_POLICIES
from repro.sim.backends import SERVICE_BACKENDS


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-gateway`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description=(
            "Pace an open-loop traffic stream through the elastic "
            "sharded scheduling cluster in (wall or virtual) real time."
        ),
    )
    wl = parser.add_argument_group("traffic")
    wl.add_argument("--n-jobs", type=int, default=2000, help="number of jobs")
    wl.add_argument("--m", type=int, default=16, help="total machines")
    wl.add_argument(
        "--load", type=float, default=1.0, help="offered load (1.0 = capacity)"
    )
    wl.add_argument(
        "--process",
        choices=sorted(ARRIVAL_PROCESSES),
        default="poisson",
        help="arrival process shape",
    )
    wl.add_argument(
        "--family", default="mixed", help="DAG family (or 'mixed')"
    )
    wl.add_argument(
        "--epsilon", type=float, default=1.0, help="slack parameter epsilon"
    )
    wl.add_argument("--seed", type=int, default=0, help="traffic RNG seed")
    wl.add_argument(
        "--period", type=int, default=400, help="diurnal sinusoid period"
    )
    wl.add_argument(
        "--amplitude", type=float, default=0.6, help="diurnal rate swing"
    )
    wl.add_argument(
        "--spike-fraction", type=float, default=0.2,
        help="flash-crowd: fraction of jobs in the spike",
    )
    wl.add_argument(
        "--session-alpha", type=float, default=1.5,
        help="sessions: Pareto tail exponent (> 1)",
    )

    gw = parser.add_argument_group("gateway")
    gw.add_argument(
        "--clock",
        choices=["wall", "virtual"],
        default="wall",
        help="pace against the wall clock, or run at CPU speed",
    )
    gw.add_argument(
        "--tick", type=float, default=0.05, metavar="S",
        help="wall seconds per gateway tick",
    )
    gw.add_argument(
        "--steps-per-tick", type=int, default=20, metavar="N",
        help="simulated steps per tick (the wall/sim exchange rate)",
    )
    gw.add_argument(
        "--buffer", type=int, default=4096, metavar="N",
        help="ingest buffer bound (overflow = gateway shed)",
    )
    gw.add_argument(
        "--max-dispatch", type=int, default=None, metavar="N",
        help="cap on jobs dispatched per tick (default: drain all)",
    )
    gw.add_argument(
        "--max-ticks", type=int, default=None, metavar="N",
        help="stop the loop after N ticks even if traffic remains",
    )

    cl = parser.add_argument_group("cluster")
    cl.add_argument(
        "--shards-max", type=int, default=4, metavar="K",
        help="shard units built (scale-up ceiling; m must divide)",
    )
    cl.add_argument(
        "--shards-initial", type=int, default=None, metavar="K",
        help="active shards at start (default: shards-max)",
    )
    cl.add_argument(
        "--router",
        default=None,
        help="shard placement policy (default: least-loaded, or "
        "band-aware when --coordinate is on)",
    )
    cl.add_argument(
        "--coordinate", action="store_true",
        help="attach the cluster-wide band-aware coordinator to the "
        "elastic cluster (see docs/SCHEDULING.md); scale events "
        "invalidate its ledger automatically",
    )
    cl.add_argument(
        "--scheduler",
        default="sns",
        help="per-shard scheduling policy (any registered scheduler)",
    )
    cl.add_argument(
        "--capacity", type=int, default=128,
        help="per-shard ingest queue capacity",
    )
    cl.add_argument(
        "--policy",
        choices=sorted(SHED_POLICIES),
        default="reject-lowest-density",
        help="per-shard shed policy",
    )
    cl.add_argument(
        "--max-in-flight", type=int, default=None,
        help="per-shard cap on jobs inside the engine",
    )
    cl.add_argument(
        "--engine",
        choices=sorted(SERVICE_BACKENDS),
        default="event",
        help="per-shard engine backend (bit-identical; 'array' is the"
        " numpy core)",
    )

    sc = parser.add_argument_group("autoscaling")
    sc.add_argument(
        "--autoscale", action="store_true",
        help="let the hysteresis autoscaler drive the shard count",
    )
    sc.add_argument(
        "--shards-min", type=int, default=1, metavar="K",
        help="autoscaler floor on active shards",
    )
    sc.add_argument(
        "--high-water", type=float, default=2.0,
        help="per-shard backlog that costs as overload",
    )
    sc.add_argument(
        "--up-patience", type=int, default=1,
        help="consecutive up-votes before a scale-up commits",
    )
    sc.add_argument(
        "--down-patience", type=int, default=60,
        help="consecutive down-votes before a scale-down commits",
    )
    sc.add_argument(
        "--cooldown", type=int, default=20,
        help="ticks after a resize during which no change commits",
    )

    out = parser.add_argument_group("output")
    out.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve the live KPI feed over HTTP (0 = pick a free port)",
    )
    out.add_argument(
        "--kpi", default=None, metavar="PATH",
        help="write the KPI snapshot history to PATH as JSONL",
    )
    out.add_argument(
        "--kpi-every", type=int, default=1, metavar="N",
        help="publish a KPI snapshot every N ticks",
    )
    out.add_argument(
        "--report-every", type=int, default=0, metavar="N",
        help="print a progress line every N ticks (0 = quiet)",
    )

    spec = parser.add_argument_group("scenario")
    spec.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="run this scenario spec (.toml/.json) instead of the flags",
    )
    spec.add_argument(
        "--dump-scenario", action="store_true",
        help="print the flags as a canonical scenario TOML and exit",
    )
    return parser


def _registry():
    """The shared component registry, fully populated."""
    from repro.scenarios.components import install_default_components
    from repro.scenarios.registry import REGISTRY

    install_default_components()
    return REGISTRY


def _spec_from_args(args: argparse.Namespace):
    """Map the flag namespace onto an equivalent :class:`ScenarioSpec`."""
    from repro.scenarios.spec import ScenarioSpec

    return ScenarioSpec.from_dict(
        {
            "scenario": {
                "name": "repro-gateway",
                "mode": "gateway",
                "seed": args.seed,
            },
            "workload": {
                "kind": "open-loop",
                "n_jobs": args.n_jobs,
                "m": args.m,
                "load": args.load,
                "family": args.family,
                "epsilon": args.epsilon,
                "process": args.process,
                "period": args.period,
                "amplitude": args.amplitude,
                "spike_fraction": args.spike_fraction,
                "session_alpha": args.session_alpha,
            },
            "scheduler": {"name": args.scheduler},
            "engine": {"backend": args.engine},
            "service": {
                "capacity": args.capacity,
                "shed_policy": args.policy,
                "max_in_flight": args.max_in_flight or 0,
            },
            "cluster": {
                "router": args.router or "",
                "mode": "inprocess",  # ElasticCluster's default; no flag
                "coordinate": args.coordinate,
            },
            "gateway": {
                "clock": args.clock,
                "tick": args.tick,
                "steps_per_tick": args.steps_per_tick,
                "buffer": args.buffer,
                "max_dispatch": args.max_dispatch or 0,
                "max_ticks": args.max_ticks or 0,
                "shards_max": args.shards_max,
                "shards_initial": args.shards_initial or 0,
                "kpi_every": args.kpi_every,
            },
            "autoscale": {
                "enabled": args.autoscale,
                "shards_min": args.shards_min,
                "high_water": args.high_water,
                "up_patience": args.up_patience,
                "down_patience": args.down_patience,
                "cooldown": args.cooldown,
            },
        }
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-gateway`` console script."""
    args = build_parser().parse_args(argv)
    if args.scenario:
        from repro.scenarios.cli import main as scenario_main

        return scenario_main(["run", args.scenario])
    try:
        if args.dump_scenario:
            sys.stdout.write(_spec_from_args(args).to_toml())
            return 0
        _registry().get("scheduler", args.scheduler)
        if args.router is not None:
            _registry().get("router", args.router)
    except ScenarioError as exc:
        print(f"repro-gateway: {exc}", file=sys.stderr)
        return 2
    load = LoadGenerator(
        LoadConfig(
            n_jobs=args.n_jobs,
            m=args.m,
            load=args.load,
            family=args.family,
            epsilon=args.epsilon,
            seed=args.seed,
            process=args.process,
            period=args.period,
            amplitude=args.amplitude,
            spike_fraction=args.spike_fraction,
            session_alpha=args.session_alpha,
        )
    )
    component = _registry().get("scheduler", args.scheduler)
    scheduler_kwargs = (
        {"epsilon": args.epsilon}
        if component.meta.get("accepts_epsilon")
        else {}
    )
    cluster = ElasticCluster(
        m=args.m,
        k_max=args.shards_max,
        k_initial=args.shards_initial,
        config=ShardConfig(
            m=1,  # overridden per shard by the machine partition
            scheduler=args.scheduler,
            scheduler_kwargs=scheduler_kwargs,
            capacity=args.capacity,
            shed_policy=args.policy,
            max_in_flight=args.max_in_flight,
            engine=args.engine,
        ),
        router=args.router
        or ("band-aware" if args.coordinate else "least-loaded"),
    )
    if args.coordinate:
        from repro.cluster import coordinate

        coordinate(cluster)
    autoscaler = None
    if args.autoscale:
        autoscaler = Autoscaler(
            k_min=args.shards_min,
            k_max=args.shards_max,
            high_water=args.high_water,
            up_patience=args.up_patience,
            down_patience=args.down_patience,
            cooldown=args.cooldown,
        )
    feed = KpiFeed()
    clock = VirtualClock() if args.clock == "virtual" else WallClock()
    gateway = Gateway(
        cluster,
        load,
        clock=clock,
        tick_seconds=args.tick,
        steps_per_tick=args.steps_per_tick,
        buffer_capacity=args.buffer,
        max_dispatch_per_tick=args.max_dispatch,
        autoscaler=autoscaler,
        feed=feed,
        kpi_every=args.kpi_every,
    )
    server = None
    if args.serve is not None:
        server = KpiServer(feed, port=args.serve).start()
        print(f"kpi feed:        {server.url}/kpi", flush=True)
    print(
        f"repro-gateway: {args.n_jobs} jobs, m={args.m}, "
        f"process={args.process}, load={args.load}, "
        f"shards={cluster.k_active}/{args.shards_max}, "
        f"clock={args.clock}, tick={args.tick}s "
        f"x {args.steps_per_tick} steps, "
        f"autoscale={'on' if autoscaler else 'off'}",
        flush=True,
    )
    if args.report_every:
        reporter = _Reporter(feed, args.report_every)
        reporter.start()
    try:
        result = gateway.run(max_ticks=args.max_ticks)
    finally:
        if server is not None:
            server.stop()

    summary = result.summary()
    scale_path = " -> ".join(
        str(k)
        for k in [
            result.scale_events[0].k_before if result.scale_events else
            cluster.k_active
        ]
        + [e.k_after for e in result.scale_events]
    )
    print("---")
    print(f"ticks:           {summary['ticks']}")
    print(f"sim_end:         {summary['sim_end']}")
    print(f"wall_seconds:    {summary['wall_seconds']:.3f}")
    print(f"generated:       {summary['generated']}")
    print(f"delivered:       {summary['delivered']}")
    print(f"gateway_shed:    {summary['gateway_shed']}")
    print(f"shed:            {summary['shed']}")
    print(f"completed:       {summary['completed']}")
    print(f"total_profit:    {summary['total_profit']:.4f}")
    p99 = summary["admission_latency_p99"]
    print(
        "admission_p99:   "
        + ("n/a" if p99 is None else f"{p99:.1f} steps")
    )
    print(f"scale_events:    {summary['scale_events']} ({scale_path})")
    print(f"late_ticks:      {summary['late_ticks']}")
    print(f"fingerprint:     {summary['fingerprint']}")
    if args.kpi:
        feed.write_jsonl(args.kpi)
        print(f"kpi written:     {args.kpi} ({len(feed.history())} snapshots)")
    return 0


class _Reporter:
    """Print a progress line per N published KPI snapshots.

    Runs on its own thread consuming the feed like any other client, so
    progress reporting exercises exactly the consumer path the SSE
    server uses.
    """

    def __init__(self, feed: KpiFeed, every: int) -> None:
        self.feed = feed
        self.every = every

    def start(self) -> None:
        import threading

        threading.Thread(target=self._run, daemon=True).start()

    def _run(self) -> None:
        last = 0
        while True:
            events = self.feed.wait_for(last, timeout=0.5)
            if not events:
                if self.feed.closed:
                    return
                continue
            for seq, snap in events:
                last = seq
                if snap.get("final") or snap["tick"] % self.every:
                    continue
                print(
                    f"tick={snap['tick']:>6d}  t={snap['sim_t']:>8d}  "
                    f"shards={snap['active_shards']}  "
                    f"depth={snap['queue_depth']}  "
                    f"buffered={snap['buffer_depth']}  "
                    f"shed={snap['shed_fraction']:.3f}  "
                    f"profit={snap['profit_total']:.2f}",
                    flush=True,
                )


if __name__ == "__main__":
    sys.exit(main())
