"""Bounded ingest buffering between the traffic front and the cluster.

The gateway never hands an unbounded burst straight to the cluster: due
arrivals first land in an :class:`IngestBuffer`, a bounded FIFO, and the
dispatch stage drains it in per-tick batches.  The bound is the
gateway's *backpressure* mechanism -- when an open-loop flash crowd
outruns dispatch, `offer` starts refusing and the refused submissions
are recorded as :class:`DroppedSubmission` gateway sheds (distinct from
the scheduler's *admission-control* sheds, which are decisions about
jobs the cluster actually saw).  Keeping the two shed kinds separate is
what lets the KPI feed say "the front door turned users away" vs "S
declined unprofitable work".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import GatewayError
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class DroppedSubmission:
    """One job refused at the gateway's front door (buffer overflow)."""

    job_id: int
    #: the job's intended arrival time (simulated steps)
    arrival: int
    #: gateway tick on which the drop happened
    tick: int
    #: forgone profit
    profit: float


class IngestBuffer:
    """Bounded FIFO of :class:`JobSpec` awaiting dispatch.

    Single-threaded by design: the gateway loop is the only producer
    and the only consumer, so there is no locking -- determinism comes
    for free.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise GatewayError("ingest buffer capacity must be >= 1")
        self.capacity = capacity
        self._queue: deque[JobSpec] = deque()
        #: lifetime accepted submissions
        self.accepted = 0
        #: lifetime refused submissions
        self.rejected = 0
        #: high-water mark of buffered depth
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Jobs currently buffered."""
        return len(self._queue)

    def offer(self, spec: JobSpec) -> bool:
        """Accept ``spec`` if there is room; return ``False`` on overflow."""
        if len(self._queue) >= self.capacity:
            self.rejected += 1
            return False
        self._queue.append(spec)
        self.accepted += 1
        if len(self._queue) > self.peak_depth:
            self.peak_depth = len(self._queue)
        return True

    def drain(self, max_n: Optional[int] = None) -> list[JobSpec]:
        """Pop up to ``max_n`` buffered jobs in FIFO order (all if None)."""
        n = len(self._queue) if max_n is None else min(max_n, len(self._queue))
        return [self._queue.popleft() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestBuffer(depth={self.depth}/{self.capacity}, "
            f"accepted={self.accepted}, rejected={self.rejected})"
        )
