"""Bounded ingest buffering between the traffic front and the cluster.

The gateway never hands an unbounded burst straight to the cluster: due
arrivals first land in an :class:`IngestBuffer`, a bounded FIFO, and the
dispatch stage drains it in per-tick batches.  The bound is the
gateway's *backpressure* mechanism -- when an open-loop flash crowd
outruns dispatch, `offer` starts refusing and the refused submissions
are recorded as :class:`DroppedSubmission` gateway sheds (distinct from
the scheduler's *admission-control* sheds, which are decisions about
jobs the cluster actually saw).  Keeping the two shed kinds separate is
what lets the KPI feed say "the front door turned users away" vs "S
declined unprofitable work".
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import GatewayError
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class DroppedSubmission:
    """One job refused at the gateway's front door."""

    job_id: int
    #: the job's intended arrival time (simulated steps)
    arrival: int
    #: gateway tick on which the drop happened
    tick: int
    #: forgone profit
    profit: float
    #: why the front door refused: ``"buffer-overflow"`` (bounded
    #: ingest), ``"retry-expired"`` (deadline or attempt budget spent
    #: while the cluster was unavailable), ``"degradation-shed"``
    #: (lowest-density displacement under overload) or
    #: ``"degradation-reject"`` (ladder's last rung)
    reason: str = "buffer-overflow"


class IngestBuffer:
    """Bounded FIFO of :class:`JobSpec` awaiting dispatch.

    Single-threaded by design: the gateway loop is the only producer
    and the only consumer, so there is no locking -- determinism comes
    for free.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise GatewayError("ingest buffer capacity must be >= 1")
        self.capacity = capacity
        self._queue: deque[JobSpec] = deque()
        #: lifetime accepted submissions
        self.accepted = 0
        #: lifetime refused submissions
        self.rejected = 0
        #: high-water mark of buffered depth
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Jobs currently buffered."""
        return len(self._queue)

    def offer(self, spec: JobSpec) -> bool:
        """Accept ``spec`` if there is room; return ``False`` on overflow."""
        if len(self._queue) >= self.capacity:
            self.rejected += 1
            return False
        self._queue.append(spec)
        self.accepted += 1
        if len(self._queue) > self.peak_depth:
            self.peak_depth = len(self._queue)
        return True

    def offer_displacing(
        self, spec: JobSpec, key: Callable[[JobSpec], float]
    ) -> Optional[JobSpec]:
        """Offer with lowest-``key`` displacement (degradation rung 2).

        With room the job is simply accepted (returns ``None``).  On
        overflow the *lowest-key* job loses -- the paper's shed order
        applied at the front door: if the incoming job keys at or below
        every buffered job it is refused itself; otherwise the cheapest
        buffered job is evicted to make room.  Returns whichever job
        was dropped.  Ties break toward the lower ``job_id``
        (deterministic).
        """
        if len(self._queue) < self.capacity:
            self._queue.append(spec)
            self.accepted += 1
            if len(self._queue) > self.peak_depth:
                self.peak_depth = len(self._queue)
            return None
        victim_at = min(
            range(len(self._queue)),
            key=lambda i: (key(self._queue[i]), self._queue[i].job_id),
        )
        victim = self._queue[victim_at]
        self.rejected += 1
        if (key(spec), spec.job_id) <= (key(victim), victim.job_id):
            return spec
        del self._queue[victim_at]
        self._queue.append(spec)
        self.accepted += 1
        return victim

    def drain(self, max_n: Optional[int] = None) -> list[JobSpec]:
        """Pop up to ``max_n`` buffered jobs in FIFO order (all if None)."""
        n = len(self._queue) if max_n is None else min(max_n, len(self._queue))
        return [self._queue.popleft() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestBuffer(depth={self.depth}/{self.capacity}, "
            f"accepted={self.accepted}, rejected={self.rejected})"
        )


class RetryQueue:
    """Deadline-aware redelivery of submissions the cluster refused.

    When every shard is down (or a delivery raises mid-failover), the
    gateway parks the job here instead of shedding it.  Each job gets
    exponential backoff in *ticks* with seeded multiplicative jitter --
    ``min(max_ticks, base_ticks * 2**attempts) * (1 + U(0, jitter))``
    -- so redelivery does not hammer a recovering cluster in lockstep,
    yet two runs with the same seed retry on identical ticks.  A retry
    is abandoned (a ``"retry-expired"`` :class:`DroppedSubmission`)
    once the job's deadline has passed in simulated time -- redelivering
    it could only produce an expiry -- or its attempt budget is spent.
    """

    def __init__(
        self,
        *,
        base_ticks: int = 1,
        max_ticks: int = 64,
        jitter: float = 0.5,
        max_attempts: int = 8,
        seed: int = 0,
    ) -> None:
        if base_ticks < 1 or max_ticks < base_ticks:
            raise GatewayError("need 1 <= base_ticks <= max_ticks")
        if jitter < 0:
            raise GatewayError("jitter must be >= 0")
        if max_attempts < 1:
            raise GatewayError("max_attempts must be >= 1")
        self.base_ticks = int(base_ticks)
        self.max_ticks = int(max_ticks)
        self.jitter = float(jitter)
        self.max_attempts = int(max_attempts)
        self._rng = random.Random(seed)
        # (due_tick, insertion order, spec) -- order keeps sorting total
        self._items: list[tuple[int, int, JobSpec]] = []
        self._order = 0
        self._attempts: dict[int, int] = {}
        #: lifetime jobs handed back for redelivery
        self.retried_total = 0
        #: lifetime jobs abandoned (deadline/attempts)
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(
        self, spec: JobSpec, tick: int, sim_t: int
    ) -> Optional[DroppedSubmission]:
        """Park one refused submission; returns a drop record when the
        job is abandoned instead (deadline passed or budget spent)."""
        attempts = self._attempts.get(spec.job_id, 0)
        if attempts >= self.max_attempts or self._expired(spec, sim_t):
            self._attempts.pop(spec.job_id, None)
            self.expired_total += 1
            return DroppedSubmission(
                job_id=spec.job_id,
                arrival=spec.arrival,
                tick=tick,
                profit=spec.profit,
                reason="retry-expired",
            )
        self._attempts[spec.job_id] = attempts + 1
        backoff = min(self.max_ticks, self.base_ticks * (2**attempts))
        backoff *= 1.0 + self._rng.random() * self.jitter
        due = tick + max(1, int(backoff))
        self._items.append((due, self._order, spec))
        self._order += 1
        return None

    def due(
        self, tick: int, sim_t: int
    ) -> tuple[list[JobSpec], list[DroppedSubmission]]:
        """Jobs whose backoff elapsed by ``tick``: ready for redelivery,
        plus the ones whose deadline expired while parked."""
        ready: list[JobSpec] = []
        expired: list[DroppedSubmission] = []
        keep: list[tuple[int, int, JobSpec]] = []
        for item in sorted(self._items):
            duetick, _, spec = item
            if duetick > tick:
                keep.append(item)
            elif self._expired(spec, sim_t):
                self._attempts.pop(spec.job_id, None)
                self.expired_total += 1
                expired.append(
                    DroppedSubmission(
                        job_id=spec.job_id,
                        arrival=spec.arrival,
                        tick=tick,
                        profit=spec.profit,
                        reason="retry-expired",
                    )
                )
            else:
                self.retried_total += 1
                ready.append(spec)
        self._items = keep
        return ready, expired

    @staticmethod
    def _expired(spec: JobSpec, sim_t: int) -> bool:
        return spec.deadline is not None and sim_t >= spec.deadline

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryQueue(pending={len(self._items)}, "
            f"retried={self.retried_total}, expired={self.expired_total})"
        )
