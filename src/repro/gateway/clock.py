"""Wall-clock pacing behind a swappable clock protocol.

The gateway loop never calls ``time.time`` or ``time.sleep`` directly:
it asks a :class:`Clock` what time it is and asks it to sleep until the
next tick boundary.  :class:`WallClock` binds those to the monotonic
wall clock for real-time serving; :class:`VirtualClock` advances a
counter instantly, so the *same* gateway loop -- same tick boundaries,
same submission batches, same autoscaling decisions -- runs in tests
and benchmarks at full CPU speed and is bit-reproducible.  This is the
seam that makes a real-time system testable without sleeping.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the gateway needs from a time source."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one run)."""
        ...  # pragma: no cover - protocol

    def sleep_until(self, deadline: float) -> None:
        """Block until ``now() >= deadline`` (never raises on the past)."""
        ...  # pragma: no cover - protocol


class WallClock:
    """Real time: ``time.monotonic`` plus real ``time.sleep``.

    ``time.monotonic`` (not ``time.time``) so NTP step adjustments
    mid-run cannot make tick deadlines jump backwards or pile up.
    """

    def now(self) -> float:
        """Seconds on the monotonic wall clock."""
        return time.monotonic()

    def sleep_until(self, deadline: float) -> None:
        """Sleep off the remaining time to ``deadline``, if any."""
        remaining = deadline - time.monotonic()
        if remaining > 0:
            time.sleep(remaining)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WallClock()"


class VirtualClock:
    """Deterministic clock: sleeping *is* advancing.

    ``sleep_until`` sets the current time to the deadline instantly, so
    a paced gateway run takes CPU time only, while every piece of logic
    that reads the clock sees exactly the timeline a wall-clock run at
    the same tick length would have seen.  Starting time defaults to 0
    for readable timestamps in tests and KPI feeds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def sleep_until(self, deadline: float) -> None:
        """Jump the virtual clock forward (never backward)."""
        if deadline > self._now:
            self._now = float(deadline)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.3f})"
