"""Open-loop load generation: timestamped job streams shaped like users.

A :class:`LoadGenerator` materializes a seeded, reproducible stream of
:class:`~repro.sim.jobs.JobSpec` submissions from one of four arrival
processes -- the closed-loop workload suite's DAG/deadline/profit
machinery under arrival shapes real traffic has:

* ``"poisson"`` -- memoryless baseline (the suite's default shape);
* ``"diurnal"`` -- sinusoidal-rate thinning
  (:func:`~repro.workloads.arrivals.diurnal_arrivals`): day/night
  swings the autoscaler should ride;
* ``"flash-crowd"`` -- Poisson background plus a simultaneous spike
  (:func:`~repro.workloads.arrivals.spike_arrivals`): the overload
  front admission control exists for;
* ``"sessions"`` -- heavy-tailed user sessions
  (:func:`~repro.workloads.arrivals.session_arrivals`): Pareto session
  lengths, per-session job trains, self-similar bursts.

``load`` is offered work relative to machine capacity exactly as in
:class:`~repro.workloads.suite.WorkloadConfig` (1.0 = saturation), so
"serve 0.8x saturation for five minutes" is one config field.  The
stream is *open-loop*: arrival times are fixed by the seed alone and
never react to how the cluster is doing -- the defining property of
traffic from millions of independent users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec
from repro.workloads.arrivals import (
    diurnal_arrivals,
    poisson_arrivals,
    session_arrivals,
    spike_arrivals,
)
from repro.workloads.dag_families import make_family
from repro.workloads.deadlines import slack_deadline, tight_deadline
from repro.workloads.profits import make_profit_sampler

#: Arrival processes :class:`LoadGenerator` understands.
ARRIVAL_PROCESSES = ("poisson", "diurnal", "flash-crowd", "sessions")


@dataclass
class LoadConfig:
    """Declarative description of one open-loop traffic stream.

    The workload fields (``n_jobs`` .. ``profit``) mirror
    :class:`~repro.workloads.suite.WorkloadConfig`; the ``process``
    field selects the arrival shape and the remaining fields are its
    knobs (unused knobs are ignored).
    """

    n_jobs: int = 1000
    m: int = 8
    #: offered load relative to capacity (1.0 = saturation)
    load: float = 1.0
    family: str = "mixed"
    epsilon: float = 1.0
    deadline_policy: str = "slack"
    slack_range: tuple[float, float] = (1.0, 2.0)
    tight_factor: float = 1.0
    profit: str = "uniform"
    seed: int = 0
    family_kwargs: dict = field(default_factory=dict)
    profit_kwargs: dict = field(default_factory=dict)

    #: arrival shape (see :data:`ARRIVAL_PROCESSES`)
    process: str = "poisson"
    #: diurnal: sinusoid period in simulated steps
    period: int = 400
    #: diurnal: rate swing fraction in [0, 1]
    amplitude: float = 0.6
    #: flash-crowd: fraction of jobs arriving in the spike
    spike_fraction: float = 0.2
    #: flash-crowd: spike time (default: 40% through the background)
    spike_at: Optional[int] = None
    #: sessions: Pareto tail exponent (session length; must be > 1)
    session_alpha: float = 1.5
    #: sessions: within-session job rate (default: the overall rate)
    session_within_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"unknown arrival process {self.process!r}; "
                f"known: {sorted(ARRIVAL_PROCESSES)}"
            )
        if self.n_jobs < 0:
            raise WorkloadError("n_jobs must be non-negative")
        if self.load <= 0:
            raise WorkloadError("load must be positive")
        if not 0.0 <= self.spike_fraction < 1.0:
            raise WorkloadError("spike_fraction must be in [0, 1)")


class LoadGenerator:
    """Seeded iterator of timestamped :class:`JobSpec` submissions.

    The whole stream is a deterministic function of the config: same
    seed, same traffic, bit for bit -- the property the gateway
    determinism suite pins.  Specs are yielded in the online order
    ``(arrival, job_id)``.
    """

    def __init__(self, config: LoadConfig) -> None:
        self.config = config
        self._specs: Optional[list[JobSpec]] = None

    # ------------------------------------------------------------------
    def specs(self) -> list[JobSpec]:
        """Materialize (and cache) the full stream."""
        if self._specs is None:
            self._specs = self._generate()
        return self._specs

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.specs())

    def __len__(self) -> int:
        return len(self.specs())

    @property
    def horizon(self) -> int:
        """Last arrival time in the stream (0 when empty)."""
        specs = self.specs()
        return max((sp.arrival for sp in specs), default=0)

    # ------------------------------------------------------------------
    def _generate(self) -> list[JobSpec]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        family = make_family(config.family, **config.family_kwargs)
        profit_sampler = make_profit_sampler(
            config.profit, **config.profit_kwargs
        )
        # structures first, so the arrival rate can target the load
        structures = [family(rng) for _ in range(config.n_jobs)]
        mean_work = float(np.mean([s.total_work for s in structures])) or 1.0
        rate = config.load * config.m / mean_work  # jobs per step
        arrivals = self._arrival_times(rate, rng)

        specs: list[JobSpec] = []
        for i, structure in enumerate(structures):
            arrival = int(arrivals[i])
            if config.deadline_policy == "slack":
                rel = slack_deadline(
                    structure,
                    config.m,
                    config.epsilon,
                    rng,
                    slack_low=config.slack_range[0],
                    slack_high=config.slack_range[1],
                )
            elif config.deadline_policy == "tight":
                rel = tight_deadline(
                    structure,
                    config.m,
                    factor=config.tight_factor,
                    rng=rng,
                    jitter=0.25,
                )
            else:
                raise WorkloadError(
                    f"unknown deadline policy {config.deadline_policy!r}"
                )
            specs.append(
                JobSpec(
                    i,
                    structure,
                    arrival=arrival,
                    deadline=arrival + rel,
                    profit=profit_sampler(structure, rng),
                )
            )
        specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
        return specs

    def _arrival_times(
        self, rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        config = self.config
        n = config.n_jobs
        if config.process == "poisson":
            return poisson_arrivals(n, rate, rng)
        if config.process == "diurnal":
            return diurnal_arrivals(
                n,
                rate,
                rng,
                amplitude=config.amplitude,
                period=config.period,
            )
        if config.process == "flash-crowd":
            n_spike = int(round(config.spike_fraction * n))
            n_background = n - n_spike
            spike_at = config.spike_at
            if spike_at is None:
                # 40% through the background stream's expected span
                spike_at = int(0.4 * n_background / rate) if rate > 0 else 0
            return spike_arrivals(
                n_background, n_spike, rate, spike_at, rng
            )
        # sessions: overall rate = session_rate * mean session length;
        # lengths are ceil(pareto(alpha) + 1), whose mean is
        # 1 + sum_{k>=1} k^-alpha = 1 + zeta(alpha)
        from scipy.special import zeta

        alpha = config.session_alpha
        mean_session = 1.0 + float(zeta(alpha))
        within = (
            config.session_within_rate
            if config.session_within_rate is not None
            else rate
        )
        return session_arrivals(
            n,
            rate / mean_session,
            rng,
            alpha=alpha,
            within_rate=within,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"LoadGenerator(process={c.process!r}, n={c.n_jobs}, "
            f"load={c.load}, seed={c.seed})"
        )
