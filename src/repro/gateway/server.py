"""Stdlib HTTP server exposing the KPI feed as SSE and JSONL.

No web framework: a :class:`http.server.ThreadingHTTPServer` with three
routes is all a live dashboard, a ``curl`` tail, or a test needs.

* ``GET /kpi`` -- a ``text/event-stream`` (Server-Sent Events) stream.
  Each published snapshot becomes one ``event: kpi`` frame whose
  ``data:`` line is the snapshot JSON and whose ``id:`` is the feed
  sequence number, so SSE's built-in ``Last-Event-ID`` reconnect
  semantics work for free.  The stream ends when the feed closes.
* ``GET /kpi.jsonl`` -- the retained history as JSON lines (poll-style
  consumption, and trivially ``pandas.read_json(..., lines=True)``-able).
* ``GET /healthz`` -- liveness plus the current sequence number, the
  latest snapshot's degraded-shard count and the degradation rung.

The server thread only ever *reads* the feed; the gateway loop stays
the sole producer, so serving never perturbs the run -- a virtual-clock
benchmark with the server attached is bit-identical to one without.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.gateway.kpi import KpiFeed


class KpiServer:
    """Serve a :class:`KpiFeed` over HTTP on a background thread.

    Parameters
    ----------
    feed:
        The feed the gateway publishes to.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` -- the tests do).
    poll_seconds:
        How long an SSE handler blocks per wait before re-checking for
        shutdown.
    """

    def __init__(
        self,
        feed: KpiFeed,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        poll_seconds: float = 0.25,
    ) -> None:
        self.feed = feed
        self.poll_seconds = poll_seconds
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
                pass  # quiet: the gateway CLI owns stdout

            def do_GET(self):  # noqa: N802 - stdlib name
                if self.path == "/healthz":
                    history = server.feed.history()
                    latest = history[-1] if history else {}
                    self._send_json(
                        {
                            "ok": True,
                            "seq": server.feed.last_seq,
                            "closed": server.feed.closed,
                            "degraded_shards": latest.get(
                                "degraded_shards", 0
                            ),
                            "degradation": latest.get(
                                "degradation", "normal"
                            ),
                        }
                    )
                elif self.path == "/kpi.jsonl":
                    body = server.feed.to_jsonl().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/x-ndjson")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/kpi":
                    self._stream_sse()
                else:
                    self._send_json({"error": "not found"}, status=404)

            def _send_json(self, obj, status: int = 200):
                body = (json.dumps(obj) + "\n").encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _stream_sse(self):
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                # SSE is an unbounded stream: no Content-Length, close
                # delimits the body
                self.send_header("Connection", "close")
                self.end_headers()
                last = 0
                header = self.headers.get("Last-Event-ID")
                if header is not None:
                    try:
                        last = int(header)
                    except ValueError:
                        last = 0
                try:
                    while not server._stopping.is_set():
                        events = server.feed.wait_for(
                            last, timeout=server.poll_seconds
                        )
                        for seq, snap in events:
                            frame = (
                                f"id: {seq}\n"
                                "event: kpi\n"
                                f"data: {json.dumps(snap)}\n\n"
                            )
                            self.wfile.write(frame.encode("utf-8"))
                            last = seq
                        self.wfile.flush()
                        if server.feed.closed and not events:
                            break
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away; nothing to clean up

        class QuietServer(ThreadingHTTPServer):
            def handle_error(self, request, client_address):
                # clients hanging up mid-SSE-stream are business as
                # usual, not stack-trace material
                import sys

                exc = sys.exc_info()[1]
                if isinstance(
                    exc, (BrokenPipeError, ConnectionResetError)
                ):
                    return
                super().handle_error(request, client_address)

        self._httpd = QuietServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "KpiServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-gateway-kpi",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "KpiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KpiServer(url={self.url!r})"
