"""Hysteresis autoscaling policy over the elastic cluster's shard dial.

Each gateway tick the :class:`Autoscaler` evaluates candidate active
shard counts ``{k-1, k, k+1}`` against live shard stats -- the
candidate-schedule evaluation style of Albers--Hellwig applied to a
shard dial -- and *votes* for the cheapest one.  A candidate's cost is
its projected per-shard backlog pressure (overload costs steeply) plus
a small per-active-shard rent (idle capacity costs a little), so under
sustained pressure bigger prefixes win and in quiet valleys smaller
ones do.

Votes are gated by hysteresis before anything is committed: a scale-up
needs ``up_patience`` consecutive up-votes, a scale-down needs
``down_patience`` (scaling down is the cheap-to-delay direction), and
after any commit a ``cooldown`` window suppresses further changes.
That asymmetry is what stops a flash crowd's trailing edge from
flapping the cluster up and down while still ramping capacity fast on
the rising edge.

The policy is a pure function of the stats sequence it is shown plus
its own counters -- no randomness, no wall time -- so autoscaled runs
stay bit-reproducible under a :class:`~repro.gateway.clock.VirtualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.router import ShardStats
from repro.errors import GatewayError


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler evaluation (recorded even when nothing changes)."""

    #: gateway tick of the evaluation
    tick: int
    k_active: int
    #: candidate count the cost model voted for
    vote: int
    #: committed target after hysteresis (== k_active when held)
    target: int
    #: backlog pressure across the active prefix at evaluation time
    pressure: int


class Autoscaler:
    """Candidate-scoring shard-count controller with hysteresis.

    Parameters
    ----------
    k_min, k_max:
        Inclusive bounds on the active shard count.
    high_water:
        Per-shard backlog above which a candidate pays steep overload
        cost.  Tune to a few ticks' worth of drain capacity.
    shard_rent:
        Cost per active shard -- the pressure to shrink when idle.
    up_patience, down_patience:
        Consecutive same-direction votes required before committing.
        The defaults react up within one tick but shrink only after a
        long quiet stretch: scaling up late loses deadlines forever,
        scaling down late only wastes rent.
    cooldown:
        Ticks after a commit during which no further change commits.
    """

    def __init__(
        self,
        k_min: int = 1,
        k_max: int = 4,
        *,
        high_water: float = 2.0,
        shard_rent: float = 1.0,
        overload_weight: float = 100.0,
        up_patience: int = 1,
        down_patience: int = 60,
        cooldown: int = 20,
    ) -> None:
        if not 1 <= k_min <= k_max:
            raise GatewayError("need 1 <= k_min <= k_max")
        if high_water <= 0 or shard_rent < 0 or overload_weight <= 0:
            raise GatewayError("autoscaler weights must be positive")
        if up_patience < 1 or down_patience < 1 or cooldown < 0:
            raise GatewayError("patience must be >= 1 and cooldown >= 0")
        self.k_min = k_min
        self.k_max = k_max
        self.high_water = high_water
        self.shard_rent = shard_rent
        self.overload_weight = overload_weight
        self.up_patience = up_patience
        self.down_patience = down_patience
        self.cooldown = cooldown
        self._up_votes = 0
        self._down_votes = 0
        self._cooling = 0
        #: every evaluation, for tests and the KPI feed
        self.decisions: list[ScaleDecision] = []

    # ------------------------------------------------------------------
    def _cost(self, k_candidate: int, pressure: int, dead: int) -> float:
        """Projected cost of running ``k_candidate`` active shards.

        ``dead`` shards (crashed or degraded) still pay rent but drain
        nothing, so the backlog divides over the *effective* capacity
        ``k_candidate - dead``: a degraded shard reads as capacity loss
        and pushes the vote toward scaling up, within ``k_max``.
        Fault-free (``dead == 0``) the cost is unchanged, preserving
        bit-identical autoscale trajectories.
        """
        backlog = pressure / max(1, k_candidate - dead)
        overload = max(0.0, backlog - self.high_water)
        return overload * self.overload_weight + k_candidate * self.shard_rent

    @staticmethod
    def _pressure(stats: Sequence[ShardStats]) -> int:
        """Backlog jobs across the prefix: ingest queues plus in-engine
        jobs beyond one per machine (visible even when ``max_in_flight``
        is unbounded and the ingest queues never fill)."""
        return sum(
            s.queue_depth + max(0, s.in_flight - s.m) for s in stats
        )

    def decide(
        self, tick: int, k_active: int, stats: Sequence[ShardStats]
    ) -> int:
        """Return the committed shard-count target for this tick.

        ``stats`` is the active prefix's live stats (see
        :meth:`~repro.cluster.elastic.ElasticCluster.active_stats`).
        The return value equals ``k_active`` unless a resize commits.
        """
        pressure = self._pressure(stats)
        dead = sum(1 for s in stats if not s.alive)
        candidates = [
            k
            for k in (k_active - 1, k_active, k_active + 1)
            if self.k_min <= k <= self.k_max
        ]
        # deterministic tie-break: cheapest, then smallest move, then
        # smaller count (prefer shrinking on exact ties)
        vote = min(
            candidates,
            key=lambda k: (self._cost(k, pressure, dead), abs(k - k_active), k),
        )

        if vote > k_active:
            self._up_votes += 1
            self._down_votes = 0
        elif vote < k_active:
            self._down_votes += 1
            self._up_votes = 0
        else:
            self._up_votes = 0
            self._down_votes = 0

        target = k_active
        if self._cooling > 0:
            self._cooling -= 1
        elif vote > k_active and self._up_votes >= self.up_patience:
            target = vote
        elif vote < k_active and self._down_votes >= self.down_patience:
            target = vote
        if target != k_active:
            self._up_votes = 0
            self._down_votes = 0
            self._cooling = self.cooldown
        self.decisions.append(
            ScaleDecision(
                tick=tick,
                k_active=k_active,
                vote=vote,
                target=target,
                pressure=pressure,
            )
        )
        return target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Autoscaler(k=[{self.k_min},{self.k_max}], "
            f"high_water={self.high_water}, "
            f"patience={self.up_patience}/{self.down_patience})"
        )
