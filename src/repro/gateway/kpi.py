"""Live KPI aggregation and the feed the gateway publishes it on.

:class:`KpiAggregator` turns one tick's cluster state -- the merged
:meth:`~repro.cluster.elastic.ElasticCluster.live_metrics` roll-up plus
gateway-side counters -- into a flat JSON-serializable snapshot:
rolling profit rate, shed fraction (gateway drops *and* scheduler
sheds), queue depth, and p50/p99 admission latency straight from the
service's own ``admission_latency`` histogram.  No parallel metrics
path: what the feed reports is what the final result reports.

:class:`KpiFeed` is the fan-out half: a bounded history of snapshots
with a condition variable so any number of consumers (the SSE server,
a JSONL writer, a test) can block for "everything after sequence N"
without polling, and a ``close()`` that wakes them all for shutdown.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Optional

from repro.service.telemetry import MetricsRegistry


class KpiAggregator:
    """Windowed KPI computation over cumulative cluster metrics.

    Rates (``profit_rate``, ``arrival_rate``) are computed over a
    rolling window of the last ``window`` snapshots by differencing the
    cumulative totals, so the feed shows "profit per simulated step
    *lately*", not a lifetime average that flattens every transient the
    gateway exists to surface.
    """

    def __init__(self, window: int = 20) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        # (sim_t, profit_total, offered_total) marks, oldest first
        self._marks: deque[tuple[int, float, float]] = deque(maxlen=window)

    def snapshot(
        self,
        *,
        tick: int,
        sim_t: int,
        wall_s: float,
        metrics: MetricsRegistry,
        active_shards: int,
        queue_depth: int,
        in_flight: int,
        generated: int,
        gateway_shed: int,
        buffer_depth: int,
        degraded_shards: int = 0,
        degradation: str = "normal",
    ) -> dict[str, Any]:
        """Build one KPI snapshot dict from this tick's state."""
        values = metrics.values()
        hists = metrics.histograms()
        profit = float(values.get("profit_total", 0.0))
        submitted = float(values.get("submitted_total", 0.0))
        shed = float(values.get("shed_total", 0.0))
        completed = float(values.get("completed_total", 0.0))
        offered = submitted + gateway_shed
        shed_fraction = (shed + gateway_shed) / offered if offered else 0.0

        self._marks.append((sim_t, profit, offered))
        t0, profit0, offered0 = self._marks[0]
        span = max(1, sim_t - t0)
        profit_rate = (profit - profit0) / span if len(self._marks) > 1 else 0.0
        arrival_rate = (
            (offered - offered0) / span if len(self._marks) > 1 else 0.0
        )

        latency = hists.get("admission_latency", {})
        return {
            "tick": int(tick),
            "sim_t": int(sim_t),
            "wall_s": round(float(wall_s), 6),
            "active_shards": int(active_shards),
            "queue_depth": int(queue_depth),
            "in_flight": int(in_flight),
            "buffer_depth": int(buffer_depth),
            "generated_total": int(generated),
            "submitted_total": submitted,
            "completed_total": completed,
            "shed_total": shed,
            "gateway_shed_total": int(gateway_shed),
            "shed_fraction": shed_fraction,
            "profit_total": profit,
            "profit_rate": profit_rate,
            "arrival_rate": arrival_rate,
            "admission_latency_p50": latency.get("p50"),
            "admission_latency_p99": latency.get("p99"),
            "admission_latency_mean": latency.get("mean"),
            "degraded_shards": int(degraded_shards),
            "degradation": str(degradation),
        }


class KpiFeed:
    """Thread-safe sequenced snapshot feed with blocking consumption.

    The gateway loop is the only producer; consumers call
    :meth:`wait_for` with the last sequence number they saw and block
    until newer snapshots arrive or the feed closes.
    """

    def __init__(self, history: int = 1024) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self._cond = threading.Condition()
        self._snapshots: deque[tuple[int, dict[str, Any]]] = deque(
            maxlen=history
        )
        self._seq = 0
        self.closed = False

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest published snapshot (0 = none)."""
        with self._cond:
            return self._seq

    def publish(self, snapshot: dict[str, Any]) -> int:
        """Append a snapshot, assign it a sequence number, wake waiters."""
        with self._cond:
            if self.closed:
                raise RuntimeError("feed is closed")
            self._seq += 1
            self._snapshots.append((self._seq, snapshot))
            self._cond.notify_all()
            return self._seq

    def close(self) -> None:
        """Mark the feed finished and wake every blocked consumer."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def wait_for(
        self, after_seq: int, timeout: Optional[float] = 1.0
    ) -> list[tuple[int, dict[str, Any]]]:
        """Snapshots newer than ``after_seq``, blocking while none exist.

        Returns immediately-available newer snapshots (within retained
        history), else blocks up to ``timeout`` seconds for the next
        publish.  An empty list means timeout or a closed, drained feed.
        """
        with self._cond:
            if self._seq <= after_seq and not self.closed:
                self._cond.wait_for(
                    lambda: self._seq > after_seq or self.closed,
                    timeout=timeout,
                )
            return [(s, snap) for s, snap in self._snapshots if s > after_seq]

    def history(self) -> list[dict[str, Any]]:
        """All retained snapshots, oldest first."""
        with self._cond:
            return [snap for _, snap in self._snapshots]

    def to_jsonl(self) -> str:
        """Render the retained history as JSON lines."""
        return "".join(json.dumps(s) + "\n" for s in self.history())

    def write_jsonl(self, path: str) -> None:
        """Write the retained history to ``path`` as JSONL."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KpiFeed(seq={self.last_seq}, closed={self.closed})"
