"""Execution traces: everything a finished run can be interrogated about.

A :class:`Trace` is a flat record of events (arrivals, admissions,
completions, expiries) and *slices* -- maximal intervals during which the
processor allocation was constant.  The analysis package reconstructs
utilization, per-density processor-step usage (the paper's
:math:`T_S(v, .)`), and lemma-verification data from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class EventKind(enum.Enum):
    """Type of a trace event."""

    ARRIVAL = "arrival"
    COMPLETION = "completion"
    EXPIRY = "expiry"
    ABANDON = "abandon"
    DEADLINE_ASSIGNED = "deadline_assigned"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of the run."""

    time: int
    kind: EventKind
    job_id: int
    #: event-specific payload (e.g. assigned deadline)
    value: Optional[float] = None


@dataclass(frozen=True)
class AllocationSlice:
    """A maximal interval ``[t0, t1)`` with a fixed allocation.

    ``entries`` holds ``(job_id, allocated, executing)`` triples:
    ``allocated`` processors were dedicated to the job (the paper's
    processor-step accounting), of which ``executing`` actually ran
    ready nodes (the rest idled when fewer nodes were ready).
    """

    t0: int
    t1: int
    entries: tuple[tuple[int, int, int], ...]

    @property
    def duration(self) -> int:
        """Length of the slice in time steps."""
        return self.t1 - self.t0

    @property
    def allocated(self) -> int:
        """Total processors dedicated during the slice."""
        return sum(a for _, a, _ in self.entries)

    @property
    def busy(self) -> int:
        """Total processors actually executing nodes during the slice."""
        return sum(e for _, _, e in self.entries)


class Trace:
    """Accumulates events and allocation slices during a run."""

    def __init__(self, m: int, speed: float) -> None:
        self.m = m
        self.speed = speed
        self.events: list[TraceEvent] = []
        self.slices: list[AllocationSlice] = []

    # -- recording ------------------------------------------------------
    def event(
        self, time: int, kind: EventKind, job_id: int, value: Optional[float] = None
    ) -> None:
        """Record a timestamped event."""
        self.events.append(TraceEvent(time, kind, job_id, value))

    def slice(
        self, t0: int, t1: int, entries: tuple[tuple[int, int, int], ...]
    ) -> None:
        """Record an allocation slice; merges with the previous slice when
        contiguous and identical (keeps traces compact across decision
        rounds that changed nothing)."""
        if t1 <= t0:
            return
        if self.slices:
            last = self.slices[-1]
            if last.t1 == t0 and last.entries == entries:
                self.slices[-1] = AllocationSlice(last.t0, t1, entries)
                return
        self.slices.append(AllocationSlice(t0, t1, entries))

    # -- queries ----------------------------------------------------------
    def events_of_kind(self, kind: EventKind) -> Iterator[TraceEvent]:
        """All events of one kind, in time order."""
        return (e for e in self.events if e.kind == kind)

    def job_events(self, job_id: int) -> list[TraceEvent]:
        """All events touching one job, in time order."""
        return [e for e in self.events if e.job_id == job_id]

    def processor_steps_of(self, job_id: int) -> int:
        """Total dedicated processor-steps the run spent on ``job_id``."""
        total = 0
        for sl in self.slices:
            for jid, alloc, _ in sl.entries:
                if jid == job_id:
                    total += alloc * sl.duration
        return total

    def busy_steps_of(self, job_id: int) -> int:
        """Total executing processor-steps the run spent on ``job_id``."""
        total = 0
        for sl in self.slices:
            for jid, _, execing in sl.entries:
                if jid == job_id:
                    total += execing * sl.duration
        return total

    def utilization(self) -> float:
        """Fraction of processor-steps that executed nodes, over the span
        of recorded slices."""
        if not self.slices:
            return 0.0
        horizon = self.slices[-1].t1 - self.slices[0].t0
        if horizon <= 0:
            return 0.0
        busy = sum(sl.busy * sl.duration for sl in self.slices)
        return busy / (self.m * horizon)

    def max_concurrent_allocation(self) -> int:
        """Largest total allocation over all slices (should be <= m)."""
        return max((sl.allocated for sl in self.slices), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(events={len(self.events)}, slices={len(self.slices)})"


@dataclass
class RunCounters:
    """Cheap always-on statistics of a run (kept even without a trace)."""

    decisions: int = 0
    steps: int = 0
    allocated_steps: float = 0.0
    busy_steps: float = 0.0
    preemptions: int = 0
    completions: int = 0
    expiries: int = 0
    abandons: int = 0
    extra: dict = field(default_factory=dict)
