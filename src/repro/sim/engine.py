"""Discrete-time multiprocessor simulation engine.

The engine realizes the paper's machine model: ``m`` identical
processors, integer time steps, preemption at step boundaries, and speed
augmentation ``s`` (each processor removes ``s`` units of work from its
node per step -- Observation 1's "critical path decreases at rate s").

Semantics
---------
* Time advances in integer steps.  Between *decision points* the
  allocation is frozen; the engine fast-forwards across event-free gaps
  in one chunk, so cost scales with events, not wall-clock steps.
* A node occupies its processor for whole steps; work beyond completion
  within a node's final step is lost (discrete-step semantics).  With
  integer node works and speed 1 no work is lost.
* Decision points are: job arrival, node/job completion, (effective)
  deadline expiry, scheduler wakeup requests, and the horizon.
* A job that reaches its effective deadline unfinished is *expired*:
  removed and worth nothing, matching the paper's removal rule.
* The engine -- never the scheduler -- picks which ready nodes run,
  via the configured :class:`~repro.sim.picker.NodePicker`.

Batch and streaming modes
-------------------------
:meth:`Simulator.run` consumes a closed workload and simulates it to
completion.  It is a thin wrapper over the *streaming* session API --
:meth:`Simulator.start`, :meth:`Simulator.submit`,
:meth:`Simulator.advance_to` and :meth:`Simulator.finish` -- which lets
a long-running service interleave new submissions with simulated time
(the online setting the paper is actually about).  A streaming session
driven only at event times (advance to each arrival, then submit)
produces a :class:`SimulationResult` bit-identical to the batch run of
the same arrival sequence, counters included; advancing at additional
intermediate times preserves all per-job records and profits but counts
extra scheduler decisions.

Sessions can also be checkpointed mid-run (:meth:`Simulator.snapshot_state`)
and restored later (:meth:`Simulator.restore_state`) so a killed service
resumes deterministically; see :mod:`repro.service.snapshot`.

Example
-------
>>> from repro.dag import chain
>>> from repro.sim import Simulator, JobSpec
>>> from repro.baselines import GlobalEDF
>>> spec = JobSpec(0, chain(4), arrival=0, deadline=10, profit=1.0)
>>> result = Simulator(m=2, scheduler=GlobalEDF()).run([spec])
>>> result.total_profit
1.0
"""

from __future__ import annotations

import heapq
import logging
import math
from dataclasses import dataclass, field
from itertools import islice
from time import perf_counter
from typing import Any, Optional, Sequence

from repro.errors import AllocationError, SimulationError
from repro.observability.recorder import SliceData, scheduler_admission
from repro.sim.jobs import ActiveJob, CompletionRecord, JobSpec, JobView
from repro.sim.picker import FIFOPicker, NodePicker
from repro.sim.scheduler import Scheduler
from repro.sim.trace import EventKind, RunCounters, Trace

logger = logging.getLogger(__name__)

# Int values of NodeState, inlined for the hot stale-node test, the
# engine-built pick's RUNNING marks and the inlined chunk execution.
from repro.dag.job import DAGJob, _RESIDUE  # noqa: E402
from repro.dag.node import NodeState as _NodeState  # noqa: E402

_DONE = int(_NodeState.DONE)
_READY = int(_NodeState.READY)
_RUNNING = int(_NodeState.RUNNING)

#: Version tag of the engine snapshot format (see :meth:`Simulator.snapshot_state`).
ENGINE_SNAPSHOT_VERSION = 1


@dataclass
class SimulationResult:
    """Everything a finished run reports."""

    m: int
    speed: float
    records: dict[int, CompletionRecord]
    counters: RunCounters
    #: time of the final event processed
    end_time: int
    trace: Optional[Trace] = None
    extra: dict = field(default_factory=dict)

    @property
    def total_profit(self) -> float:
        """Sum of profit earned across all jobs."""
        return sum(r.profit for r in self.records.values())

    @property
    def completed_on_time(self) -> int:
        """Number of jobs that finished by their effective deadline."""
        return sum(1 for r in self.records.values() if r.on_time)

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the workload."""
        return len(self.records)

    def profit_of(self, job_id: int) -> float:
        """Profit earned by one job."""
        return self.records[job_id].profit


class _RunState:
    """Mutable state of one simulation session (batch or streaming)."""

    __slots__ = (
        "t",
        "end_time",
        "arrival_seen",
        "done",
        "pending",
        "ids",
        "active",
        "finished",
        "deadline_heap",
        "prev_running",
        "counters",
        "trace",
    )

    def __init__(self, trace: Optional[Trace]) -> None:
        self.t = 0
        self.end_time = 0
        #: whether the clock has been anchored to the first arrival
        self.arrival_seen = False
        #: terminal: drained, deadlocked, or horizon reached
        self.done = False
        #: min-heap of (arrival, job_id, spec) not yet released
        self.pending: list[tuple[int, int, JobSpec]] = []
        #: every job id ever submitted (duplicate detection)
        self.ids: set[int] = set()
        self.active: dict[int, ActiveJob] = {}
        self.finished: dict[int, CompletionRecord] = {}
        self.deadline_heap: list[tuple[int, int]] = []  # (deadline, job_id)
        # job_id -> node list of the last pick (pick order preserved; the
        # stale check compares picks element-wise, which for order-stable
        # pickers equals set equality and otherwise only costs a spurious
        # empty stale scan)
        self.prev_running: dict[int, list[int]] = {}
        self.counters = RunCounters()
        self.trace = trace


class Simulator:
    """Drives a scheduler over a workload on a simulated machine.

    Parameters
    ----------
    m:
        Number of identical processors.
    scheduler:
        Event-driven scheduler (see :class:`~repro.sim.scheduler.Scheduler`).
    picker:
        Ready-node pick policy; defaults to FIFO.  The adversarial and
        clairvoyant policies live in :mod:`repro.sim.picker`.
    speed:
        Resource augmentation ``s >= 1`` (work removed per processor-step).
        Fractional speeds are allowed (the paper's ``1+eps``).
    record_trace:
        Keep a full :class:`~repro.sim.trace.Trace` (costs memory).
    horizon:
        Optional hard stop; unfinished jobs are marked abandoned.
    validate:
        Re-check model invariants after every decision (slow; tests only).
    preemption_overhead:
        Work added to a node each time it is preempted mid-execution
        (context-switch cost; capped at the node's original work).
        Default 0 = the paper's free-preemption model.
    recorder:
        Optional structured trace recorder (see
        :mod:`repro.observability.recorder`): every lifecycle transition
        and decision point emits an event.  ``None`` (default) and the
        shared ``NULL_RECORDER`` both reduce the per-event cost to one
        hoisted ``None`` check.  Recording never changes simulated
        state, records, counters or profit.
    profiler:
        Optional :class:`~repro.observability.profiler.Profiler` timing
        the named hot-path sections ``allocate`` (one scheduler
        decision, i.e. decision latency) and ``execute`` (one chunk
        execution).  Wall-clock only; never touches simulated state.
    """

    def __init__(
        self,
        m: int,
        scheduler: Scheduler,
        picker: Optional[NodePicker] = None,
        speed: float = 1.0,
        record_trace: bool = False,
        horizon: Optional[int] = None,
        validate: bool = False,
        preemption_overhead: float = 0.0,
        recorder: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be non-negative")
        if preemption_overhead < 0:
            raise ValueError("preemption_overhead must be non-negative")
        self.m = int(m)
        self.scheduler = scheduler
        self.picker = picker if picker is not None else FIFOPicker()
        self.speed = float(speed)
        self.record_trace = bool(record_trace)
        self.horizon = horizon
        self.validate = bool(validate)
        self.preemption_overhead = float(preemption_overhead)
        self.recorder = recorder
        self.profiler = profiler
        self._state: Optional[_RunState] = None

    # ------------------------------------------------------------------
    # Batch mode (thin wrapper over the streaming session)
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> SimulationResult:
        """Simulate the workload to completion (or horizon) and report."""
        ids = [sp.job_id for sp in specs]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate job ids in workload")
        self.start()
        for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
            self.submit(spec)
        return self.finish()

    # ------------------------------------------------------------------
    # Streaming session API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open a streaming session at time 0.

        After :meth:`start`, jobs are injected with :meth:`submit`,
        simulated time moves with :meth:`advance_to`, and
        :meth:`finish` drains everything and reports.
        """
        if self._state is not None:
            raise SimulationError("a session is already active; call finish() first")
        trace = Trace(self.m, self.speed) if self.record_trace else None
        self._state = _RunState(trace)
        self.scheduler.on_start(self.m, self.speed)

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> None:
        """Queue a job for release at ``spec.arrival``.

        ``t`` is the submission time: when given and ahead of the
        current clock the session first advances to it (so a driver can
        write ``submit(spec, t=arrival)`` and nothing else).  The
        arrival must not lie in the simulated past -- a streaming driver
        must not advance beyond times it still intends to submit at.
        """
        state = self._require_session()
        if t is not None:
            if t < state.t:
                raise SimulationError(
                    f"submission time {t} is in the past (now={state.t})"
                )
            if t > state.t:
                self.advance_to(t)
        if spec.job_id in state.ids:
            raise SimulationError(f"duplicate job id {spec.job_id}")
        if spec.arrival < state.t:
            raise SimulationError(
                f"job {spec.job_id} arrival {spec.arrival} is in the past "
                f"(now={state.t})"
            )
        state.ids.add(spec.job_id)
        heapq.heappush(state.pending, (spec.arrival, spec.job_id, spec))
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.event(state.t, "submit", spec.job_id)

    def advance_to(self, target: int) -> int:
        """Advance simulated time to ``target`` and return the clock.

        All events *strictly before* ``target`` are fully processed;
        events at exactly ``target`` stay pending so that same-time
        submissions made afterwards are sequenced exactly as a batch run
        would (arrivals before expiries at equal times).  Advancing past
        the horizon clamps to it.
        """
        state = self._require_session()
        if target < state.t:
            raise SimulationError(f"cannot advance to {target} (now={state.t})")
        self._advance(target)
        return state.t

    def finish(self) -> SimulationResult:
        """Drain the session (all pending arrivals and active jobs) and
        return the final :class:`SimulationResult`; the session closes."""
        state = self._require_session()
        self._advance(None)
        rec = self.recorder
        emit = rec.event if (rec is not None and rec.enabled) else None
        # jobs never released (horizon before arrival) get empty records
        while state.pending:
            _, job_id, spec = heapq.heappop(state.pending)
            state.finished[job_id] = CompletionRecord(
                job_id=job_id,
                arrival=spec.arrival,
                deadline=spec.deadline,
                completion_time=None,
                profit=0.0,
                abandoned=True,
            )
            state.counters.abandons += 1
            if emit is not None:
                emit(state.t, "abandon", job_id)
        result = SimulationResult(
            m=self.m,
            speed=self.speed,
            records=state.finished,
            counters=state.counters,
            end_time=state.end_time,
            trace=state.trace,
        )
        self._state = None
        return result

    # ------------------------------------------------------------------
    # Session introspection (used by the service layer and telemetry)
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether a streaming session is currently open."""
        return self._state is not None

    @property
    def now(self) -> int:
        """Current simulated time of the open session."""
        return self._require_session().t

    @property
    def active_count(self) -> int:
        """Number of released, unfinished jobs in the open session."""
        return len(self._require_session().active)

    @property
    def pending_count(self) -> int:
        """Number of submitted jobs not yet released (future arrivals)."""
        return len(self._require_session().pending)

    @property
    def finished_count(self) -> int:
        """Number of jobs with a final record so far."""
        return len(self._require_session().finished)

    @property
    def counters(self) -> RunCounters:
        """Live run counters of the open session (read-only use)."""
        return self._require_session().counters

    def profit_so_far(self) -> float:
        """Profit accumulated by finished jobs in the open session."""
        state = self._require_session()
        return sum(r.profit for r in state.finished.values())

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, Any]:
        """Serialize the open session to a JSON-compatible dict.

        The snapshot captures pending submissions, active jobs (DAG
        execution state included), finished records, the expiry heap,
        preemption bookkeeping and counters -- everything needed for
        :meth:`restore_state` to resume bit-identically.  The trace (if
        recorded) is *not* captured; a restored session records a fresh
        trace from the restore point.  Scheduler state is snapshotted
        separately (see
        :meth:`repro.sim.scheduler.SchedulerBase.snapshot_state`).
        """
        from repro.workloads.serialize import spec_to_dict

        state = self._require_session()
        return {
            "version": ENGINE_SNAPSHOT_VERSION,
            "config": {
                "m": self.m,
                "speed": self.speed,
                "horizon": self.horizon,
                "preemption_overhead": self.preemption_overhead,
            },
            "t": state.t,
            "end_time": state.end_time,
            "arrival_seen": state.arrival_seen,
            "done": state.done,
            "ids": sorted(state.ids),
            "pending": [spec_to_dict(spec) for _, _, spec in sorted(state.pending)],
            "active": [self._active_to_dict(job) for job in state.active.values()],
            "finished": [
                _record_to_dict(rec) for rec in state.finished.values()
            ],
            "deadline_heap": [list(item) for item in sorted(state.deadline_heap)],
            "prev_running": [
                [job_id, sorted(nodes)]
                for job_id, nodes in state.prev_running.items()
            ],
            "counters": _counters_to_dict(state.counters),
        }

    def restore_state(self, data: dict[str, Any]) -> dict[int, JobView]:
        """Open a session from a :meth:`snapshot_state` dict.

        The simulator must be configured identically to the one that
        took the snapshot (``m``, ``speed``, ``horizon``,
        ``preemption_overhead`` are verified).  Calls the scheduler's
        ``on_start`` and returns the ``job_id -> JobView`` mapping of
        live jobs so the caller can restore scheduler state next.
        """
        from repro.workloads.serialize import spec_from_dict

        if self._state is not None:
            raise SimulationError("a session is already active; cannot restore")
        if data.get("version") != ENGINE_SNAPSHOT_VERSION:
            raise SimulationError(
                f"unsupported engine snapshot version {data.get('version')}"
            )
        config = data["config"]
        mine = {
            "m": self.m,
            "speed": self.speed,
            "horizon": self.horizon,
            "preemption_overhead": self.preemption_overhead,
        }
        if config != mine:
            raise SimulationError(
                f"snapshot config {config} does not match simulator {mine}"
            )
        trace = Trace(self.m, self.speed) if self.record_trace else None
        state = _RunState(trace)
        state.t = int(data["t"])
        state.end_time = int(data["end_time"])
        state.arrival_seen = bool(data["arrival_seen"])
        state.done = bool(data["done"])
        state.ids = {int(i) for i in data["ids"]}
        state.pending = [
            (spec.arrival, spec.job_id, spec)
            for spec in (spec_from_dict(d) for d in data["pending"])
        ]
        heapq.heapify(state.pending)
        for entry in data["active"]:
            job = self._active_from_dict(entry)
            state.active[job.job_id] = job
        for entry in data["finished"]:
            rec = _record_from_dict(entry)
            state.finished[rec.job_id] = rec
        state.deadline_heap = [(int(d), int(j)) for d, j in data["deadline_heap"]]
        heapq.heapify(state.deadline_heap)
        state.prev_running = {
            int(job_id): [int(n) for n in nodes]
            for job_id, nodes in data["prev_running"]
        }
        state.counters = _counters_from_dict(data["counters"])
        self._state = state
        self.scheduler.on_start(self.m, self.speed)
        return {job_id: job.view for job_id, job in state.active.items()}

    # ------------------------------------------------------------------
    # Live-job migration (cluster work-stealing)
    # ------------------------------------------------------------------
    def extract_active(self, job_id: int) -> Optional[dict[str, Any]]:
        """Remove a live job from the open session for migration.

        The job is preempted (its executing nodes return to ready with
        their residue intact), detached from the engine's bookkeeping,
        and forgotten by the scheduler via ``on_expiry`` -- the one hook
        every scheduler already treats as "this job is no longer mine"
        (queues, bands and allocation caches are cleaned, no completion
        is recorded).  The returned payload is the same JSON-compatible
        per-job dict :meth:`snapshot_state` uses; feed it to another
        simulator's :meth:`inject_active`.  No terminal record is
        written here: the job's single completion/expiry is expected on
        the receiving engine, which keeps cluster traces valid (one
        terminal event per submitted job).

        Returns ``None`` when ``job_id`` is not a live active job (not
        yet released, already finished, or never seen).
        """
        state = self._require_session()
        job = state.active.get(job_id)
        if job is None or not job.is_live():
            return None
        job.dag.mark_preempted(job.executing)
        job.executing = ()
        state.prev_running.pop(job_id, None)
        del state.active[job_id]
        # Free the id so a later bounce-back to this shard is legal; any
        # deadline_heap entry goes stale and the expiry loop skips it.
        state.ids.discard(job_id)
        self.scheduler.on_expiry(job.view, state.t)
        return self._active_to_dict(job)

    def inject_active(self, data: dict[str, Any], t: Optional[int] = None) -> JobView:
        """Install a job extracted from another engine into this session.

        ``data`` is the payload :meth:`extract_active` returned.  For
        deadline (throughput-setting) jobs the arrival is re-stamped to
        *now*, exactly like the queued-migration release path: the job
        re-enters the world with whatever slack is left, so the
        receiving scheduler judges delta-goodness and density against
        remaining time (its ``W``/``L`` stay the originals -- a
        conservative bound for a partially executed DAG).  General-
        profit jobs keep their original arrival (profit decays from it)
        and any previously assigned deadline.  The scheduler sees a
        normal ``on_arrival``.

        A job whose effective deadline already passed (it expired in
        transit between extraction and injection) is recorded as an
        immediate expiry instead of entering the engine, so every
        submission keeps a completion record.  Raises
        :class:`~repro.errors.SimulationError` if the job id is already
        known here.
        """
        state = self._require_session()
        if t is not None:
            if t < state.t:
                raise SimulationError(
                    f"injection time {t} is in the past (now={state.t})"
                )
            if t > state.t:
                self.advance_to(t)
        if state.done:
            raise SimulationError("session is done; cannot inject a job")
        spec_data = data["spec"]
        if (
            spec_data.get("profit_fn") is None
            and spec_data.get("deadline") is not None
            and spec_data["deadline"] > state.t
        ):
            spec_data = dict(spec_data)
            spec_data["arrival"] = state.t
            data = dict(data)
            data["spec"] = spec_data
        job = self._active_from_dict(data)
        job_id = job.job_id
        if job_id in state.ids or job_id in state.active:
            raise SimulationError(f"job {job_id} is already known to this engine")
        eff = job.effective_deadline()
        if eff is not None and eff <= state.t:
            # expired in transit (extracted on one shard, deadline
            # passed before injection here): record the expiry rather
            # than reject, so the job keeps a completion record and
            # coordinated runs account for every submission
            state.ids.add(job_id)
            job.expired = True
            job.dag.mark_preempted(job.executing)
            job.executing = ()
            state.finished[job_id] = _finish_record(job)
            state.counters.expiries += 1
            if state.trace:
                state.trace.event(state.t, EventKind.ARRIVAL, job_id)
                state.trace.event(state.t, EventKind.EXPIRY, job_id)
            rec = self.recorder
            if rec is not None and rec.enabled:
                rec.event(state.t, "arrival", job_id)
                rec.event(state.t, "expiry", job_id)
            return job.view
        state.ids.add(job_id)
        state.active[job_id] = job
        state.arrival_seen = True
        if eff is not None:
            heapq.heappush(state.deadline_heap, (eff, job_id))
        if state.trace:
            state.trace.event(state.t, EventKind.ARRIVAL, job_id)
        rec = self.recorder
        emit = rec.event if (rec is not None and rec.enabled) else None
        if emit is not None:
            emit(state.t, "arrival", job_id)
        self.scheduler.on_arrival(job.view, state.t)
        if job.effective_deadline() is None:
            assigned = self.scheduler.assign_deadline(job.view, state.t)
            if assigned is not None:
                if assigned <= state.t:
                    raise SimulationError(
                        f"scheduler assigned past deadline {assigned} <= {state.t}"
                    )
                job.assigned_deadline = int(assigned)
                heapq.heappush(state.deadline_heap, (job.assigned_deadline, job_id))
        if emit is not None:
            info = scheduler_admission(self.scheduler, job_id) or {}
            if job.assigned_deadline is not None:
                info["assigned_deadline"] = job.assigned_deadline
            emit(state.t, "admission", job_id, info or None)
        return job.view

    def forget_pending(self, job_id: int) -> Optional[JobSpec]:
        """Withdraw a submitted-but-unreleased job from the session.

        A job submitted at the current instant sits in the pending heap
        until the clock moves past its arrival -- live to the engine
        (its id is reserved) but invisible to :meth:`extract_active`.
        Cluster recovery needs to remove exactly such a copy when a
        replayed submission resurrects a job whose authoritative home
        is another shard.  Returns the withdrawn spec (freeing the id
        for a legal resubmission), or ``None`` when ``job_id`` is not
        pending here.  No terminal record is written.
        """
        state = self._require_session()
        for i, (_, jid, spec) in enumerate(state.pending):
            if jid == job_id:
                state.pending.pop(i)
                heapq.heapify(state.pending)
                state.ids.discard(job_id)
                return spec
        return None

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def _require_session(self) -> _RunState:
        if self._state is None:
            raise SimulationError("no active session; call start() first")
        return self._state

    def _advance(self, target: Optional[int]) -> None:
        """Process events up to ``target`` (``None`` = drain everything)."""
        state = self._require_session()
        horizon = self.horizon
        if target is not None and horizon is not None:
            target = min(target, horizon)
        scheduler = self.scheduler
        picker = self.picker
        # the default FIFO pick is served straight from the ready dict
        fifo_pick = type(picker) is FIFOPicker
        wakeup = getattr(scheduler, "wakeup_after", None)

        # Hoisted per-call invariants: these containers and callables are
        # stable for the lifetime of one session, and the decision loop
        # below touches them several times per event.
        pending = state.pending
        active = state.active
        deadline_heap = state.deadline_heap
        prev_running = state.prev_running
        finished = state.finished
        counters = state.counters
        trace = state.trace
        speed = self.speed
        overhead = self.preemption_overhead
        validate = self.validate
        on_arrival = scheduler.on_arrival
        assign_deadline = scheduler.assign_deadline
        heappop = heapq.heappop
        heappush = heapq.heappush
        inf = math.inf
        ceil = math.ceil
        debug_log = logger.isEnabledFor(logging.DEBUG)
        # Observability hoists: with no recorder (or the NULL_RECORDER)
        # attached, every emit site below is one local None check.
        rec = self.recorder
        emit = rec.event if (rec is not None and rec.enabled) else None
        prof = self.profiler
        if prof is not None:
            prof_alloc = prof.section("allocate")
            prof_exec = prof.section("execute")
            perf = perf_counter
        else:
            prof_alloc = prof_exec = None
            perf = None

        while not state.done:
            if target is not None and state.t >= target:
                return

            # ---- anchor the clock at the first arrival -------------------
            # Batch semantics: idle time before any job exists is skipped,
            # not simulated, so pre-arrival gaps cost no decisions/steps.
            if not state.arrival_seen:
                if not pending:
                    if target is None:
                        break
                    state.t = max(state.t, target)
                    return
                first = pending[0][0]
                if horizon is not None:
                    first = min(first, horizon)
                if target is not None and first > target:
                    state.t = max(state.t, target)
                    return
                state.t = max(state.t, first)
                state.arrival_seen = True

            # ---- arrivals at (or before) t -------------------------------
            while pending and pending[0][0] <= state.t:
                _, _, spec = heappop(pending)
                job = ActiveJob(spec)
                active[spec.job_id] = job
                if trace:
                    trace.event(spec.arrival, EventKind.ARRIVAL, spec.job_id)
                if emit is not None:
                    emit(spec.arrival, "arrival", spec.job_id)
                if debug_log:
                    logger.debug(
                        "t=%d arrival job=%d W=%.6g L=%.6g d=%s",
                        state.t, spec.job_id, spec.work, spec.span, spec.deadline,
                    )
                on_arrival(job.view, state.t)
                assigned = assign_deadline(job.view, state.t)
                if assigned is not None:
                    if assigned <= state.t:
                        raise SimulationError(
                            f"scheduler assigned past deadline {assigned} <= {state.t}"
                        )
                    job.assigned_deadline = int(assigned)
                    if trace:
                        trace.event(
                            state.t, EventKind.DEADLINE_ASSIGNED, spec.job_id, assigned
                        )
                eff = job.effective_deadline()
                if eff is not None:
                    heappush(deadline_heap, (eff, spec.job_id))
                if emit is not None:
                    info = scheduler_admission(scheduler, spec.job_id) or {}
                    if job.assigned_deadline is not None:
                        info["assigned_deadline"] = job.assigned_deadline
                    emit(state.t, "admission", spec.job_id, info or None)

            # ---- expiries at t -------------------------------------------
            while deadline_heap and deadline_heap[0][0] <= state.t:
                _, job_id = heappop(deadline_heap)
                job = active.get(job_id)
                if job is None or not job.is_live():
                    continue  # stale entry
                eff = job.effective_deadline()
                if eff is None or eff > state.t:
                    continue
                job.expired = True
                job.dag.mark_preempted(job.executing)
                job.executing = ()
                prev_running.pop(job_id, None)
                del active[job_id]
                finished[job_id] = _finish_record(job)
                counters.expiries += 1
                if trace:
                    trace.event(state.t, EventKind.EXPIRY, job_id)
                if emit is not None:
                    emit(state.t, "expiry", job_id)
                if debug_log:
                    logger.debug("t=%d expiry job=%d", state.t, job_id)
                scheduler.on_expiry(job.view, state.t)

            state.end_time = state.t

            # ---- termination ---------------------------------------------
            if target is None and not active and not pending:
                state.done = True
                break
            if horizon is not None and state.t >= horizon:
                self._abandon_all(state)
                state.done = True
                break

            # t is stable from here until the chunk executes
            t = state.t

            # ---- allocation ----------------------------------------------
            if prof_alloc is not None:
                _p0 = perf()
                alloc = scheduler.allocate(t)
                prof_alloc.observe(perf() - _p0)
            else:
                alloc = scheduler.allocate(t)
            self._check_allocation(alloc, active)
            counters.decisions += 1

            assignment: list[tuple[ActiveJob, list[int], int, DAGJob]] = []
            allocated_procs = 0
            executing_procs = 0
            # smallest remaining work over all executing nodes: the time
            # to the next node completion (fused into this loop so no
            # second pass over the assignment is needed)
            exec_min = inf
            for job_id, k in alloc.items():
                if k <= 0:
                    continue
                job = active[job_id]
                dag = job.dag
                if fifo_pick:
                    if job._pick_k == k and job._pick_version == dag.ready_version:
                        # Ready set unchanged, same width, and the job
                        # stayed allocated since the memo was written: the
                        # previous pick, its RUNNING marks and the
                        # prev_running entry are all still exact, so the
                        # per-job bookkeeping below is a no-op.
                        nodes = job._pick_nodes
                        assignment.append(job._assign)
                        allocated_procs += k
                        executing_procs += len(nodes)
                        mr = job._min_rem
                        if mr < exec_min:
                            exec_min = mr
                        continue
                    # engine-built pick, valid by construction
                    # (first_ready inlined: became-ready order, first k)
                    ready = dag._ready
                    nodes = list(ready) if len(ready) <= k else list(islice(ready, k))
                    job._pick_k = k
                    job._pick_version = dag.ready_version
                    job._pick_nodes = nodes
                else:
                    nodes = picker.pick(dag, dag.ready_nodes(), k)
                    if len(nodes) > k or len(set(nodes)) != len(nodes):
                        raise SimulationError("picker returned invalid node set")
                # preemption accounting: previously-running nodes that are
                # neither rerun nor finished count as preempted
                prev = prev_running.get(job_id)
                dag_state = dag._state
                if (
                    prev is not None
                    and prev != nodes
                    # FIFO picks take a prefix of the ready dict, and the
                    # survivors of the previous pick always occupy the
                    # front of that dict (deletions preserve order, new
                    # nodes append); a pick at least as wide as the
                    # previous one therefore re-covers every survivor,
                    # so nothing can be stale
                    and not (fifo_pick and len(nodes) >= len(prev))
                ):
                    # a displaced node is stale iff it did not complete; a
                    # node that ran is either DONE or still in the ready
                    # dict, so the DONE test is the whole condition
                    now = set(nodes)
                    stale = [
                        nd
                        for nd in prev
                        if nd not in now and dag_state[nd] != _DONE
                    ]
                    if stale:
                        counters.preemptions += len(stale)
                        dag.mark_preempted(stale)
                        if overhead > 0:
                            for nd in stale:
                                dag.add_overhead(nd, overhead)
                if fifo_pick:
                    # inlined mark_running: the nodes came straight from
                    # the ready dict, so they are executable by
                    # construction and need no re-validation
                    for nd in nodes:
                        dag_state[nd] = _RUNNING
                else:
                    dag.mark_running(nodes)
                prev_running[job_id] = nodes
                job.executing = tuple(nodes)
                entry = (job, nodes, k, dag)
                if fifo_pick:
                    job._assign = entry
                assignment.append(entry)
                allocated_procs += k
                executing_procs += len(nodes)
                # overhead above only touches stale (non-executing) nodes,
                # so the fresh minimum is unaffected by it
                mr = min(map(dag._remaining.__getitem__, nodes))
                job._min_rem = mr
                if mr < exec_min:
                    exec_min = mr
            # jobs allocated nothing this round lose their running marks
            if len(prev_running) > len(assignment):
                for job_id in list(prev_running):
                    if alloc.get(job_id, 0) <= 0:
                        job = active.get(job_id)
                        prev = prev_running.pop(job_id)
                        if job is not None:
                            job._pick_k = -1  # pick memo needs re-marking
                            dag = job.dag
                            stale = {
                                nd for nd in prev if dag.node_remaining(nd) > 0
                            }
                            counters.preemptions += len(stale)
                            dag.mark_preempted(stale)
                            if overhead > 0:
                                for nd in stale:
                                    dag.add_overhead(nd, overhead)
                            job.executing = ()

            if emit is not None:
                emit(
                    t,
                    "decision",
                    None,
                    {
                        "jobs": len(assignment),
                        "procs": allocated_procs,
                        "active": len(active),
                    },
                )

            # ---- choose chunk length dt (the event-jump distance) --------
            # Minimum over the four event sources: next pending arrival,
            # next effective-deadline expiry, earliest node completion
            # among the executing set, and the scheduler's requested
            # wakeup.  None means no event can ever change the state.
            best = None
            if pending:
                c = pending[0][0] - t
                if c > 0:
                    best = c
            if deadline_heap:
                c = deadline_heap[0][0] - t
                if c > 0 and (best is None or c < best):
                    best = c
            if exec_min is not inf:
                # min-then-ceil equals the per-job (and per-node)
                # ceil-then-min: ceil is monotone
                c = ceil(exec_min / speed)
                if c > 0 and (best is None or c < best):
                    best = c
            if wakeup is not None:
                wt = wakeup(t)
                if wt is not None:
                    if wt <= t:
                        raise SimulationError(
                            f"scheduler wakeup {wt} not after t={t}"
                        )
                    c = wt - t
                    if best is None or c < best:
                        best = c
            if best is None:
                dt = None
            else:
                dt = 1 if best < 1 else best

            if dt is None:
                if target is None:
                    # Nothing executing and no future event can change that.
                    self._abandon_all(state)
                    state.done = True
                    break
                # streaming: the next submission (at or before target) is
                # the event batch mode would have fast-forwarded to
                dt = target - t
            elif target is not None:
                dt = min(dt, target - t)
            if horizon is not None:
                dt = min(dt, horizon - t)
                if dt <= 0:
                    self._abandon_all(state)
                    state.done = True
                    break

            # ---- execute the chunk ---------------------------------------
            if prof_exec is not None:
                _p0 = perf()
            completions: list[ActiveJob] = []
            amount = speed * dt
            finished_any: list[tuple[ActiveJob, DAGJob]] = []
            for job, nodes, k, dag in assignment:
                # Inlined DAGJob.process_many (same operations in the
                # same order): one call per executing job per chunk was
                # the largest remaining fixed cost of the event loop.
                dag_state = dag._state
                remaining = dag._remaining
                ready = dag._ready
                works = dag._works
                unmet = dag._unmet
                succ = dag._succ
                completed = 0
                for node in nodes:
                    rem = remaining[node] - amount
                    if rem > _RESIDUE:
                        remaining[node] = rem
                        continue
                    remaining[node] = 0.0
                    dag_state[node] = _DONE
                    # done_work accumulates per node, in completion
                    # order, so laxity observers see the exact
                    # historical float sum
                    dag._done_work += works[node]
                    completed += 1
                    del ready[node]
                    for v in succ[node]:
                        u = unmet[v] - 1
                        unmet[v] = u
                        if u == 0:
                            dag_state[v] = _READY
                            ready[v] = None
                if completed:
                    dag._done_count += completed
                    dag.ready_version += 1
                    finished_any.append((job, dag))
                job.processor_steps += k * dt
                # same subtraction the depletion applied to the argmin
                # node, so the memo stays bit-equal to min(remaining)
                job._min_rem -= amount
            counters.steps += dt
            counters.allocated_steps += allocated_procs * dt
            counters.busy_steps += executing_procs * dt
            if prof_exec is not None:
                prof_exec.observe(perf() - _p0)
            if trace:
                trace.slice(
                    t,
                    t + dt,
                    tuple(
                        (job.job_id, k, len(nodes))
                        for job, nodes, k, _dag in assignment
                    ),
                )
            if emit is not None:
                # the assignment list is rebuilt fresh at every decision
                # and its node lists are replaced (never mutated), so the
                # slice payload can be captured by reference and rendered
                # lazily when the trace is read -- per-entry rendering
                # here was the single largest cost of tracing
                emit(t, "slice", None, SliceData(t + dt, assignment))
            t += dt
            state.t = t

            # ---- completions at t ----------------------------------------
            for job, dag in finished_any:
                # inlined DAGJob.is_complete
                if dag._done_count == dag._n and job.completion_time is None:
                    job.completion_time = t
                    job.earned_profit = self._profit_at_completion(job, t)
                    completions.append(job)
            for job in completions:
                job.executing = ()
                prev_running.pop(job.job_id, None)
                del active[job.job_id]
                finished[job.job_id] = _finish_record(job)
                counters.completions += 1
                if trace:
                    trace.event(t, EventKind.COMPLETION, job.job_id)
                if emit is not None:
                    emit(
                        t,
                        "completion",
                        job.job_id,
                        {"profit": job.earned_profit},
                    )
                if debug_log:
                    logger.debug(
                        "t=%d completion job=%d profit=%.6g",
                        t, job.job_id, job.earned_profit,
                    )
                scheduler.on_completion(job.view, t)

            if validate:
                self._validate_state(active)

    # ------------------------------------------------------------------
    def _profit_at_completion(self, job: ActiveJob, t: int) -> float:
        spec = job.spec
        offset = t - spec.arrival
        if spec.profit_fn is not None:
            return float(spec.profit_fn(offset))
        assert spec.deadline is not None
        return spec.profit if t <= spec.deadline else 0.0

    def _check_allocation(self, alloc: dict[int, int], active: dict[int, ActiveJob]) -> None:
        # Fast path for the common well-formed case: a plain dict over
        # known jobs with exact-int non-negative counts within m.  The
        # C-level keys/set/sum machinery replaces the per-key Python
        # loop; anything unusual falls through to the precise check
        # (type() of a bool is never int, so bools cannot slip past).
        if alloc.__class__ is dict and alloc.keys() <= active.keys():
            vals = alloc.values()
            if (
                set(map(type, vals)) <= {int}
                and sum(vals) <= self.m
                and (not alloc or min(vals) >= 0)
            ):
                return
        self._check_allocation_slow(alloc, active)

    def _check_allocation_slow(
        self, alloc: dict[int, int], active: dict[int, ActiveJob]
    ) -> None:
        if not isinstance(alloc, dict):
            raise AllocationError("allocation must be a dict of job_id -> processors")
        total = 0
        for job_id, k in alloc.items():
            if job_id not in active:
                raise AllocationError(f"allocation references inactive job {job_id}")
            if k.__class__ is not int and (
                not isinstance(k, int) or isinstance(k, bool)
            ):
                # exact-type check first: the slow isinstance pair only
                # runs for subclasses (e.g. numpy ints pass, bools fail)
                raise AllocationError(f"processor count for job {job_id} must be int")
            if k < 0:
                raise AllocationError(f"negative processor count for job {job_id}")
            total += k
        if total > self.m:
            raise AllocationError(f"allocation uses {total} > m={self.m} processors")

    def _abandon_all(self, state: _RunState) -> None:
        rec = self.recorder
        emit = rec.event if (rec is not None and rec.enabled) else None
        for job_id, job in list(state.active.items()):
            job.abandoned = True
            job.dag.mark_preempted(job.executing)
            job.executing = ()
            state.prev_running.pop(job_id, None)
            state.finished[job_id] = _finish_record(job)
            state.counters.abandons += 1
            if state.trace:
                state.trace.event(state.t, EventKind.ABANDON, job_id)
            if emit is not None:
                emit(state.t, "abandon", job_id)
            del state.active[job_id]

    def _validate_state(self, active: dict[int, ActiveJob]) -> None:
        from repro.dag.validate import validate_job_state

        for job in active.values():
            validate_job_state(job.dag)

    # ------------------------------------------------------------------
    # Snapshot helpers
    # ------------------------------------------------------------------
    def _active_to_dict(self, job: ActiveJob) -> dict[str, Any]:
        from repro.workloads.serialize import spec_to_dict

        return {
            "spec": spec_to_dict(job.spec),
            "dag": job.dag.runtime_state_to_dict(),
            "executing": [int(n) for n in job.executing],
            "assigned_deadline": job.assigned_deadline,
            "processor_steps": job.processor_steps,
        }

    def _active_from_dict(self, data: dict[str, Any]) -> ActiveJob:
        from repro.dag.job import DAGJob
        from repro.workloads.serialize import spec_from_dict

        spec = spec_from_dict(data["spec"])
        job = ActiveJob(spec)
        job.dag = DAGJob.from_runtime_state(spec.structure, data["dag"])
        job.executing = tuple(int(n) for n in data["executing"])
        if data["assigned_deadline"] is not None:
            job.assigned_deadline = int(data["assigned_deadline"])
        job.processor_steps = float(data["processor_steps"])
        return job


def _finish_record(job: ActiveJob) -> CompletionRecord:
    return CompletionRecord(
        job_id=job.job_id,
        arrival=job.spec.arrival,
        deadline=job.spec.deadline,
        completion_time=job.completion_time,
        profit=job.earned_profit,
        processor_steps=job.processor_steps,
        expired=job.expired,
        abandoned=job.abandoned,
        assigned_deadline=job.assigned_deadline,
    )


def _record_to_dict(rec: CompletionRecord) -> dict[str, Any]:
    return {
        "job_id": rec.job_id,
        "arrival": rec.arrival,
        "deadline": rec.deadline,
        "completion_time": rec.completion_time,
        "profit": rec.profit,
        "processor_steps": rec.processor_steps,
        "expired": rec.expired,
        "abandoned": rec.abandoned,
        "assigned_deadline": rec.assigned_deadline,
        "extra": rec.extra,
    }


def _record_from_dict(data: dict[str, Any]) -> CompletionRecord:
    return CompletionRecord(
        job_id=int(data["job_id"]),
        arrival=int(data["arrival"]),
        deadline=data["deadline"],
        completion_time=data["completion_time"],
        profit=float(data["profit"]),
        processor_steps=float(data["processor_steps"]),
        expired=bool(data["expired"]),
        abandoned=bool(data["abandoned"]),
        assigned_deadline=data["assigned_deadline"],
        extra=dict(data.get("extra", {})),
    )


def _counters_to_dict(counters: RunCounters) -> dict[str, Any]:
    return {
        "decisions": counters.decisions,
        "steps": counters.steps,
        "allocated_steps": counters.allocated_steps,
        "busy_steps": counters.busy_steps,
        "preemptions": counters.preemptions,
        "completions": counters.completions,
        "expiries": counters.expiries,
        "abandons": counters.abandons,
        "extra": counters.extra,
    }


def _counters_from_dict(data: dict[str, Any]) -> RunCounters:
    return RunCounters(
        decisions=int(data["decisions"]),
        steps=int(data["steps"]),
        allocated_steps=float(data["allocated_steps"]),
        busy_steps=float(data["busy_steps"]),
        preemptions=int(data["preemptions"]),
        completions=int(data["completions"]),
        expiries=int(data["expiries"]),
        abandons=int(data["abandons"]),
        extra=dict(data.get("extra", {})),
    )
