"""Discrete-time multiprocessor simulation engine.

The engine realizes the paper's machine model: ``m`` identical
processors, integer time steps, preemption at step boundaries, and speed
augmentation ``s`` (each processor removes ``s`` units of work from its
node per step -- Observation 1's "critical path decreases at rate s").

Semantics
---------
* Time advances in integer steps.  Between *decision points* the
  allocation is frozen; the engine fast-forwards across event-free gaps
  in one chunk, so cost scales with events, not wall-clock steps.
* A node occupies its processor for whole steps; work beyond completion
  within a node's final step is lost (discrete-step semantics).  With
  integer node works and speed 1 no work is lost.
* Decision points are: job arrival, node/job completion, (effective)
  deadline expiry, scheduler wakeup requests, and the horizon.
* A job that reaches its effective deadline unfinished is *expired*:
  removed and worth nothing, matching the paper's removal rule.
* The engine -- never the scheduler -- picks which ready nodes run,
  via the configured :class:`~repro.sim.picker.NodePicker`.

Example
-------
>>> from repro.dag import chain
>>> from repro.sim import Simulator, JobSpec
>>> from repro.baselines import GlobalEDF
>>> spec = JobSpec(0, chain(4), arrival=0, deadline=10, profit=1.0)
>>> result = Simulator(m=2, scheduler=GlobalEDF()).run([spec])
>>> result.total_profit
1.0
"""

from __future__ import annotations

import heapq
import logging
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import AllocationError, SimulationError
from repro.sim.jobs import ActiveJob, CompletionRecord, JobSpec
from repro.sim.picker import FIFOPicker, NodePicker
from repro.sim.scheduler import Scheduler
from repro.sim.trace import EventKind, RunCounters, Trace

logger = logging.getLogger(__name__)


@dataclass
class SimulationResult:
    """Everything a finished run reports."""

    m: int
    speed: float
    records: dict[int, CompletionRecord]
    counters: RunCounters
    #: time of the final event processed
    end_time: int
    trace: Optional[Trace] = None
    extra: dict = field(default_factory=dict)

    @property
    def total_profit(self) -> float:
        """Sum of profit earned across all jobs."""
        return sum(r.profit for r in self.records.values())

    @property
    def completed_on_time(self) -> int:
        """Number of jobs that finished by their effective deadline."""
        return sum(1 for r in self.records.values() if r.on_time)

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the workload."""
        return len(self.records)

    def profit_of(self, job_id: int) -> float:
        """Profit earned by one job."""
        return self.records[job_id].profit


class Simulator:
    """Drives a scheduler over a workload on a simulated machine.

    Parameters
    ----------
    m:
        Number of identical processors.
    scheduler:
        Event-driven scheduler (see :class:`~repro.sim.scheduler.Scheduler`).
    picker:
        Ready-node pick policy; defaults to FIFO.  The adversarial and
        clairvoyant policies live in :mod:`repro.sim.picker`.
    speed:
        Resource augmentation ``s >= 1`` (work removed per processor-step).
        Fractional speeds are allowed (the paper's ``1+eps``).
    record_trace:
        Keep a full :class:`~repro.sim.trace.Trace` (costs memory).
    horizon:
        Optional hard stop; unfinished jobs are marked abandoned.
    validate:
        Re-check model invariants after every decision (slow; tests only).
    preemption_overhead:
        Work added to a node each time it is preempted mid-execution
        (context-switch cost; capped at the node's original work).
        Default 0 = the paper's free-preemption model.
    """

    def __init__(
        self,
        m: int,
        scheduler: Scheduler,
        picker: Optional[NodePicker] = None,
        speed: float = 1.0,
        record_trace: bool = False,
        horizon: Optional[int] = None,
        validate: bool = False,
        preemption_overhead: float = 0.0,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be non-negative")
        if preemption_overhead < 0:
            raise ValueError("preemption_overhead must be non-negative")
        self.m = int(m)
        self.scheduler = scheduler
        self.picker = picker if picker is not None else FIFOPicker()
        self.speed = float(speed)
        self.record_trace = bool(record_trace)
        self.horizon = horizon
        self.validate = bool(validate)
        self.preemption_overhead = float(preemption_overhead)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> SimulationResult:
        """Simulate the workload to completion (or horizon) and report."""
        specs = sorted(specs, key=lambda sp: (sp.arrival, sp.job_id))
        ids = [sp.job_id for sp in specs]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate job ids in workload")

        trace = Trace(self.m, self.speed) if self.record_trace else None
        counters = RunCounters()
        active: dict[int, ActiveJob] = {}
        finished: dict[int, CompletionRecord] = {}
        deadline_heap: list[tuple[int, int]] = []  # (deadline, job_id)
        prev_running: dict[int, set[int]] = {}  # job_id -> node ids last step

        self.scheduler.on_start(self.m, self.speed)

        idx = 0
        n = len(specs)
        t = specs[0].arrival if specs else 0
        if self.horizon is not None:
            t = min(t, self.horizon)
        end_time = t

        def finish_record(job: ActiveJob) -> CompletionRecord:
            return CompletionRecord(
                job_id=job.job_id,
                arrival=job.spec.arrival,
                deadline=job.spec.deadline,
                completion_time=job.completion_time,
                profit=job.earned_profit,
                processor_steps=job.processor_steps,
                expired=job.expired,
                abandoned=job.abandoned,
                assigned_deadline=job.assigned_deadline,
            )

        while True:
            # ---- arrivals at (or before) t -------------------------------
            while idx < n and specs[idx].arrival <= t:
                spec = specs[idx]
                idx += 1
                job = ActiveJob(spec)
                active[spec.job_id] = job
                if trace:
                    trace.event(spec.arrival, EventKind.ARRIVAL, spec.job_id)
                logger.debug(
                    "t=%d arrival job=%d W=%.6g L=%.6g d=%s",
                    t, spec.job_id, spec.work, spec.span, spec.deadline,
                )
                self.scheduler.on_arrival(job.view, t)
                assigned = self.scheduler.assign_deadline(job.view, t)
                if assigned is not None:
                    if assigned <= t:
                        raise SimulationError(
                            f"scheduler assigned past deadline {assigned} <= {t}"
                        )
                    job.assigned_deadline = int(assigned)
                    if trace:
                        trace.event(
                            t, EventKind.DEADLINE_ASSIGNED, spec.job_id, assigned
                        )
                eff = job.effective_deadline()
                if eff is not None:
                    heapq.heappush(deadline_heap, (eff, spec.job_id))

            # ---- expiries at t -------------------------------------------
            while deadline_heap and deadline_heap[0][0] <= t:
                _, job_id = heapq.heappop(deadline_heap)
                job = active.get(job_id)
                if job is None or not job.is_live():
                    continue  # stale entry
                eff = job.effective_deadline()
                if eff is None or eff > t:
                    continue
                job.expired = True
                job.dag.mark_preempted(job.executing)
                job.executing = ()
                prev_running.pop(job_id, None)
                del active[job_id]
                finished[job_id] = finish_record(job)
                counters.expiries += 1
                if trace:
                    trace.event(t, EventKind.EXPIRY, job_id)
                logger.debug("t=%d expiry job=%d", t, job_id)
                self.scheduler.on_expiry(job.view, t)

            end_time = t

            # ---- termination ---------------------------------------------
            if not active and idx >= n:
                break
            if self.horizon is not None and t >= self.horizon:
                self._abandon_all(active, finished, prev_running, counters, trace, t,
                                  finish_record)
                break

            # ---- allocation ----------------------------------------------
            alloc = self.scheduler.allocate(t)
            self._check_allocation(alloc, active)
            counters.decisions += 1

            assignment: list[tuple[ActiveJob, list[int]]] = []
            allocated_procs = 0
            executing_procs = 0
            slice_entries: list[tuple[int, int, int]] = []
            for job_id, k in alloc.items():
                if k <= 0:
                    continue
                job = active[job_id]
                ready = job.dag.ready_nodes()
                nodes = self.picker.pick(job.dag, ready, k)
                if len(nodes) > k or len(set(nodes)) != len(nodes):
                    raise SimulationError("picker returned invalid node set")
                # preemption accounting: previously-running nodes that are
                # neither rerun nor finished count as preempted
                prev = prev_running.get(job_id, set())
                now = set(nodes)
                stale = {
                    nd for nd in prev - now
                    if nd in job.dag.ready_nodes() or job.dag.node_remaining(nd) > 0
                }
                counters.preemptions += len(stale)
                job.dag.mark_preempted(stale)
                if self.preemption_overhead > 0:
                    for nd in stale:
                        job.dag.add_overhead(nd, self.preemption_overhead)
                job.dag.mark_running(nodes)
                prev_running[job_id] = now
                job.executing = tuple(nodes)
                assignment.append((job, nodes))
                allocated_procs += k
                executing_procs += len(nodes)
                slice_entries.append((job_id, k, len(nodes)))
            # jobs allocated nothing this round lose their running marks
            for job_id in list(prev_running):
                if job_id not in alloc or alloc.get(job_id, 0) <= 0:
                    job = active.get(job_id)
                    prev = prev_running.pop(job_id)
                    if job is not None:
                        stale = {
                            nd for nd in prev if job.dag.node_remaining(nd) > 0
                        }
                        counters.preemptions += len(stale)
                        job.dag.mark_preempted(stale)
                        if self.preemption_overhead > 0:
                            for nd in stale:
                                job.dag.add_overhead(nd, self.preemption_overhead)
                        job.executing = ()

            # ---- choose chunk length dt ----------------------------------
            dt = self._next_dt(t, idx, specs, deadline_heap, assignment)
            if dt is None:
                # Nothing executing and no future event can change that.
                self._abandon_all(active, finished, prev_running, counters, trace, t,
                                  finish_record)
                break
            if self.horizon is not None:
                dt = min(dt, self.horizon - t)
                if dt <= 0:
                    self._abandon_all(active, finished, prev_running, counters,
                                      trace, t, finish_record)
                    break

            # ---- execute the chunk ---------------------------------------
            completions: list[ActiveJob] = []
            for job, nodes in assignment:
                for node in nodes:
                    job.dag.process(node, self.speed * dt)
            for job_id, k, _execing in slice_entries:
                active[job_id].processor_steps += k * dt
            counters.steps += dt
            counters.allocated_steps += allocated_procs * dt
            counters.busy_steps += executing_procs * dt
            if trace:
                trace.slice(t, t + dt, tuple(slice_entries))
            t += dt

            # ---- completions at t ----------------------------------------
            for job, nodes in assignment:
                if job.dag.is_complete() and job.completion_time is None:
                    job.completion_time = t
                    job.earned_profit = self._profit_at_completion(job, t)
                    completions.append(job)
            for job in completions:
                job.executing = ()
                prev_running.pop(job.job_id, None)
                del active[job.job_id]
                finished[job.job_id] = finish_record(job)
                counters.completions += 1
                if trace:
                    trace.event(t, EventKind.COMPLETION, job.job_id)
                logger.debug(
                    "t=%d completion job=%d profit=%.6g",
                    t, job.job_id, job.earned_profit,
                )
                self.scheduler.on_completion(job.view, t)

            if self.validate:
                self._validate_state(active)

        # jobs never released (horizon before arrival) get empty records
        while idx < n:
            spec = specs[idx]
            idx += 1
            finished[spec.job_id] = CompletionRecord(
                job_id=spec.job_id,
                arrival=spec.arrival,
                deadline=spec.deadline,
                completion_time=None,
                profit=0.0,
                abandoned=True,
            )
            counters.abandons += 1

        return SimulationResult(
            m=self.m,
            speed=self.speed,
            records=finished,
            counters=counters,
            end_time=end_time,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _profit_at_completion(self, job: ActiveJob, t: int) -> float:
        spec = job.spec
        offset = t - spec.arrival
        if spec.profit_fn is not None:
            return float(spec.profit_fn(offset))
        assert spec.deadline is not None
        return spec.profit if t <= spec.deadline else 0.0

    def _check_allocation(self, alloc: dict[int, int], active: dict[int, ActiveJob]) -> None:
        if not isinstance(alloc, dict):
            raise AllocationError("allocation must be a dict of job_id -> processors")
        total = 0
        for job_id, k in alloc.items():
            if job_id not in active:
                raise AllocationError(f"allocation references inactive job {job_id}")
            if not isinstance(k, int) or isinstance(k, bool):
                raise AllocationError(f"processor count for job {job_id} must be int")
            if k < 0:
                raise AllocationError(f"negative processor count for job {job_id}")
            total += k
        if total > self.m:
            raise AllocationError(f"allocation uses {total} > m={self.m} processors")

    def _next_dt(
        self,
        t: int,
        idx: int,
        specs: Sequence[JobSpec],
        deadline_heap: list[tuple[int, int]],
        assignment: list[tuple[ActiveJob, list[int]]],
    ) -> Optional[int]:
        candidates: list[int] = []
        if idx < len(specs):
            candidates.append(specs[idx].arrival - t)
        if deadline_heap:
            candidates.append(deadline_heap[0][0] - t)
        for job, nodes in assignment:
            for node in nodes:
                rem = job.dag.node_remaining(node)
                candidates.append(math.ceil(rem / self.speed))
        wake = getattr(self.scheduler, "wakeup_after", None)
        if wake is not None:
            wt = wake(t)
            if wt is not None:
                if wt <= t:
                    raise SimulationError(f"scheduler wakeup {wt} not after t={t}")
                candidates.append(wt - t)
        if not assignment:
            # nothing executing: only external events can change state
            candidates = [c for c in candidates if c > 0]
            if not candidates:
                return None
            return max(1, min(candidates))
        return max(1, min(c for c in candidates if c > 0))

    def _abandon_all(self, active, finished, prev_running, counters, trace, t,
                     finish_record) -> None:
        for job_id, job in list(active.items()):
            job.abandoned = True
            job.dag.mark_preempted(job.executing)
            job.executing = ()
            prev_running.pop(job_id, None)
            finished[job_id] = finish_record(job)
            counters.abandons += 1
            if trace:
                trace.event(t, EventKind.ABANDON, job_id)
            del active[job_id]

    def _validate_state(self, active: dict[int, ActiveJob]) -> None:
        from repro.dag.validate import validate_job_state

        for job in active.values():
            validate_job_state(job.dag)
