"""Array-native simulation engine: the struct-of-arrays hot path.

:class:`ArraySimulator` is a drop-in :class:`~repro.sim.engine.Simulator`
subclass that replaces the per-decision Python object loop with a
persistent struct-of-arrays *arena*: the remaining work of every
executing node lives in one contiguous float64 vector, per-job
processor-step accumulators live in another, and a chunk of simulated
time is a handful of numpy array operations.  Decision points apply an
*incremental diff* of the scheduler's allocation against the arena --
jobs whose processor count did not change keep their segments untouched,
so the per-decision Python cost scales with allocation *churn*, not with
the number of executing jobs.

Bit-identity contract
---------------------
The array backend is pinned bit-identical to the event engine (records,
counters, end time and profit) by ``tests/test_engine_differential.py``.
That is not luck; it falls out of three IEEE-754 facts the arena relies
on:

* elementwise ``numpy.subtract`` on float64 performs the same rounding
  as the equivalent sequence of scalar Python subtractions, so draining
  node work through the arena produces the same bits as the object loop;
* ``min`` is order-independent at the bit level and commutes with
  subtracting a common amount (``min(a, b) - x == min(a - x, b - x)``),
  so the decremented arena-wide minimum equals the event engine's fused
  per-job minimum;
* products ``k * dt`` (processors times chunk length) are exact in
  float64 below 2**53, so vectorized processor-step accounting matches
  the scalar ``job.processor_steps += k * dt`` additions bit-for-bit.

Arena lifecycle
---------------
The arena is built at the first decision of an :meth:`advance` and
*materialized* (written back to the authoritative objects) before
anything outside the hot loop may observe execution progress: expiry
and completion records, horizon/drain abandonment, and returning
control to the caller.  DAG *structure* (ready sets, node states, done
counts) is never deferred -- node completions update it immediately --
so scheduler reads of ``num_ready`` and all arrival-time bookkeeping
always see current state.  Only node ``remaining`` values and per-job
``processor_steps`` ride in the arena between decision points.

Delegation policy
-----------------
Configurations that observe intra-chunk state delegate wholesale to the
parent event loop (which is the reference semantics, so the result is
trivially identical): trace recording, invariant validation, an enabled
structured recorder, a profiler, any non-FIFO node picker, and
schedulers that declare :attr:`~repro.sim.scheduler.SchedulerBase.reads_progress`
(some scheduler hook reads ``JobView.work_completed``, which must never
see a stale arena).
"""

from __future__ import annotations

import heapq
import math
from itertools import islice
from typing import Optional

import numpy as np

from repro.dag.job import _RESIDUE
from repro.errors import SimulationError
from repro.sim.engine import _DONE, _READY, _RUNNING, Simulator, _finish_record
from repro.sim.jobs import ActiveJob
from repro.sim.picker import FIFOPicker

_INF = math.inf


class _Arena:
    """Struct-of-arrays execution state for one ``_advance`` call.

    ``ev`` holds the remaining work of every picked node, one contiguous
    ``k``-wide segment per allocated job (short picks are padded with
    ``+inf`` so a segment never moves while its job stays allocated).
    ``psteps`` accumulates per-job processor-steps and ``k_arr``/``tmp``
    serve the fused ``psteps += k * dt`` update; retired entry slots
    keep ``k_arr`` at 0 so they accumulate nothing.  ``owner`` maps an
    ``ev`` index back to its job id for the completion scan.  Retired
    segments are marked ``+inf`` and reclaimed by compaction when an
    append overflows capacity.
    """

    __slots__ = (
        "alloc",
        "entries",
        "ev",
        "owner",
        "psteps",
        "k_arr",
        "tmp",
        "next_off",
        "next_slot",
        "live_nodes",
        "allocated_procs",
        "executing_procs",
        "exec_min",
        "dirty",
        "cur_alloc",
    )

    def __init__(self) -> None:
        self.alloc: dict[int, int] = {}
        #: the scheduler's latest allocation dict, by reference -- its
        #: *iteration order* is the event engine's assignment order,
        #: which ``alloc`` (an equal-contents copy from an earlier
        #: decision) does not necessarily share
        self.cur_alloc: dict[int, int] = {}
        #: job_id -> [job, nodes, k, dag, off, slot]
        self.entries: dict[int, list] = {}
        self.ev = np.full(64, _INF, dtype=np.float64)
        self.owner = np.zeros(64, dtype=np.int64)
        self.psteps = np.zeros(16, dtype=np.float64)
        self.k_arr = np.zeros(16, dtype=np.float64)
        self.tmp = np.empty(16, dtype=np.float64)
        self.next_off = 0
        self.next_slot = 0
        self.live_nodes = 0
        self.allocated_procs = 0
        self.executing_procs = 0
        self.exec_min = _INF
        #: job ids whose pick must be rebuilt before the next chunk
        self.dirty: list[int] = []


class ArraySimulator(Simulator):
    """Event-identical simulation on a numpy struct-of-arrays core.

    Accepts exactly the :class:`~repro.sim.engine.Simulator` parameters
    and produces bit-identical results (records, counters, end time,
    profit, snapshots); see the module docstring for the contract and
    the delegation policy.  The win grows with the number of
    concurrently executing jobs and nodes: allocation-stable stretches
    cost a few array operations per decision regardless of width.
    """

    # ------------------------------------------------------------------
    def _advance(self, target: Optional[int]) -> None:
        """Process events up to ``target`` (``None`` = drain everything)."""
        rec = self.recorder
        if (
            self.record_trace
            or self.validate
            or (rec is not None and rec.enabled)
            or self.profiler is not None
            or type(self.picker) is not FIFOPicker
            # Unknown scheduler implementations (no declaration) are
            # conservatively assumed to read execution progress.
            or getattr(self.scheduler, "reads_progress", True)
        ):
            return super()._advance(target)
        return self._advance_array(target)

    # ------------------------------------------------------------------
    def _advance_array(self, target: Optional[int]) -> None:
        state = self._require_session()
        horizon = self.horizon
        if target is not None and horizon is not None:
            target = min(target, horizon)
        scheduler = self.scheduler
        wakeup = getattr(scheduler, "wakeup_after", None)

        pending = state.pending
        active = state.active
        deadline_heap = state.deadline_heap
        finished = state.finished
        counters = state.counters
        speed = self.speed
        overhead = self.preemption_overhead
        on_arrival = scheduler.on_arrival
        assign_deadline = scheduler.assign_deadline
        heappop = heapq.heappop
        heappush = heapq.heappush
        inf = _INF
        ceil = math.ceil
        subtract = np.subtract
        multiply = np.multiply
        add = np.add

        arena: Optional[_Arena] = None

        while not state.done:
            if target is not None and state.t >= target:
                self._materialize(arena)
                return

            # ---- anchor the clock at the first arrival ---------------
            if not state.arrival_seen:
                if not pending:
                    if target is None:
                        break
                    state.t = max(state.t, target)
                    return
                first = pending[0][0]
                if horizon is not None:
                    first = min(first, horizon)
                if target is not None and first > target:
                    state.t = max(state.t, target)
                    return
                state.t = max(state.t, first)
                state.arrival_seen = True

            # ---- arrivals at (or before) t ---------------------------
            # Arrivals never read execution progress (progress-reading
            # schedulers were delegated), so the arena stays live.
            while pending and pending[0][0] <= state.t:
                _, _, spec = heappop(pending)
                job = ActiveJob(spec)
                active[spec.job_id] = job
                on_arrival(job.view, state.t)
                assigned = assign_deadline(job.view, state.t)
                if assigned is not None:
                    if assigned <= state.t:
                        raise SimulationError(
                            f"scheduler assigned past deadline "
                            f"{assigned} <= {state.t}"
                        )
                    job.assigned_deadline = int(assigned)
                eff = job.effective_deadline()
                if eff is not None:
                    heappush(deadline_heap, (eff, spec.job_id))

            # ---- expiries at t ---------------------------------------
            while deadline_heap and deadline_heap[0][0] <= state.t:
                _, job_id = heappop(deadline_heap)
                job = active.get(job_id)
                if job is None or not job.is_live():
                    continue  # stale entry
                eff = job.effective_deadline()
                if eff is None or eff > state.t:
                    continue
                if arena is not None:
                    entry = arena.entries.pop(job_id, None)
                    if entry is not None:
                        # finish record needs current processor_steps
                        self._retire_entry(arena, entry, write_back=True)
                        arena.exec_min = self._fresh_min(arena)
                job.expired = True
                job.dag.mark_preempted(job.executing)
                job.executing = ()
                state.prev_running.pop(job_id, None)
                del active[job_id]
                finished[job_id] = _finish_record(job)
                counters.expiries += 1
                scheduler.on_expiry(job.view, state.t)

            state.end_time = state.t

            # ---- termination -----------------------------------------
            if target is None and not active and not pending:
                self._materialize(arena)
                arena = None
                state.done = True
                break
            if horizon is not None and state.t >= horizon:
                self._materialize(arena)
                arena = None
                self._abandon_all(state)
                state.done = True
                break

            t = state.t

            # ---- allocation ------------------------------------------
            alloc = scheduler.allocate(t)
            counters.decisions += 1
            if arena is None:
                self._check_allocation(alloc, active)
                arena = _Arena()
                self._apply_diff(arena, alloc, state, counters, overhead)
            elif alloc == arena.alloc:
                # Identical allocation: the arena stands (it was checked
                # when applied, and equal contents stay well-formed).
                # Node completions since the last chunk only require the
                # affected picks to be refreshed.
                if arena.dirty:
                    self._rewrite_dirty(arena, state, counters, overhead)
            else:
                self._check_allocation(alloc, active)
                self._apply_diff(arena, alloc, state, counters, overhead)
            # completion processing follows this dict's iteration order
            # (= the event engine's assignment order this decision)
            arena.cur_alloc = alloc

            # ---- choose chunk length dt ------------------------------
            exec_min = arena.exec_min
            best = None
            if pending:
                c = pending[0][0] - t
                if c > 0:
                    best = c
            if deadline_heap:
                c = deadline_heap[0][0] - t
                if c > 0 and (best is None or c < best):
                    best = c
            if exec_min != inf:
                c = ceil(exec_min / speed)
                if c > 0 and (best is None or c < best):
                    best = c
            if wakeup is not None:
                wt = wakeup(t)
                if wt is not None:
                    if wt <= t:
                        raise SimulationError(
                            f"scheduler wakeup {wt} not after t={t}"
                        )
                    c = wt - t
                    if best is None or c < best:
                        best = c
            if best is None:
                dt = None
            else:
                dt = 1 if best < 1 else best

            if dt is None:
                if target is None:
                    self._materialize(arena)
                    arena = None
                    self._abandon_all(state)
                    state.done = True
                    break
                dt = target - t
            elif target is not None:
                dt = min(dt, target - t)
            if horizon is not None:
                dt = min(dt, horizon - t)
                if dt <= 0:
                    self._materialize(arena)
                    arena = None
                    self._abandon_all(state)
                    state.done = True
                    break

            # ---- execute the chunk (array ops) -----------------------
            amount = speed * dt
            ev = arena.ev
            subtract(ev, amount, out=ev)  # retired/pad slots: inf stays inf
            multiply(arena.k_arr, dt, out=arena.tmp)
            add(arena.psteps, arena.tmp, out=arena.psteps)
            counters.steps += dt
            counters.allocated_steps += arena.allocated_procs * dt
            counters.busy_steps += arena.executing_procs * dt
            arena.exec_min = exec_min = arena.exec_min - amount
            t += dt
            state.t = t

            # ---- completions at t ------------------------------------
            if exec_min <= _RESIDUE:
                self._process_completions(arena, state, t)

    # ------------------------------------------------------------------
    # Arena plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _fresh_min(arena: _Arena) -> float:
        """Smallest remaining work over all live nodes (bit-equal to the
        event engine's fused per-job minimum; retired slots are inf)."""
        n = arena.next_off
        return float(arena.ev[:n].min()) if n else _INF

    def _materialize(self, arena: Optional[_Arena]) -> None:
        """Write arena state back to the authoritative objects.

        Called before anything outside the hot loop may observe
        execution progress.  Idempotent.
        """
        if arena is None:
            return
        ev = arena.ev
        psteps = arena.psteps
        for job, nodes, _k, dag, off, slot in arena.entries.values():
            seg = ev[off : off + len(nodes)].tolist()
            remaining = dag._remaining
            for j, nd in enumerate(nodes):
                remaining[nd] = seg[j]
            job.processor_steps = float(psteps[slot])
            # Bit-equal to the event engine's decremented memo: min is
            # order-independent and commutes with the chunk subtractions.
            job._min_rem = min(seg)

    def _retire_entry(self, arena: _Arena, entry: list, write_back: bool) -> None:
        """Release an entry's arena residency (segment -> inf, k -> 0).

        With ``write_back`` the authoritative objects receive the
        entry's current remaining/processor-step state first; callers
        that already wrote the state (job completion) skip it.
        """
        job, nodes, k, dag, off, slot = entry
        ev = arena.ev
        if write_back:
            seg = ev[off : off + len(nodes)].tolist()
            remaining = dag._remaining
            for j, nd in enumerate(nodes):
                remaining[nd] = seg[j]
            job._min_rem = min(seg)
        job.processor_steps = float(arena.psteps[slot])
        ev[off : off + k] = _INF
        arena.k_arr[slot] = 0.0
        arena.live_nodes -= k
        arena.allocated_procs -= k
        arena.executing_procs -= len(nodes)

    def _append_segment(self, arena: _Arena, job, nodes, k: int, dag) -> None:
        """Give a job arena residency: segment of width ``k`` plus an
        entry slot for processor-step accounting."""
        if arena.next_off + k > arena.ev.size or arena.next_slot >= arena.k_arr.size:
            self._compact(arena, k)
        off = arena.next_off
        arena.next_off = off + k
        slot = arena.next_slot
        arena.next_slot = slot + 1
        ev = arena.ev
        remaining = dag._remaining
        for j, nd in enumerate(nodes):
            ev[off + j] = remaining[nd]
        if len(nodes) < k:
            ev[off + len(nodes) : off + k] = _INF
        arena.owner[off : off + k] = job.job_id
        arena.psteps[slot] = job.processor_steps
        arena.k_arr[slot] = float(k)
        arena.live_nodes += k
        arena.allocated_procs += k
        arena.executing_procs += len(nodes)
        arena.entries[job.job_id] = [job, nodes, k, dag, off, slot]

    def _compact(self, arena: _Arena, need_nodes: int) -> None:
        """Drop retired segments/slots and resize for ``need_nodes`` more.

        Pure re-layout: values are copied, never recomputed, so no
        observable state changes.  Amortized O(live) by doubling.
        """
        node_cap = 64
        while node_cap < 2 * (arena.live_nodes + need_nodes):
            node_cap *= 2
        slot_cap = 16
        while slot_cap < 2 * (len(arena.entries) + 1):
            slot_cap *= 2
        ev = np.full(node_cap, _INF, dtype=np.float64)
        owner = np.zeros(node_cap, dtype=np.int64)
        psteps = np.zeros(slot_cap, dtype=np.float64)
        k_arr = np.zeros(slot_cap, dtype=np.float64)
        off = 0
        slot = 0
        old_ev = arena.ev
        for entry in arena.entries.values():
            _job, _nodes, k, _dag, old_off, old_slot = entry
            ev[off : off + k] = old_ev[old_off : old_off + k]
            owner[off : off + k] = _job.job_id
            psteps[slot] = arena.psteps[old_slot]
            k_arr[slot] = arena.k_arr[old_slot]
            entry[4] = off
            entry[5] = slot
            off += k
            slot += 1
        arena.ev = ev
        arena.owner = owner
        arena.psteps = psteps
        arena.k_arr = k_arr
        arena.tmp = np.empty(slot_cap, dtype=np.float64)
        arena.next_off = off
        arena.next_slot = slot

    # ------------------------------------------------------------------
    # Decision-point updates (each replicates the event engine's
    # per-decision assignment loop for exactly the jobs it touches)
    # ------------------------------------------------------------------
    def _apply_diff(self, arena: _Arena, alloc, state, counters, overhead) -> None:
        """Reconcile the arena with a changed allocation.

        Jobs keeping their processor count are untouched (their
        segments, picks, marks and memos are all still exact -- the
        same reasoning as the event engine's memo fast path); everything
        else follows the event engine's bookkeeping verbatim.
        """
        active = state.active
        prev_running = state.prev_running
        entries = arena.entries
        if arena.dirty:
            dirty = {jid: (pos, promo) for jid, pos, promo in arena.dirty}
        else:
            dirty = {}
        n_alloc = 0
        for job_id, k in alloc.items():
            if k <= 0:
                continue
            n_alloc += 1
            entry = entries.get(job_id)
            if entry is not None:
                if entry[2] == k:
                    info = dirty.get(job_id)
                    if info is not None:
                        self._rewrite_entry(
                            arena, entry, info[0], info[1],
                            state, counters, overhead,
                        )
                    continue
                # width changed: retire the segment but keep the job's
                # marks/prev_running -- the re-pick below runs the event
                # engine's memo-miss path against them
                del entries[job_id]
                self._retire_entry(arena, entry, write_back=True)
            self._add_entry(arena, job_id, k, state, counters, overhead)
        # jobs allocated nothing this round lose their running marks
        # (gate against the *allocated* job count, not the entry table:
        # a job explicitly allocated zero still holds a stale entry)
        if len(prev_running) > n_alloc:
            for job_id in list(prev_running):
                if alloc.get(job_id, 0) <= 0:
                    entry = entries.pop(job_id, None)
                    if entry is not None:
                        self._retire_entry(arena, entry, write_back=True)
                    job = active.get(job_id)
                    prev = prev_running.pop(job_id)
                    if job is not None:
                        job._pick_k = -1  # pick memo needs re-marking
                        dag = job.dag
                        stale = {
                            nd for nd in prev if dag.node_remaining(nd) > 0
                        }
                        counters.preemptions += len(stale)
                        dag.mark_preempted(stale)
                        if overhead > 0:
                            for nd in stale:
                                dag.add_overhead(nd, overhead)
                        job.executing = ()
        arena.alloc = dict(alloc)
        arena.dirty = []
        arena.exec_min = self._fresh_min(arena)

    def _add_entry(self, arena: _Arena, job_id: int, k: int, state, counters, overhead) -> None:
        """Event-engine per-job assignment bookkeeping + arena append."""
        job = state.active[job_id]
        dag = job.dag
        if job._pick_k == k and job._pick_version == dag.ready_version:
            # Memo hit: pick, RUNNING marks and prev_running entry are
            # all still exact (the job stayed allocated at this width
            # since the memo was written).
            nodes = job._pick_nodes
        else:
            ready = dag._ready
            nodes = list(ready) if len(ready) <= k else list(islice(ready, k))
            job._pick_k = k
            job._pick_version = dag.ready_version
            job._pick_nodes = nodes
            prev = state.prev_running.get(job_id)
            dag_state = dag._state
            if (
                prev is not None
                and prev != nodes
                and not (len(nodes) >= len(prev))
            ):
                now = set(nodes)
                stale = [
                    nd for nd in prev if nd not in now and dag_state[nd] != _DONE
                ]
                if stale:
                    counters.preemptions += len(stale)
                    dag.mark_preempted(stale)
                    if overhead > 0:
                        for nd in stale:
                            dag.add_overhead(nd, overhead)
            for nd in nodes:
                dag_state[nd] = _RUNNING
            state.prev_running[job_id] = nodes
            job.executing = tuple(nodes)
            job._assign = (job, nodes, k, dag)
            job._min_rem = min(map(dag._remaining.__getitem__, nodes))
        self._append_segment(arena, job, nodes, k, dag)

    def _rewrite_entry(
        self, arena: _Arena, entry: list, positions, promoted,
        state, counters, overhead,
    ) -> None:
        """Refresh one dirty entry's pick in place (same width ``k``).

        Runs at the next decision point after the pick-relative
        ``positions`` of the entry's segment completed (promoting
        ``promoted``), once the scheduler confirmed the job keeps ``k``
        processors.

        When the old pick covered the *entire* ready set (``len(old) ==
        len(old ready)``, detectable as ``survivors + promoted ==
        len(ready)`` now), the new pick is exactly the survivors in
        order plus the promoted nodes appended -- the event engine's
        ``list(ready)`` result -- and its preemption scan is provably
        empty (old minus new = completed = DONE), so the rebuild costs
        O(completed + promoted) instead of O(ready).  Otherwise the
        event engine's memo-miss path runs verbatim, reading surviving
        values from the arena (the authoritative copy) and writing back
        any still-live node the new pick drops.
        """
        job, old_nodes, k, dag, off, slot = entry
        ready = dag._ready
        ev = arena.ev
        n_old = len(old_nodes)
        old_seg = ev[off : off + n_old].tolist()
        dag_state = dag._state
        remaining = dag._remaining
        n_new = n_old - len(positions) + len(promoted)
        if n_new == len(ready) and n_new <= k:
            done = set(positions)
            nodes = []
            seg = []
            for i, nd in enumerate(old_nodes):
                if i in done:
                    continue
                nodes.append(nd)
                seg.append(old_seg[i])
            for nd in promoted:
                nodes.append(nd)
                seg.append(remaining[nd])
                dag_state[nd] = _RUNNING
            # survivors keep their RUNNING marks; the event engine's
            # stale scan is empty here (it would only find DONE nodes)
            job._pick_k = -1  # memo invalidated: _min_rem not refreshed
        else:
            nodes = list(ready) if len(ready) <= k else list(islice(ready, k))
            now = set(nodes)
            prev = state.prev_running.get(job.job_id)
            if (
                prev is not None
                and prev != nodes
                and not (len(nodes) >= len(prev))
            ):
                stale = [
                    nd for nd in prev if nd not in now and dag_state[nd] != _DONE
                ]
                if stale:
                    counters.preemptions += len(stale)
                    dag.mark_preempted(stale)
                    if overhead > 0:
                        for nd in stale:
                            dag.add_overhead(nd, overhead)
            for nd in nodes:
                dag_state[nd] = _RUNNING
            # seg values: survivors are authoritative in the arena, new
            # entrants never executed so their dict values are current;
            # dropped-but-live nodes get their arena value written back
            pos_of = {nd: i for i, nd in enumerate(old_nodes)}
            seg = []
            for nd in nodes:
                i = pos_of.get(nd)
                seg.append(remaining[nd] if i is None else old_seg[i])
            for nd, i in pos_of.items():
                if nd not in now:
                    remaining[nd] = old_seg[i]
            job._pick_k = -1  # memo invalidated: _min_rem not refreshed
        state.prev_running[job.job_id] = nodes
        job.executing = tuple(nodes)
        job._assign = (job, nodes, k, dag)
        n_seg = len(seg)
        if k <= 8:  # scalar stores beat slice-assign-from-list here
            for j, v in enumerate(seg):
                ev[off + j] = v
            for j in range(n_seg, k):
                ev[off + j] = _INF
        else:
            ev[off : off + n_seg] = seg
            if n_seg < k:
                ev[off + n_seg : off + k] = _INF
        arena.executing_procs += n_seg - n_old
        entry[1] = nodes

    def _rewrite_dirty(self, arena: _Arena, state, counters, overhead) -> None:
        """Refresh every dirty pick under an unchanged allocation."""
        entries = arena.entries
        for job_id, positions, promoted in arena.dirty:
            entry = entries.get(job_id)
            if entry is not None:
                self._rewrite_entry(
                    arena, entry, positions, promoted, state, counters, overhead
                )
        arena.dirty = []
        arena.exec_min = self._fresh_min(arena)

    # ------------------------------------------------------------------
    def _process_completions(self, arena: _Arena, state, t: int) -> None:
        """Handle node completions after a chunk.

        Touches *only* the completed arena slots (``done_idx`` from the
        vectorized scan); surviving nodes' values stay deferred in the
        arena.  DAG structure is updated immediately, per job in
        allocation order and per node in pick order -- the event
        engine's exact operation sequence.  Job completions release
        their entries; bare node completions queue a dirty rewrite
        (with their positions and promoted successors) for the next
        decision.
        """
        ev = arena.ev
        done_idx = np.nonzero(ev <= _RESIDUE)[0]
        if not done_idx.size:
            return  # conservative exec_min; inf slots never trip
        entries = arena.entries
        done_list = done_idx.tolist()
        owners = arena.owner[done_idx].tolist()
        # Segments are contiguous, so equal first/last owner means one
        # job; otherwise group positions per job, in assignment order
        # (the scheduler's *current* allocation dict order -- NOT the
        # stored equal-contents copy, whose insertion order may differ).
        if owners[0] == owners[-1]:
            groups = [(owners[0], done_list)]
        else:
            by_job: dict[int, list[int]] = {}
            for gi, jid in zip(done_list, owners):
                lst = by_job.get(jid)
                if lst is None:
                    by_job[jid] = [gi]
                else:
                    lst.append(gi)
            groups = [
                (jid, by_job[jid]) for jid in arena.cur_alloc if jid in by_job
            ]
        completions = []
        dirty = []
        for job_id, positions in groups:
            entry = entries.get(job_id)
            if entry is None:
                continue  # stale owner id on a retired slot
            job, nodes, _k, dag, off, _slot = entry
            dag_state = dag._state
            remaining = dag._remaining
            ready = dag._ready
            works = dag._works
            unmet = dag._unmet
            succ = dag._succ
            promoted = []
            rel = []  # pick-relative positions: segments can move
            # ascending slot order == pick order == the event engine's
            # per-node completion order within the job
            for gi in positions:
                i = gi - off
                rel.append(i)
                node = nodes[i]
                remaining[node] = 0.0
                ev[gi] = 0.0
                dag_state[node] = _DONE
                # done_work accumulates per node, in completion order,
                # exactly as the event engine's inlined process_many
                dag._done_work += works[node]
                del ready[node]
                for v in succ[node]:
                    u = unmet[v] - 1
                    unmet[v] = u
                    if u == 0:
                        dag_state[v] = _READY
                        ready[v] = None
                        promoted.append(v)
            dag._done_count += len(positions)
            dag.ready_version += 1
            if dag._done_count == dag._n and job.completion_time is None:
                job.completion_time = t
                job.earned_profit = self._profit_at_completion(job, t)
                completions.append(job)
            else:
                dirty.append((job_id, rel, promoted))
        if completions:
            finished = state.finished
            counters = state.counters
            prev_running = state.prev_running
            active = state.active
            scheduler = self.scheduler
            for job in completions:
                # every node already hit zero; only the processor-step
                # accumulator still lives in the arena
                entry = entries.pop(job.job_id)
                self._retire_entry(arena, entry, write_back=False)
                job.executing = ()
                prev_running.pop(job.job_id, None)
                del active[job.job_id]
                finished[job.job_id] = _finish_record(job)
                counters.completions += 1
                scheduler.on_completion(job.view, t)
        arena.dirty = dirty
        if not dirty:
            # retired segments are inf again; refresh the stale minimum
            # (dirty picks refresh it after their rewrite instead)
            arena.exec_min = self._fresh_min(arena)
