"""Engine backend selection: one name, three interchangeable cores.

Every layer that constructs a simulation engine -- services, cluster
shards, scenario specs, benchmarks, CLIs -- selects it through this
module so a backend name means the same thing everywhere:

``event``
    The reference event-driven object engine
    (:class:`~repro.sim.engine.Simulator`).  Full feature surface:
    streaming, snapshots, tracing, validation, pickers.
``array``
    The numpy struct-of-arrays core
    (:class:`~repro.sim.array_engine.ArraySimulator`), bit-identical to
    ``event`` and faster on multi-job hot paths; configurations the
    array loop cannot serve delegate to the event loop internally, so
    it is always safe to select.
``legacy``
    The frozen pre-rewrite oracle
    (:class:`~repro.sim._legacy_engine.LegacySimulator`).  Batch and
    streaming only -- no snapshot/restore, no live-job migration -- and
    deliberately unoptimized; useful as an independent differential
    reference, not for production runs.

The scenario component registry (``repro.scenarios.components``)
re-exposes the same names; this module exists so lower layers (service,
cluster) can resolve backends without importing the scenario system.
"""

from __future__ import annotations

from typing import Any

from repro.sim._legacy_engine import LegacySimulator
from repro.sim.array_engine import ArraySimulator
from repro.sim.engine import Simulator

#: Backend name -> engine class.  All three accept the positional/keyword
#: core of the ``Simulator`` signature (``m``, ``scheduler``, ``picker``,
#: ``speed``, ``horizon``, ``preemption_overhead``); only ``event`` and
#: ``array`` accept the observability extras (``recorder``, ``profiler``,
#: ``record_trace``, ``validate``) and the snapshot/migration API.
ENGINE_BACKENDS: dict[str, type] = {
    "event": Simulator,
    "array": ArraySimulator,
    "legacy": LegacySimulator,
}

#: Backends with the full service/cluster surface (streaming snapshots,
#: ``extract_active``/``inject_active`` migration).
SERVICE_BACKENDS: tuple[str, ...] = ("event", "array")


def resolve_backend(name: str) -> type:
    """Map a backend name to its engine class.

    Raises ``ValueError`` (with the valid names) for unknown backends.
    """
    try:
        return ENGINE_BACKENDS[name]
    except KeyError:
        valid = ", ".join(sorted(ENGINE_BACKENDS))
        raise ValueError(
            f"unknown engine backend {name!r}; valid backends: {valid}"
        ) from None


def make_engine(backend: str, /, **kwargs: Any):
    """Construct an engine of the named backend.

    ``kwargs`` are forwarded to the backend class unchanged; see
    :data:`ENGINE_BACKENDS` for which backends accept which extras.
    """
    return resolve_backend(backend)(**kwargs)
