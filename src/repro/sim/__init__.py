"""Discrete-time multiprocessor simulation substrate.

Realizes the paper's machine model -- ``m`` identical processors,
integer time steps, preemptive execution, speed augmentation -- and
drives pluggable schedulers over workloads of DAG jobs.
"""

from repro.sim.jobs import ActiveJob, CompletionRecord, JobSpec, JobView
from repro.sim.scheduler import Scheduler, SchedulerBase
from repro.sim.picker import (
    NodePicker,
    FIFOPicker,
    LIFOPicker,
    RandomPicker,
    AdversarialPicker,
    CriticalPathPicker,
    make_picker,
)
from repro.sim.trace import AllocationSlice, EventKind, RunCounters, Trace, TraceEvent
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.array_engine import ArraySimulator
from repro.sim.backends import (
    ENGINE_BACKENDS,
    SERVICE_BACKENDS,
    make_engine,
    resolve_backend,
)

__all__ = [
    "ArraySimulator",
    "ENGINE_BACKENDS",
    "SERVICE_BACKENDS",
    "make_engine",
    "resolve_backend",
    "ActiveJob",
    "CompletionRecord",
    "JobSpec",
    "JobView",
    "Scheduler",
    "SchedulerBase",
    "NodePicker",
    "FIFOPicker",
    "LIFOPicker",
    "RandomPicker",
    "AdversarialPicker",
    "CriticalPathPicker",
    "make_picker",
    "AllocationSlice",
    "EventKind",
    "RunCounters",
    "Trace",
    "TraceEvent",
    "SimulationResult",
    "Simulator",
]
