"""The scheduler protocol the simulation engine drives.

A scheduler is an event-driven object.  The engine notifies it of job
arrivals, completions and expiries, and between events repeatedly asks
for a processor *allocation*: a mapping ``job_id -> processor count``
whose values sum to at most ``m``.  The engine then picks ready nodes
(via the configured :mod:`~repro.sim.picker` policy -- never the
scheduler) and advances time.

Semi-non-clairvoyance is structural: schedulers receive
:class:`~repro.sim.jobs.JobView` objects only.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Protocol, runtime_checkable

from repro.errors import SchedulingError
from repro.sim.jobs import JobView


@runtime_checkable
class Scheduler(Protocol):
    """Protocol every scheduler must implement."""

    def on_start(self, m: int, speed: float) -> None:
        """Called once before the run with the machine configuration."""
        ...

    def on_arrival(self, job: JobView, t: int) -> None:
        """Job released at time ``t``."""
        ...

    def on_completion(self, job: JobView, t: int) -> None:
        """Job finished all DAG nodes at time ``t``."""
        ...

    def on_expiry(self, job: JobView, t: int) -> None:
        """Job removed unfinished at its (effective) deadline ``t``."""
        ...

    def allocate(self, t: int) -> dict[int, int]:
        """Return the processor allocation for the step starting at ``t``."""
        ...


class SchedulerBase:
    """Convenience base with no-op event handlers and machine capture.

    Subclasses get ``self.m`` and ``self.speed`` after :meth:`on_start`
    and may override only the hooks they need.  ``wakeup_after`` lets
    time-slot-driven schedulers (the paper's general-profit algorithm)
    bound the engine's fast-forward so allocation changes at slot
    boundaries are not skipped.
    """

    m: int = 0
    speed: float = 1.0

    #: Declare ``True`` when *any* scheduler hook -- :meth:`allocate`,
    #: :meth:`wakeup_after`, arrival/completion/expiry handlers,
    #: :meth:`assign_deadline`, or a priority/eligibility helper they
    #: call -- reads *execution progress*
    #: (:attr:`~repro.sim.jobs.JobView.work_completed` or anything else
    #: derived from node ``remaining`` values).  The array engine
    #: (:class:`~repro.sim.array_engine.ArraySimulator`) defers
    #: remaining-work write-backs to a numpy arena between decision
    #: points and must route progress-reading schedulers through the
    #: reference event loop; schedulers that fail to declare this would
    #: read stale progress there.  DAG *structure* (``num_ready``,
    #: ``is_complete``) is never deferred and needs no declaration.
    reads_progress: bool = False

    def on_start(self, m: int, speed: float) -> None:
        """Record machine configuration; override to add setup."""
        self.m = m
        self.speed = speed

    def on_arrival(self, job: JobView, t: int) -> None:
        """No-op; override in subclasses."""

    def on_completion(self, job: JobView, t: int) -> None:
        """No-op; override in subclasses."""

    def on_expiry(self, job: JobView, t: int) -> None:
        """No-op; override in subclasses."""

    def allocate(self, t: int) -> dict[int, int]:  # pragma: no cover - abstract
        """Override: return ``{job_id: processors}`` with total <= m."""
        raise NotImplementedError

    def wakeup_after(self, t: int) -> Optional[int]:
        """Next time > ``t`` at which the allocation may change without an
        arrival/completion/expiry event, or ``None`` if only events can
        change it.  Default: only events."""
        return None

    def assign_deadline(self, job: JobView, t: int) -> Optional[int]:
        """Absolute deadline this scheduler imposes on ``job`` (general-
        profit setting), or ``None``.  Called right after ``on_arrival``;
        the engine expires the job past the returned time."""
        return None

    # ------------------------------------------------------------------
    # Checkpointing (opt-in; see repro.service.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, Any]:
        """Serialize scheduler state to a JSON-compatible dict.

        Schedulers that support service checkpointing override this
        together with :meth:`restore_state`; the default refuses, so a
        checkpoint of an unsupported scheduler fails loudly instead of
        restoring silently-wrong state.
        """
        raise SchedulingError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def restore_state(
        self, data: dict[str, Any], views: Mapping[int, JobView]
    ) -> None:
        """Rebuild scheduler state from :meth:`snapshot_state` output.

        ``views`` maps live job ids to the engine's restored
        :class:`~repro.sim.jobs.JobView` objects; called after
        :meth:`on_start` on a freshly constructed scheduler of the same
        type and configuration.
        """
        raise SchedulingError(
            f"{type(self).__name__} does not support state snapshots"
        )
