"""Job specifications, runtime records and the semi-non-clairvoyant view.

Three layers:

* :class:`JobSpec` -- the immutable description a workload generator
  produces: DAG structure, arrival time, and either a deadline+profit
  pair (throughput setting, paper Section 3) or a general profit function
  (Section 5).
* :class:`ActiveJob` -- the engine's runtime record: the mutable
  :class:`~repro.dag.job.DAGJob` plus bookkeeping (executing nodes,
  completion time, scheduler-assigned deadline).
* :class:`JobView` -- what a scheduler is allowed to see.  The paper's
  algorithms are *semi-non-clairvoyant*: on arrival they learn only the
  total work ``W`` and span ``L``, and afterwards only how many nodes are
  ready.  The view enforces that boundary by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.dag.graph import DAGStructure
from repro.dag.job import DAGJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profit.functions import ProfitFunction


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job in a workload.

    Parameters
    ----------
    job_id:
        Unique identifier within the workload.
    structure:
        The job's DAG.
    arrival:
        Release time :math:`r_i` (integer time step).
    deadline:
        Absolute deadline :math:`d_i` (throughput setting), or ``None``
        in the general-profit setting where ``profit_fn`` governs.
    profit:
        Profit :math:`p_i` for on-time completion (throughput setting).
    profit_fn:
        Non-increasing profit function :math:`p_i(t)` of the *relative*
        completion time (general-profit setting).  Mutually exclusive
        with ``deadline``.
    """

    job_id: int
    structure: DAGStructure
    arrival: int
    deadline: Optional[int] = None
    profit: float = 1.0
    profit_fn: Optional["ProfitFunction"] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.deadline is None and self.profit_fn is None:
            raise ValueError("job needs a deadline or a profit function")
        if self.deadline is not None and self.profit_fn is not None:
            raise ValueError("deadline and profit_fn are mutually exclusive")
        if self.deadline is not None and self.deadline <= self.arrival:
            raise ValueError("deadline must be after arrival")
        if self.profit_fn is not None:
            # expose the flat-region value as the scalar profit so
            # profit-aware baselines see something meaningful
            object.__setattr__(self, "profit", float(self.profit_fn.peak))
        if self.profit < 0:
            raise ValueError("profit must be non-negative")

    # ------------------------------------------------------------------
    @property
    def work(self) -> float:
        """Total work :math:`W_i`."""
        return self.structure.total_work

    @property
    def span(self) -> float:
        """Critical-path length :math:`L_i`."""
        return self.structure.span

    @property
    def relative_deadline(self) -> Optional[int]:
        """:math:`D_i = d_i - r_i`, or ``None`` for general-profit jobs."""
        if self.deadline is None:
            return None
        return self.deadline - self.arrival

    def min_execution_time(self, m: int) -> float:
        """Lower bound ``max(L, W/m)`` on any 1-speed completion time."""
        return max(self.span, self.work / m)

    def sequential_bound(self, m: int) -> float:
        """The semi-non-clairvoyant bound ``(W - L)/m + L`` on ``m`` cores.

        Greedily running the job alone on ``m`` unit-speed processors
        always finishes within this time regardless of ready-node choice
        (Graham's bound); the paper's deadline-slack assumption is stated
        relative to it.
        """
        return (self.work - self.span) / m + self.span

    def profit_at(self, completion_offset: float) -> float:
        """Profit obtained if the job finishes ``completion_offset`` after
        arrival (dispatches on the throughput/general-profit setting)."""
        if self.profit_fn is not None:
            return float(self.profit_fn(completion_offset))
        assert self.deadline is not None
        return self.profit if completion_offset <= self.deadline - self.arrival else 0.0


class ActiveJob:
    """Engine-side runtime record of a released job."""

    __slots__ = (
        "spec",
        "dag",
        "executing",
        "completion_time",
        "assigned_deadline",
        "expired",
        "abandoned",
        "processor_steps",
        "earned_profit",
        "view",
        "_pick_version",
        "_pick_k",
        "_pick_nodes",
        "_assign",
        "_min_rem",
    )

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.dag = DAGJob(spec.structure)
        #: node ids currently holding a processor
        self.executing: tuple[int, ...] = ()
        #: absolute completion time, or None while unfinished
        self.completion_time: Optional[int] = None
        #: deadline assigned by the scheduler (general-profit setting);
        #: overrides nothing, but the engine expires the job past it
        self.assigned_deadline: Optional[int] = None
        self.expired = False
        self.abandoned = False
        #: total processor-steps consumed so far
        self.processor_steps = 0.0
        self.earned_profit = 0.0
        self.view = JobView(self)
        # FIFO-pick memo (engine-internal, never snapshotted): the last
        # pick is reusable while the ready set and requested width are
        # unchanged and the job stayed allocated.
        self._pick_version = -1
        self._pick_k = -1
        self._pick_nodes: list[int] = []
        #: the engine's (job, nodes, k, dag) assignment entry, built once
        #: per memo write and re-appended on every memo hit
        self._assign: tuple = ()
        # Smallest remaining work among the executing nodes, maintained
        # decrementally while the pick memo holds (-1.0 = recompute).
        # IEEE subtraction is monotone, so depleting every executing node
        # by the same amount keeps the argmin fixed and this value equals
        # min(remaining) bit-for-bit.
        self._min_rem = -1.0

    @property
    def job_id(self) -> int:
        """The spec's job id."""
        return self.spec.job_id

    def effective_deadline(self) -> Optional[int]:
        """The absolute time past which the engine expires this job.

        The spec deadline if present, else the scheduler-assigned one
        (general-profit setting), else ``None`` (never expires).
        """
        if self.spec.deadline is not None:
            return self.spec.deadline
        return self.assigned_deadline

    def is_complete(self) -> bool:
        """Whether all DAG nodes are done."""
        return self.dag.is_complete()

    def is_live(self) -> bool:
        """Whether the job can still earn profit in this run."""
        return not (self.is_complete() or self.expired or self.abandoned)


class JobView:
    """The scheduler-facing, information-restricted view of a job.

    Exposes exactly the paper's semi-non-clairvoyant interface: identity,
    arrival, deadline/profit data, ``W``, ``L``, and the current number
    of ready nodes.  It deliberately has no accessor for the DAG
    topology or for node identities.
    """

    __slots__ = ("_job",)

    def __init__(self, job: ActiveJob) -> None:
        self._job = job

    # -- identity / static data ---------------------------------------
    @property
    def job_id(self) -> int:
        """Unique job identifier."""
        return self._job.spec.job_id

    @property
    def arrival(self) -> int:
        """Release time :math:`r_i`."""
        return self._job.spec.arrival

    @property
    def deadline(self) -> Optional[int]:
        """Absolute spec deadline :math:`d_i` (``None`` in general-profit)."""
        return self._job.spec.deadline

    @property
    def relative_deadline(self) -> Optional[int]:
        """:math:`D_i = d_i - r_i`."""
        return self._job.spec.relative_deadline

    @property
    def profit(self) -> float:
        """On-time profit :math:`p_i` (throughput setting)."""
        return self._job.spec.profit

    @property
    def profit_fn(self) -> Optional["ProfitFunction"]:
        """General profit function :math:`p_i(t)`, when present."""
        return self._job.spec.profit_fn

    @property
    def work(self) -> float:
        """Total work :math:`W_i` (known at arrival per the paper)."""
        return self._job.spec.work

    @property
    def span(self) -> float:
        """Span :math:`L_i` (known at arrival per the paper)."""
        return self._job.spec.span

    # -- dynamic, permitted data --------------------------------------
    @property
    def num_ready(self) -> int:
        """Number of currently ready nodes (the scheduler may know this)."""
        return self._job.dag.num_ready()

    @property
    def is_complete(self) -> bool:
        """Whether the job has finished."""
        return self._job.dag.is_complete()

    @property
    def work_completed(self) -> float:
        """Work processed so far.

        A real scheduler can observe this from its own execution trace;
        the paper's algorithm never uses it (its allotments are fixed at
        arrival), but laxity-based baselines do.
        """
        return self._job.spec.work - self._job.dag.remaining_work()

    @property
    def assigned_deadline(self) -> Optional[int]:
        """Deadline assigned by a general-profit scheduler, if any."""
        return self._job.assigned_deadline

    # -- derived helpers ----------------------------------------------
    def sequential_bound(self, m: int) -> float:
        """``(W - L)/m + L`` -- see :meth:`JobSpec.sequential_bound`."""
        return self._job.spec.sequential_bound(m)

    def slack_factor(self, m: int) -> float:
        """``D / ((W-L)/m + L)`` -- how much the deadline exceeds the
        semi-non-clairvoyant bound; the paper assumes this is >= 1+eps."""
        rel = self.relative_deadline
        if rel is None:
            return math.inf
        return rel / self.sequential_bound(m)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobView(id={self.job_id}, r={self.arrival}, d={self.deadline}, "
            f"W={self.work:.6g}, L={self.span:.6g})"
        )


@dataclass
class CompletionRecord:
    """Outcome of one job in a finished simulation."""

    job_id: int
    arrival: int
    deadline: Optional[int]
    completion_time: Optional[int]
    profit: float
    #: total processor-steps the engine spent on this job
    processor_steps: float = 0.0
    #: True when the job was removed at its deadline without finishing
    expired: bool = False
    #: True when the run ended (or scheduler gave up) before completion
    abandoned: bool = False
    #: scheduler-assigned deadline (general-profit setting)
    assigned_deadline: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Whether the job finished (regardless of earning profit)."""
        return self.completion_time is not None

    @property
    def on_time(self) -> bool:
        """Whether the job finished by its effective deadline."""
        if self.completion_time is None:
            return False
        deadline = self.deadline if self.deadline is not None else self.assigned_deadline
        return deadline is None or self.completion_time <= deadline
