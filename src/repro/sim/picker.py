"""Ready-node pick policies.

When a scheduler grants a job ``k`` processors and more than ``k`` nodes
are ready, *someone* must choose which ``k`` run.  The paper's
semi-non-clairvoyant model says the scheduler cannot distinguish ready
nodes, so the choice is arbitrary -- and Theorem 1's lower bound comes
precisely from an adversarial choice.  The engine therefore owns this
decision and delegates it to a pluggable :class:`NodePicker`:

* :class:`FIFOPicker` / :class:`LIFOPicker` -- deterministic orders;
* :class:`RandomPicker` -- uniformly random (typical behaviour);
* :class:`AdversarialPicker` -- defers critical-path nodes as long as
  possible (realizes the Figure 1 worst case);
* :class:`CriticalPathPicker` -- the clairvoyant best choice (runs the
  deepest nodes first); used as the "fully clairvoyant scheduler"
  reference in the Figure 1 experiment.

Pickers that consult DAG structure (the last two) model the *adversary*
or the *clairvoyant reference*, never the semi-non-clairvoyant
algorithm; schedulers have no access to them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.dag.job import DAGJob


class NodePicker(Protocol):
    """Strategy choosing which ready nodes receive processors."""

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Select ``min(k, len(ready))`` node ids from ``ready``."""
        ...


class FIFOPicker:
    """Pick ready nodes in the order they became ready."""

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Take the oldest ``k`` ready nodes."""
        return list(ready[:k])

    def __repr__(self) -> str:  # pragma: no cover
        return "FIFOPicker()"


class LIFOPicker:
    """Pick the most recently readied nodes first."""

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Take the ``k`` most recently readied nodes."""
        return list(ready[max(0, len(ready) - k):])

    def __repr__(self) -> str:  # pragma: no cover
        return "LIFOPicker()"


class RandomPicker:
    """Pick uniformly at random among ready nodes.

    Parameters
    ----------
    rng:
        Random generator, or an integer seed for convenience.
    """

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Sample ``k`` ready nodes uniformly without replacement."""
        if len(ready) <= k:
            return list(ready)
        idx = self.rng.choice(len(ready), size=k, replace=False)
        return [ready[i] for i in idx]

    def __repr__(self) -> str:  # pragma: no cover
        return "RandomPicker()"


class AdversarialPicker:
    """Defer critical-path nodes: pick the *shallowest* ready nodes first.

    A node's depth is its tail length (longest remaining path through
    it, over the static DAG).  Picking small-tail nodes first postpones
    the critical path, realizing the paper's Figure 1 worst case where
    the entire parallel block is drained before the chain starts.
    """

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Take the ``k`` ready nodes with the *shortest* tails."""
        if len(ready) <= k:
            return list(ready)
        tails = dag.structure.tail_lengths()
        order = sorted(ready, key=lambda node: (tails[node], node))
        return order[:k]

    def __repr__(self) -> str:  # pragma: no cover
        return "AdversarialPicker()"


class CriticalPathPicker:
    """Clairvoyant pick: run the deepest (longest-tail) ready nodes first.

    This is the textbook critical-path-first heuristic; on the Figure 1
    DAG it achieves the clairvoyant optimum ``W/m``.
    """

    def pick(self, dag: DAGJob, ready: Sequence[int], k: int) -> list[int]:
        """Take the ``k`` ready nodes with the *longest* tails."""
        if len(ready) <= k:
            return list(ready)
        tails = dag.structure.tail_lengths()
        order = sorted(ready, key=lambda node: (-tails[node], node))
        return order[:k]

    def __repr__(self) -> str:  # pragma: no cover
        return "CriticalPathPicker()"


#: Registry of picker factories by name, for experiment configs.
PICKERS = {
    "fifo": FIFOPicker,
    "lifo": LIFOPicker,
    "random": RandomPicker,
    "adversarial": AdversarialPicker,
    "critical_path": CriticalPathPicker,
}


def make_picker(name: str, rng: np.random.Generator | int | None = None) -> NodePicker:
    """Instantiate a picker by registry name."""
    try:
        cls = PICKERS[name]
    except KeyError:
        raise ValueError(f"unknown picker {name!r}; known: {sorted(PICKERS)}") from None
    if cls is RandomPicker:
        return RandomPicker(rng)
    return cls()
