"""Frozen pre-event-core reference engine (the stepper as of PR 1).

This module is a deliberately *unoptimized, self-contained* copy of the
simulation hot path as it existed before the event-driven rewrite of
:mod:`repro.sim.engine`:

* :class:`_LegacyDAGJob` -- the numpy-scalar / enum-dispatch DAG runtime
  (per-node ``process`` calls, ``NodeState`` round-trips, full-tuple
  ``ready_nodes`` rebuilds);
* :class:`LegacySimulator` -- the original decision loop with its
  quadratic stale-node scan and list-building ``_next_dt``.

It exists for two reasons and must not be optimized or refactored:

1. **Equivalence oracle.**  The property tests in
   ``tests/test_engine_event_equivalence.py`` assert that the live
   engine produces bit-identical records, counters and profit against
   this reference across random DAG families, seeds, and batch/stream
   drivers.
2. **Perf baseline.**  The benchmark harness (``benchmarks/run_bench.py``)
   measures the live engine's speedup over this reference on the same
   machine, so ``BENCH_engine.json`` carries a machine-fair trajectory.

Semantics are documented in :mod:`repro.sim.engine`; this copy only
freezes the implementation.
"""

from __future__ import annotations

import heapq
import logging
import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.dag.graph import DAGStructure
from repro.dag.node import NodeState
from repro.errors import AllocationError, SimulationError
from repro.sim.engine import SimulationResult, _finish_record
from repro.sim.jobs import CompletionRecord, JobSpec, JobView
from repro.sim.picker import FIFOPicker, NodePicker
from repro.sim.scheduler import Scheduler
from repro.sim.trace import EventKind, RunCounters, Trace

logger = logging.getLogger(__name__)


class _LegacyDAGJob:
    """Pre-rewrite DAG runtime: numpy scalar state + enum dispatch."""

    __slots__ = (
        "structure",
        "_remaining",
        "_unmet",
        "_state",
        "_ready",
        "_done_count",
        "_done_work",
    )

    def __init__(self, structure: DAGStructure) -> None:
        self.structure = structure
        n = structure.num_nodes
        self._remaining = structure.work.copy()
        self._unmet = np.fromiter(
            (structure.indegree(i) for i in range(n)), dtype=np.int64, count=n
        )
        self._state = np.full(n, NodeState.PENDING, dtype=np.int8)
        self._ready: dict[int, None] = {}
        for i in structure.topological_order():
            if self._unmet[i] == 0:
                self._state[i] = NodeState.READY
                self._ready[i] = None
        self._done_count = 0
        self._done_work = 0.0

    def ready_nodes(self) -> tuple[int, ...]:
        return tuple(self._ready)

    def num_ready(self) -> int:
        return len(self._ready)

    def node_state(self, node: int) -> NodeState:
        return NodeState(self._state[node])

    def node_remaining(self, node: int) -> float:
        return float(self._remaining[node])

    def remaining_work(self) -> float:
        mask = self._state != NodeState.DONE
        partial = float((self.structure.work[mask] - self._remaining[mask]).sum())
        return float(self.structure.total_work - self._done_work - partial)

    def is_complete(self) -> bool:
        return self._done_count == self.structure.num_nodes

    def mark_running(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            if not NodeState(self._state[node]).is_executable():
                raise ValueError(
                    f"node {node} in state {NodeState(self._state[node]).name} "
                    "cannot run"
                )
            self._state[node] = NodeState.RUNNING

    def mark_preempted(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            if self._state[node] == NodeState.RUNNING:
                self._state[node] = NodeState.READY

    def process(self, node: int, amount: float) -> bool:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        state = NodeState(self._state[node])
        if not state.is_executable():
            raise ValueError(f"cannot process node {node} in state {state.name}")
        rem = self._remaining[node] - amount
        if rem <= 1e-12:
            rem = 0.0
        self._remaining[node] = rem
        if rem > 0.0:
            return False
        self._complete_node(node)
        return True

    def _complete_node(self, node: int) -> None:
        self._state[node] = NodeState.DONE
        self._done_count += 1
        self._done_work += float(self.structure.work[node])
        del self._ready[node]
        for v in self.structure.successors(node):
            self._unmet[v] -= 1
            if self._unmet[v] == 0:
                self._state[v] = NodeState.READY
                self._ready[v] = None

    def add_overhead(self, node: int, amount: float) -> None:
        if amount < 0:
            raise ValueError("overhead must be non-negative")
        if self._state[node] == NodeState.DONE:
            return
        original = float(self.structure.work[node])
        self._remaining[node] = min(original, self._remaining[node] + amount)


class _LegacyActiveJob:
    """Pre-rewrite runtime job record wired to :class:`_LegacyDAGJob`."""

    __slots__ = (
        "spec",
        "dag",
        "executing",
        "completion_time",
        "assigned_deadline",
        "expired",
        "abandoned",
        "processor_steps",
        "earned_profit",
        "view",
    )

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.dag = _LegacyDAGJob(spec.structure)
        self.executing: tuple[int, ...] = ()
        self.completion_time: Optional[int] = None
        self.assigned_deadline: Optional[int] = None
        self.expired = False
        self.abandoned = False
        self.processor_steps = 0.0
        self.earned_profit = 0.0
        self.view = JobView(self)  # duck-typed: reads spec/dag only

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    def effective_deadline(self) -> Optional[int]:
        if self.spec.deadline is not None:
            return self.spec.deadline
        return self.assigned_deadline

    def is_complete(self) -> bool:
        return self.dag.is_complete()

    def is_live(self) -> bool:
        return not (self.is_complete() or self.expired or self.abandoned)


class _LegacyRunState:
    __slots__ = (
        "t",
        "end_time",
        "arrival_seen",
        "done",
        "pending",
        "ids",
        "active",
        "finished",
        "deadline_heap",
        "prev_running",
        "counters",
        "trace",
    )

    def __init__(self, trace: Optional[Trace]) -> None:
        self.t = 0
        self.end_time = 0
        self.arrival_seen = False
        self.done = False
        self.pending: list[tuple[int, int, JobSpec]] = []
        self.ids: set[int] = set()
        self.active: dict[int, _LegacyActiveJob] = {}
        self.finished: dict[int, CompletionRecord] = {}
        self.deadline_heap: list[tuple[int, int]] = []
        self.prev_running: dict[int, set[int]] = {}
        self.counters = RunCounters()
        self.trace = trace


class LegacySimulator:
    """The pre-PR decision loop, frozen verbatim (checkpointing dropped).

    Supports the same batch (:meth:`run`) and streaming (:meth:`start` /
    :meth:`submit` / :meth:`advance_to` / :meth:`finish`) drivers as the
    live :class:`repro.sim.engine.Simulator`, with identical semantics.
    """

    def __init__(
        self,
        m: int,
        scheduler: Scheduler,
        picker: Optional[NodePicker] = None,
        speed: float = 1.0,
        record_trace: bool = False,
        horizon: Optional[int] = None,
        preemption_overhead: float = 0.0,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.m = int(m)
        self.scheduler = scheduler
        self.picker = picker if picker is not None else FIFOPicker()
        self.speed = float(speed)
        self.record_trace = bool(record_trace)
        self.horizon = horizon
        self.preemption_overhead = float(preemption_overhead)
        self._state: Optional[_LegacyRunState] = None

    # -- batch ----------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> SimulationResult:
        """Batch driver: submit every spec, drain all events, report."""
        ids = [sp.job_id for sp in specs]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate job ids in workload")
        self.start()
        for spec in sorted(specs, key=lambda sp: (sp.arrival, sp.job_id)):
            self.submit(spec)
        return self.finish()

    # -- streaming ------------------------------------------------------
    def start(self) -> None:
        """Open a streaming session (notifies the scheduler)."""
        if self._state is not None:
            raise SimulationError("a session is already active; call finish() first")
        trace = Trace(self.m, self.speed) if self.record_trace else None
        self._state = _LegacyRunState(trace)
        self.scheduler.on_start(self.m, self.speed)

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> None:
        """Queue one job in the open session, advancing to ``t`` first."""
        state = self._require_session()
        if t is not None:
            if t < state.t:
                raise SimulationError(
                    f"submission time {t} is in the past (now={state.t})"
                )
            if t > state.t:
                self.advance_to(t)
        if spec.job_id in state.ids:
            raise SimulationError(f"duplicate job id {spec.job_id}")
        if spec.arrival < state.t:
            raise SimulationError(
                f"job {spec.job_id} arrival {spec.arrival} is in the past "
                f"(now={state.t})"
            )
        state.ids.add(spec.job_id)
        heapq.heappush(state.pending, (spec.arrival, spec.job_id, spec))

    def advance_to(self, target: int) -> int:
        """Process events up to ``target``; returns the reached time."""
        state = self._require_session()
        if target < state.t:
            raise SimulationError(f"cannot advance to {target} (now={state.t})")
        self._advance(target)
        return state.t

    def finish(self) -> SimulationResult:
        """Drain remaining events and close the session."""
        state = self._require_session()
        self._advance(None)
        while state.pending:
            _, job_id, spec = heapq.heappop(state.pending)
            state.finished[job_id] = CompletionRecord(
                job_id=job_id,
                arrival=spec.arrival,
                deadline=spec.deadline,
                completion_time=None,
                profit=0.0,
                abandoned=True,
            )
            state.counters.abandons += 1
        result = SimulationResult(
            m=self.m,
            speed=self.speed,
            records=state.finished,
            counters=state.counters,
            end_time=state.end_time,
            trace=state.trace,
        )
        self._state = None
        return result

    # -- the frozen decision loop --------------------------------------
    def _require_session(self) -> _LegacyRunState:
        if self._state is None:
            raise SimulationError("no active session; call start() first")
        return self._state

    def _advance(self, target: Optional[int]) -> None:
        state = self._require_session()
        horizon = self.horizon
        if target is not None and horizon is not None:
            target = min(target, horizon)

        while not state.done:
            if target is not None and state.t >= target:
                return

            if not state.arrival_seen:
                if not state.pending:
                    if target is None:
                        break
                    state.t = max(state.t, target)
                    return
                first = state.pending[0][0]
                if horizon is not None:
                    first = min(first, horizon)
                if target is not None and first > target:
                    state.t = max(state.t, target)
                    return
                state.t = max(state.t, first)
                state.arrival_seen = True

            while state.pending and state.pending[0][0] <= state.t:
                _, _, spec = heapq.heappop(state.pending)
                job = _LegacyActiveJob(spec)
                state.active[spec.job_id] = job
                if state.trace:
                    state.trace.event(spec.arrival, EventKind.ARRIVAL, spec.job_id)
                self.scheduler.on_arrival(job.view, state.t)
                assigned = self.scheduler.assign_deadline(job.view, state.t)
                if assigned is not None:
                    if assigned <= state.t:
                        raise SimulationError(
                            f"scheduler assigned past deadline {assigned} <= {state.t}"
                        )
                    job.assigned_deadline = int(assigned)
                    if state.trace:
                        state.trace.event(
                            state.t, EventKind.DEADLINE_ASSIGNED, spec.job_id, assigned
                        )
                eff = job.effective_deadline()
                if eff is not None:
                    heapq.heappush(state.deadline_heap, (eff, spec.job_id))

            while state.deadline_heap and state.deadline_heap[0][0] <= state.t:
                _, job_id = heapq.heappop(state.deadline_heap)
                job = state.active.get(job_id)
                if job is None or not job.is_live():
                    continue
                eff = job.effective_deadline()
                if eff is None or eff > state.t:
                    continue
                job.expired = True
                job.dag.mark_preempted(job.executing)
                job.executing = ()
                state.prev_running.pop(job_id, None)
                del state.active[job_id]
                state.finished[job_id] = _finish_record(job)
                state.counters.expiries += 1
                if state.trace:
                    state.trace.event(state.t, EventKind.EXPIRY, job_id)
                self.scheduler.on_expiry(job.view, state.t)

            state.end_time = state.t

            if target is None and not state.active and not state.pending:
                state.done = True
                break
            if horizon is not None and state.t >= horizon:
                self._abandon_all(state)
                state.done = True
                break

            alloc = self.scheduler.allocate(state.t)
            self._check_allocation(alloc, state.active)
            state.counters.decisions += 1

            assignment: list[tuple[_LegacyActiveJob, list[int]]] = []
            allocated_procs = 0
            executing_procs = 0
            slice_entries: list[tuple[int, int, int]] = []
            for job_id, k in alloc.items():
                if k <= 0:
                    continue
                job = state.active[job_id]
                ready = job.dag.ready_nodes()
                nodes = self.picker.pick(job.dag, ready, k)
                if len(nodes) > k or len(set(nodes)) != len(nodes):
                    raise SimulationError("picker returned invalid node set")
                prev = state.prev_running.get(job_id, set())
                now = set(nodes)
                stale = {
                    nd for nd in prev - now
                    if nd in job.dag.ready_nodes() or job.dag.node_remaining(nd) > 0
                }
                state.counters.preemptions += len(stale)
                job.dag.mark_preempted(stale)
                if self.preemption_overhead > 0:
                    for nd in stale:
                        job.dag.add_overhead(nd, self.preemption_overhead)
                job.dag.mark_running(nodes)
                state.prev_running[job_id] = now
                job.executing = tuple(nodes)
                assignment.append((job, nodes))
                allocated_procs += k
                executing_procs += len(nodes)
                slice_entries.append((job_id, k, len(nodes)))
            for job_id in list(state.prev_running):
                if job_id not in alloc or alloc.get(job_id, 0) <= 0:
                    job = state.active.get(job_id)
                    prev = state.prev_running.pop(job_id)
                    if job is not None:
                        stale = {
                            nd for nd in prev if job.dag.node_remaining(nd) > 0
                        }
                        state.counters.preemptions += len(stale)
                        job.dag.mark_preempted(stale)
                        if self.preemption_overhead > 0:
                            for nd in stale:
                                job.dag.add_overhead(nd, self.preemption_overhead)
                        job.executing = ()

            dt = self._next_dt(state, assignment)
            if dt is None:
                if target is None:
                    self._abandon_all(state)
                    state.done = True
                    break
                dt = target - state.t
            elif target is not None:
                dt = min(dt, target - state.t)
            if horizon is not None:
                dt = min(dt, horizon - state.t)
                if dt <= 0:
                    self._abandon_all(state)
                    state.done = True
                    break

            completions: list[_LegacyActiveJob] = []
            for job, nodes in assignment:
                for node in nodes:
                    job.dag.process(node, self.speed * dt)
            for job_id, k, _execing in slice_entries:
                state.active[job_id].processor_steps += k * dt
            state.counters.steps += dt
            state.counters.allocated_steps += allocated_procs * dt
            state.counters.busy_steps += executing_procs * dt
            if state.trace:
                state.trace.slice(state.t, state.t + dt, tuple(slice_entries))
            state.t += dt

            for job, nodes in assignment:
                if job.dag.is_complete() and job.completion_time is None:
                    job.completion_time = state.t
                    job.earned_profit = self._profit_at_completion(job, state.t)
                    completions.append(job)
            for job in completions:
                job.executing = ()
                state.prev_running.pop(job.job_id, None)
                del state.active[job.job_id]
                state.finished[job.job_id] = _finish_record(job)
                state.counters.completions += 1
                if state.trace:
                    state.trace.event(state.t, EventKind.COMPLETION, job.job_id)
                self.scheduler.on_completion(job.view, state.t)

    def _profit_at_completion(self, job: _LegacyActiveJob, t: int) -> float:
        spec = job.spec
        offset = t - spec.arrival
        if spec.profit_fn is not None:
            return float(spec.profit_fn(offset))
        assert spec.deadline is not None
        return spec.profit if t <= spec.deadline else 0.0

    def _check_allocation(self, alloc, active) -> None:
        if not isinstance(alloc, dict):
            raise AllocationError("allocation must be a dict of job_id -> processors")
        total = 0
        for job_id, k in alloc.items():
            if job_id not in active:
                raise AllocationError(f"allocation references inactive job {job_id}")
            if not isinstance(k, int) or isinstance(k, bool):
                raise AllocationError(f"processor count for job {job_id} must be int")
            if k < 0:
                raise AllocationError(f"negative processor count for job {job_id}")
            total += k
        if total > self.m:
            raise AllocationError(f"allocation uses {total} > m={self.m} processors")

    def _next_dt(
        self,
        state: _LegacyRunState,
        assignment: list[tuple[_LegacyActiveJob, list[int]]],
    ) -> Optional[int]:
        t = state.t
        candidates: list[int] = []
        if state.pending:
            candidates.append(state.pending[0][0] - t)
        if state.deadline_heap:
            candidates.append(state.deadline_heap[0][0] - t)
        for job, nodes in assignment:
            for node in nodes:
                rem = job.dag.node_remaining(node)
                candidates.append(math.ceil(rem / self.speed))
        wake = getattr(self.scheduler, "wakeup_after", None)
        if wake is not None:
            wt = wake(t)
            if wt is not None:
                if wt <= t:
                    raise SimulationError(f"scheduler wakeup {wt} not after t={t}")
                candidates.append(wt - t)
        if not assignment:
            candidates = [c for c in candidates if c > 0]
            if not candidates:
                return None
            return max(1, min(candidates))
        return max(1, min(c for c in candidates if c > 0))

    def _abandon_all(self, state: _LegacyRunState) -> None:
        for job_id, job in list(state.active.items()):
            job.abandoned = True
            job.dag.mark_preempted(job.executing)
            job.executing = ()
            state.prev_running.pop(job_id, None)
            state.finished[job_id] = _finish_record(job)
            state.counters.abandons += 1
            if state.trace:
                state.trace.event(state.t, EventKind.ABANDON, job_id)
            del state.active[job_id]
