"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AllocationError(ReproError):
    """A scheduler returned an invalid processor allocation."""


class SchedulingError(ReproError):
    """A scheduler violated its protocol (unknown job, bad event order)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is invalid or infeasible to generate."""


class ClusterError(ReproError):
    """A cluster operation failed (dead shard, bad router, protocol)."""


class SweepError(ReproError):
    """A sweep failed; carries the failing cell for diagnosis.

    Attributes
    ----------
    point:
        The parameter-grid point whose evaluation raised, or ``None``
        for sweep-level failures (e.g. an invalid worker count) that
        have no associated cell.
    seed:
        The replication seed of the failing cell, or ``None``.
    """

    def __init__(self, message: str, point: dict = None, seed: int = None) -> None:
        super().__init__(message)
        self.point = point
        self.seed = seed
