"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AllocationError(ReproError):
    """A scheduler returned an invalid processor allocation."""


class SchedulingError(ReproError):
    """A scheduler violated its protocol (unknown job, bad event order)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is invalid or infeasible to generate."""


class ClusterError(ReproError):
    """A cluster operation failed (dead shard, bad router, protocol)."""


class ShardFailedError(ClusterError):
    """A shard RPC failed fail-stop (dead worker, broken pipe).

    Attributes
    ----------
    shard:
        Index of the failing shard, or ``None`` when unknown.
    reason:
        Failure class the supervisor keys its handling on:
        ``"crash"`` (process dead / pipe broken) or ``"hang"``
        (no reply within the deadline; see :class:`ShardTimeoutError`).
    """

    def __init__(self, message: str, shard: int = None, reason: str = "crash") -> None:
        super().__init__(message)
        self.shard = shard
        self.reason = reason


class ShardTimeoutError(ShardFailedError):
    """A shard RPC exceeded its deadline (liveness, not fail-stop)."""

    def __init__(self, message: str, shard: int = None) -> None:
        super().__init__(message, shard=shard, reason="hang")


class NoHealthyShardError(ClusterError):
    """Every shard's circuit breaker is open; nothing can admit."""


class RestartBudgetExhausted(ClusterError):
    """A shard failed more times than the supervisor's restart budget.

    Carries the structured summary ``repro-serve`` prints before
    exiting nonzero: the shard, the last fault class, how many restarts
    were spent, and where the last good checkpoint was.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        fault: str,
        restarts: int,
        last_checkpoint_time: int = 0,
        last_checkpoint_log_index: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.fault = fault
        self.restarts = restarts
        self.last_checkpoint_time = last_checkpoint_time
        self.last_checkpoint_log_index = last_checkpoint_log_index

    def summary(self) -> dict:
        """JSON-compatible structured error summary."""
        return {
            "error": "recovery-exhausted",
            "shard": self.shard,
            "fault": self.fault,
            "restarts": self.restarts,
            "last_checkpoint_time": self.last_checkpoint_time,
            "last_checkpoint_log_index": self.last_checkpoint_log_index,
        }


class GatewayError(ReproError):
    """A gateway configuration or pacing-loop operation is invalid."""


class WALError(ReproError):
    """A write-ahead log file is unusable (bad magic, wrong version)."""


class ScenarioError(ReproError):
    """A scenario spec is invalid or names an unknown component.

    Attributes
    ----------
    location:
        Dotted spec location of the offending entry (e.g.
        ``"scheduler.name"``), or ``None`` for spec-level failures.
    suggestions:
        Nearest registered names when an unknown component/key was
        named (what the CLI's "did you mean" line prints).
    """

    def __init__(
        self,
        message: str,
        *,
        location: str = None,
        suggestions: list = None,
    ) -> None:
        super().__init__(message)
        self.location = location
        self.suggestions = list(suggestions) if suggestions else []


class SweepError(ReproError):
    """A sweep failed; carries the failing cell for diagnosis.

    Attributes
    ----------
    point:
        The parameter-grid point whose evaluation raised, or ``None``
        for sweep-level failures (e.g. an invalid worker count) that
        have no associated cell.
    seed:
        The replication seed of the failing cell, or ``None``.
    """

    def __init__(self, message: str, point: dict = None, seed: int = None) -> None:
        super().__init__(message)
        self.point = point
        self.seed = seed
