"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AllocationError(ReproError):
    """A scheduler returned an invalid processor allocation."""


class SchedulingError(ReproError):
    """A scheduler violated its protocol (unknown job, bad event order)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is invalid or infeasible to generate."""
