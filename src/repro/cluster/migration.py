"""Shard rebalancing: move queued-but-unstarted jobs off hot shards.

Routing is done at submit time with whatever information the router
had; load evolves afterwards, so a statically balanced placement can
still leave one shard with a deep ingest queue while another sits idle.
The migration layer corrects this at decision points: a
:class:`MigrationPolicy` looks at per-shard stats and plans moves of
*queued* jobs -- they have no scheduler state yet, so moving them is
invisible to the per-shard scheduler and preserves the paper's
per-pool analysis.

Moved jobs re-enter the destination shard as fresh submissions at the
migration time: their density is recomputed against the destination's
machine count (S's allotment depends on the pool size) and a job whose
deadline has passed while queued is shed on release, exactly as if it
had waited in the destination queue all along.

Jobs already inside a shard's engine *can* move too, but not through
this layer: the cluster coordinator's
:class:`~repro.cluster.coordinator.StealPlanner` extends the greedy
pairing here to *running* jobs (parked or starved inside S), migrating
them through the engine's checkpoint-grade extract/inject path when a
donor shard's marginal band pressure exceeds a receiver's -- see
:mod:`repro.cluster.coordinator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.router import ShardStats


@dataclass(frozen=True)
class MigrationMove:
    """One planned transfer of up to ``n`` queued jobs."""

    src: int
    dst: int
    n: int


class MigrationPolicy:
    """Plans queued-job transfers from overloaded to idle shards."""

    def plan(self, stats: Sequence[ShardStats]) -> list[MigrationMove]:
        """Return the moves to apply now (possibly empty)."""
        raise NotImplementedError


class QueueBalancer(MigrationPolicy):
    """Pair idle shards with the deepest ingest queues.

    A shard is *idle* when its ingest queue holds at most ``low_water``
    jobs (jobs in flight don't count: an empty queue means the shard
    can absorb backlog) and *overloaded* when its queue holds at least
    ``high_water``.  Each idle shard is offered half of the deepest
    backlog (capped at ``batch``); pairing is greedy and fully
    deterministic (ties break on shard index).

    Parameters
    ----------
    low_water:
        Max queued jobs for a shard to count as idle (default 0: an
        empty ingest queue).
    high_water:
        Min queued jobs for a shard to count as overloaded.
    batch:
        Cap on jobs moved per (src, dst) pair per rebalance tick.
    """

    def __init__(
        self, low_water: int = 0, high_water: int = 2, batch: int = 16
    ) -> None:
        if high_water < 1:
            raise ValueError("high_water must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.low_water = int(low_water)
        self.high_water = int(high_water)
        self.batch = int(batch)

    def plan(self, stats: Sequence[ShardStats]) -> list[MigrationMove]:
        """Greedy idle-to-deepest pairing over the current stats."""
        live = [s for s in stats if s.alive]
        idle = sorted(
            (s for s in live if s.queue_depth <= self.low_water),
            key=lambda s: (s.load, s.index),
        )
        backlog = {
            s.index: s.queue_depth
            for s in live
            if s.queue_depth >= self.high_water
        }
        moves: list[MigrationMove] = []
        for dst in idle:
            if not backlog:
                break
            src = max(backlog, key=lambda i: (backlog[i], -i))
            if src == dst.index:
                continue
            n = min(self.batch, backlog[src] // 2)
            if n < 1:
                break
            moves.append(MigrationMove(src=src, dst=dst.index, n=n))
            backlog[src] -= n
            if backlog[src] < self.high_water:
                del backlog[src]
        return moves
