"""Fault injection: kill a shard mid-stream and recover it exactly.

The failure model is *fail-stop with durable inputs*: a shard's live
state (engine, scheduler, ingest queue) vanishes at the fault instant,
but the cluster retains two durable artifacts per shard -- the latest
JSON service checkpoint (PR 1's snapshot machinery) and the submission
log of every job ever routed there.  Recovery restores the checkpoint
into a fresh service (in a fresh worker process, in multiprocessing
mode) and replays the log tail recorded after that checkpoint, each
entry at its original simulated time.  Because the whole stack is
deterministic, the recovered shard finishes *bit-identically* to a
never-killed one: no admitted job is lost and the final profit matches
the fault-free run -- the property the recovery tests pin down.

The cluster keeps the invariant that the latest checkpoint postdates
the latest migration touching a shard (it snapshots all shards after
every migration tick when fault injection is on), so replay never
resurrects a job that migrated away.

:class:`FaultInjector` is the driver: it watches the cluster clock and
fires each :class:`FaultPlan` once when its time arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterError


@dataclass(frozen=True)
class FaultPlan:
    """Kill shard ``shard`` at the first decision point at/after ``at``."""

    shard: int
    at: int


@dataclass
class RecoveryEvent:
    """One executed kill-and-recover, for reporting."""

    shard: int
    #: simulated time the fault fired
    time: int
    #: simulated time of the checkpoint the shard was restored from
    checkpoint_time: int
    #: submission-log entries replayed on top of the checkpoint
    replayed: int
    #: wall-clock seconds the restore + replay took
    wall_seconds: float


@dataclass
class FaultInjector:
    """Fires configured shard kills as the cluster clock passes them.

    Attach to a :class:`~repro.cluster.service.ClusterService` via its
    ``fault_injector`` parameter; the cluster calls :meth:`maybe_fire`
    at every submission and clock advance.  Each plan fires exactly
    once; the kill and the recovery happen back to back (fail-stop with
    immediate restart), and the resulting :class:`RecoveryEvent` is
    appended to :attr:`events`.
    """

    plans: list[FaultPlan] = field(default_factory=list)
    events: list[RecoveryEvent] = field(default_factory=list)
    _fired: set[int] = field(default_factory=set)

    def add(self, shard: int, at: int) -> "FaultInjector":
        """Schedule one more kill; returns self for chaining."""
        if shard < 0:
            raise ClusterError(f"fault shard must be >= 0, got {shard}")
        if at < 0:
            raise ClusterError(f"fault time must be >= 0, got {at}")
        self.plans.append(FaultPlan(shard=shard, at=at))
        return self

    @property
    def pending(self) -> int:
        """Plans not yet fired."""
        return len(self.plans) - len(self._fired)

    def maybe_fire(self, cluster, t: int) -> None:
        """Kill-and-recover every not-yet-fired plan with ``at <= t``.

        ``cluster`` duck-types :meth:`kill_shard` and
        :meth:`recover_shard` (see
        :class:`~repro.cluster.service.ClusterService`).
        """
        for i, plan in enumerate(self.plans):
            if i in self._fired or t < plan.at:
                continue
            self._fired.add(i)
            cluster.kill_shard(plan.shard)
            self.events.append(cluster.recover_shard(plan.shard, t))
