"""The cluster service: routed admission over sharded machine pools.

:class:`ClusterService` partitions ``m`` machines into ``k`` shards,
each running its own :class:`~repro.service.service.SchedulingService`
(in this process, or in a worker process -- see
:mod:`repro.cluster.shard`), and places every submitted job on exactly
one shard via a pluggable :class:`~repro.cluster.router.Router`.  The
paper's scheduler S makes this sound: a job's allotment and density are
functions of the job and the pool size alone, so shards need no shared
scheduler state and each shard's competitive analysis applies to its
own pool.

On top of placement the cluster provides:

* **migration** -- a :class:`~repro.cluster.migration.MigrationPolicy`
  periodically moves queued-but-unstarted jobs from overloaded to idle
  shards (off by default; determinism vs. independent per-shard runs is
  only pinned with migration off);
* **fault recovery** -- with a
  :class:`~repro.cluster.faults.FaultInjector` attached, shards are
  periodically checkpointed and every submission is logged, so a killed
  shard is restored from its latest checkpoint plus a log-tail replay
  with zero admitted jobs lost (:mod:`repro.cluster.faults`);
* **telemetry roll-up** -- per-shard registries merge into one cluster
  view (:func:`repro.service.telemetry.merge_registries`), alongside
  cluster-level counters (routed/migrated/recovered).

With the consistent-hash router and migration off, a k-shard in-process
cluster run over a fixed trace is *bit-identical* (per-job records and
profit) to k independent service runs over the router's partition of
that trace -- the determinism property the cluster tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.cluster.config import ShardConfig, partition_machines
from repro.cluster.faults import FaultInjector, RecoveryEvent
from repro.cluster.migration import MigrationPolicy
from repro.cluster.router import Router, ShardStats, make_router
from repro.cluster.shard import ShardHandle, make_shard
from repro.errors import ClusterError
from repro.service.replay import SubmissionLog
from repro.service.service import ServiceResult, ShedRecord
from repro.service.telemetry import MetricsRegistry, merge_registries
from repro.sim.jobs import CompletionRecord, JobSpec


@dataclass
class ClusterResult:
    """Everything a finished cluster run reports."""

    #: per-shard service results, in shard order
    shard_results: list[ServiceResult]
    #: cluster-level counters (routed/migrated/recovered totals)
    cluster_metrics: MetricsRegistry
    #: executed kill-and-recover events, in firing order
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def records(self) -> dict[int, CompletionRecord]:
        """Per-job completion records merged across shards."""
        merged: dict[int, CompletionRecord] = {}
        for result in self.shard_results:
            merged.update(result.result.records)
        return merged

    @property
    def total_profit(self) -> float:
        """Profit earned across all shards."""
        return sum(r.total_profit for r in self.shard_results)

    @property
    def shed(self) -> list[ShedRecord]:
        """Every job dropped before release, shard-major order."""
        return [rec for r in self.shard_results for rec in r.shed]

    @property
    def num_shed(self) -> int:
        """Number of jobs dropped before release, cluster-wide."""
        return sum(r.num_shed for r in self.shard_results)

    @property
    def num_jobs(self) -> int:
        """Number of jobs that produced a completion record."""
        return sum(len(r.result.records) for r in self.shard_results)

    @property
    def end_time(self) -> int:
        """Latest shard end time."""
        return max((r.result.end_time for r in self.shard_results), default=0)

    @property
    def metrics(self) -> MetricsRegistry:
        """Cluster telemetry: shard registries rolled up, plus the
        cluster-level counters."""
        return merge_registries(
            [r.metrics for r in self.shard_results] + [self.cluster_metrics]
        )


class ClusterService:
    """Sharded online scheduling over ``k`` machine-pool shards.

    Parameters
    ----------
    m:
        Total machines, split across shards by
        :func:`~repro.cluster.config.partition_machines`.
    k:
        Number of shards.
    config:
        Shard template (scheduler recipe, queue bound, shed policy,
        ...); its ``m`` field is overridden per shard.  Defaults to an
        SNS shard with the service defaults.
    router:
        :class:`~repro.cluster.router.Router` instance or registry name
        (default ``"consistent-hash"``, the deterministic choice).
    mode:
        ``"inprocess"`` (deterministic, zero-overhead) or ``"process"``
        (one worker process per shard, commands over pipes).
    migration:
        Optional :class:`~repro.cluster.migration.MigrationPolicy`;
        requires ``migrate_every``.
    migrate_every:
        Simulated-time interval between rebalance ticks.
    fault_injector:
        Optional :class:`~repro.cluster.faults.FaultInjector`; enables
        checkpointing + submission logging for recovery.
    checkpoint_every:
        Simulated-time interval between cluster-wide checkpoints
        (default 64 when fault injection is on).
    stats_refresh:
        In ``"process"`` mode, submissions between synchronous stats
        refreshes for stats-hungry routers (lower = fresher = slower).
    tracer:
        Optional cluster-level
        :class:`~repro.observability.recorder.TraceRecorder`.  The
        cluster records routing, migration, checkpoint and recovery
        events on it and hands every shard a shard-tagged view
        (in-process shards then record their full service/engine
        lifecycle; process-mode shards stay parent-side-only).  Shard
        recovery truncates the crashed shard's post-checkpoint events
        before the keyed log-tail replay regenerates them, so traces
        stay exactly-once under faults.
    """

    def __init__(
        self,
        m: int,
        k: int,
        *,
        config: Optional[ShardConfig] = None,
        router: Union[Router, str] = "consistent-hash",
        mode: str = "inprocess",
        migration: Optional[MigrationPolicy] = None,
        migrate_every: int = 0,
        fault_injector: Optional[FaultInjector] = None,
        checkpoint_every: Optional[int] = None,
        stats_refresh: int = 32,
        tracer: Optional[Any] = None,
    ) -> None:
        if migration is not None and migrate_every < 1:
            raise ClusterError("migration requires migrate_every >= 1")
        if stats_refresh < 1:
            raise ClusterError("stats_refresh must be >= 1")
        sizes = partition_machines(m, k)
        template = config if config is not None else ShardConfig(m=1)
        self.m = int(m)
        self.k = int(k)
        self.mode = mode
        self.router = router if isinstance(router, Router) else make_router(router)
        self.shards: list[ShardHandle] = [
            make_shard(i, template.with_machines(size), mode)
            for i, size in enumerate(sizes)
        ]
        self.migration = migration
        self.migrate_every = int(migrate_every)
        self.fault_injector = fault_injector
        if checkpoint_every is None and fault_injector is not None:
            checkpoint_every = 64
        self.checkpoint_every = checkpoint_every
        self.stats_refresh = int(stats_refresh)
        #: per-shard submission logs (the recovery source of truth);
        #: the resilient subclass swaps these for durable WALs
        self.logs: list[SubmissionLog] = [SubmissionLog() for _ in sizes]
        #: whether submissions are logged for recovery (the resilient
        #: subclass forces this on even without a fault injector)
        self._log_submissions = fault_injector is not None
        #: per-shard latest checkpoint: (log index, snapshot dict)
        self.checkpoints: dict[int, tuple[int, dict[str, Any]]] = {}
        self.tracer = tracer
        #: shard-event counts at checkpoint time, keyed by
        #: (shard, log_index, checkpoint engine time) -- see
        #: :meth:`_note_trace_mark`
        self._trace_marks: dict[tuple[int, int, int], int] = {}
        if tracer is not None and tracer.enabled:
            for shard in self.shards:
                shard.attach_tracer(tracer.for_shard(shard.index))
        self.cluster_metrics = MetricsRegistry()
        self.recoveries: list[RecoveryEvent] = []
        #: optional :class:`~repro.cluster.coordinator.Coordinator`;
        #: set by constructing one over this cluster (never directly)
        self.coordinator: Optional[Any] = None
        self._now = 0
        self._started = False
        self._last_checkpoint_t: Optional[int] = None
        self._last_migrate_t = 0
        self._stats_cache: Optional[list[ShardStats]] = None
        self._submits_since_stats = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring every shard up (idempotent).  With fault injection on,
        an initial cluster checkpoint is taken immediately so recovery
        never has to replay from an empty service."""
        if self._started:
            return
        self.router.reset()
        for shard in self.shards:
            shard.start()
        self._started = True
        if self.fault_injector is not None:
            self.checkpoint_all()

    @property
    def now(self) -> int:
        """Cluster clock: the latest submission/advance time seen."""
        return self._now

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> int:
        """Route one job to a shard at time ``t`` (default: now).

        Runs the decision-point hooks (checkpoint, fault firing,
        migration) first, then routes and forwards the submission.
        Returns the chosen shard index.
        """
        self.start()
        t = self._now if t is None else max(int(t), self._now)
        self._now = t
        self._hooks(t)
        coordinator = self.coordinator
        if coordinator is not None:
            coordinator.before_route(t)
        index = self.router.route(spec, self._router_stats())
        if not 0 <= index < self.k:
            raise ClusterError(
                f"router returned shard {index} (k={self.k})"
            )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(t, "route", spec.job_id, {"shard": index})
        key = None
        if self._log_submissions:
            entry_index = self.logs[index].record(t, spec)
            key = self._submit_key(index, entry_index)
        self._deliver(index, spec, t, key=key)
        if coordinator is not None:
            coordinator.note_route(index, spec, t)
        self.cluster_metrics.counter("routed_total").inc()
        self.cluster_metrics.counter(f"routed_shard_{index}").inc()
        self._submits_since_stats += 1
        if self._stats_cache is not None:
            # optimistic local estimate between refreshes, so a
            # load-aware router doesn't route a whole refresh window's
            # burst to the same frozen minimum
            self._stats_cache[index].queue_depth += 1
        return index

    def advance_to(self, t: int) -> int:
        """Advance every live shard's clock to ``t`` and run hooks."""
        self.start()
        t = max(int(t), self._now)
        self._now = t
        self._hooks(t)
        for shard in self.shards:
            if shard.alive:
                shard.advance_to(t)
        self._stats_cache = None
        return self._now

    def _submit_key(self, index: int, entry_index: int) -> str:
        """Idempotency key for log entry ``entry_index`` on one shard.

        Derived from the log position alone, so a recovery replay sends
        the *same* key the original delivery did -- the shard dedupes
        and each job is admitted exactly once however many times it is
        sent.
        """
        return f"s{index}e{entry_index}"

    def _deliver(self, index: int, spec: JobSpec, t: int, key=None) -> None:
        """Hand one (already logged) submission to its shard.

        Runs *after* the log append, so a delivery failure loses
        nothing: recovery replays the logged entry under the same key.
        The resilient subclass overrides this to catch shard failures
        and trigger supervised recovery.
        """
        self.shards[index].submit(spec, t, key=key)

    def finish(self) -> ClusterResult:
        """Drain every shard and return the merged cluster result.

        The drain decomposes into overridable hooks so the elastic and
        resilient variants (and their composition) change *policy* --
        which shards drain, how a drain failure is handled, what extra
        accounting rides on the result -- without re-implementing the
        drain itself.
        """
        self.start()
        results = [
            self._finish_shard(shard)
            for shard in self.shards
            if self._drainable(shard)
        ]
        self._started = False
        self._close_logs()
        result = ClusterResult(
            shard_results=results,
            cluster_metrics=self.cluster_metrics,
            recoveries=list(self.recoveries),
        )
        self._annotate_result(result)
        return result

    def _drainable(self, shard) -> bool:
        """Whether ``shard`` contributes a result at finish."""
        return True

    def _finish_shard(self, shard):
        """Drain one shard (overridden for supervised drains)."""
        return shard.finish()

    def _close_logs(self) -> None:
        """Release submission-log resources (durable WALs override)."""

    def _annotate_result(self, result: ClusterResult) -> None:
        """Attach variant-specific extras to the merged result."""

    def profit_so_far(self) -> float:
        """Realized profit across live shards, mid-run.

        The candidate-trial commit decision
        (:class:`~repro.cluster.coordinator.CandidateTrial`) reads this
        to compare shadow schedules on actual outcomes.  In-process
        only: a process-mode read would add one fence per shard for a
        number that shadow execution never needs there.
        """
        if self.mode != "inprocess":
            raise ClusterError(
                "profit_so_far requires an in-process cluster"
            )
        total = 0.0
        for shard in self.shards:
            if shard.alive and shard.service.sim is not None:
                total += shard.service.sim.profit_so_far()
        return total

    def run_stream(self, specs: Iterable[JobSpec]) -> ClusterResult:
        """Drive a whole arrival sequence through the cluster.

        Jobs are submitted in online order ``(arrival, job_id)``; each
        shard's clock advances only with its own submissions, exactly as
        if the router's partition were served by independent services.
        """
        self.start()
        ordered: Sequence[JobSpec] = sorted(
            specs, key=lambda sp: (sp.arrival, sp.job_id)
        )
        for spec in ordered:
            self.submit(spec, t=spec.arrival)
        return self.finish()

    # ------------------------------------------------------------------
    # Fault handling (called by the FaultInjector)
    # ------------------------------------------------------------------
    def checkpoint_all(self) -> None:
        """Snapshot every live shard, anchored to its submission-log
        position (async submissions are fenced by the snapshot call)."""
        for shard in self.shards:
            if shard.alive:
                self._save_checkpoint(
                    shard.index,
                    len(self.logs[shard.index]),
                    shard.snapshot(),
                )
        self._last_checkpoint_t = self._now
        self.cluster_metrics.counter("checkpoints_total").inc()

    def _save_checkpoint(
        self, index: int, log_index: int, snapshot: dict[str, Any]
    ) -> None:
        """Store one shard checkpoint (in memory here; the resilient
        subclass persists it through a digest-verified store)."""
        self.checkpoints[index] = (log_index, snapshot)
        self._note_trace_mark(index, log_index, snapshot)

    def _note_trace_mark(
        self, index: int, log_index: int, snapshot: dict[str, Any]
    ) -> None:
        """Remember how many shard-tagged trace events exist right now.

        Keyed by ``(shard, log_index, checkpoint engine time)`` -- the
        engine time disambiguates checkpoint generations that share a
        log position (no submissions in between), so a corrupt-latest
        fallback to the previous generation finds *that* generation's
        own mark.  :meth:`recover_shard` truncates the shard's trace to
        the mark before replaying, keeping spans exactly-once.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        checkpoint_time = int(snapshot["engine"]["t"])
        self._trace_marks[(index, log_index, checkpoint_time)] = (
            tracer.shard_event_count(index)
        )
        tracer.event(
            self._now,
            "checkpoint",
            None,
            {"shard": index, "log_index": log_index, "t": checkpoint_time},
        )

    def _load_checkpoint(self, index: int) -> tuple[int, Optional[dict[str, Any]]]:
        """Latest usable checkpoint for one shard; ``(0, None)`` means
        restart empty and replay the whole log."""
        return self.checkpoints.get(index, (0, None))

    def kill_shard(self, index: int) -> None:
        """Crash one shard: live engine/queue/scheduler state is lost."""
        self.shards[index].kill()
        self._stats_cache = None
        if self.coordinator is not None:
            self.coordinator.invalidate()
        self.cluster_metrics.counter("faults_total").inc()

    def recover_shard(self, index: int, t: int) -> RecoveryEvent:
        """Restore a killed shard from its latest checkpoint and replay
        the submission-log tail; returns the recovery report."""
        started = time.perf_counter()
        log_index, snapshot = self._load_checkpoint(index)
        checkpoint_time = 0 if snapshot is None else int(snapshot["engine"]["t"])
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # drop the crashed shard's post-checkpoint events; the keyed
            # replay below deterministically regenerates them exactly once
            keep = (
                0
                if snapshot is None
                else self._trace_marks.get(
                    (index, log_index, checkpoint_time), 0
                )
            )
            tracer.truncate_shard(index, keep)
        shard = self.shards[index]
        shard.restore(snapshot)
        tail = self.logs[index].entries[log_index:]
        for offset, (entry_t, spec) in enumerate(tail, start=log_index):
            shard.submit(spec, entry_t, key=self._submit_key(index, offset))
        self._stats_cache = None
        if self.coordinator is not None:
            self.coordinator.invalidate()
        self.cluster_metrics.counter("recoveries_total").inc()
        if tracer is not None and tracer.enabled:
            tracer.event(
                t,
                "recovery",
                None,
                {
                    "shard": index,
                    "checkpoint_time": checkpoint_time,
                    "replayed": len(tail),
                },
            )
        event = RecoveryEvent(
            shard=index,
            time=t,
            checkpoint_time=checkpoint_time,
            replayed=len(tail),
            wall_seconds=time.perf_counter() - started,
        )
        self.recoveries.append(event)
        self._post_recover(index, t, log_index, checkpoint_time)
        return event

    def _post_recover(
        self, index: int, t: int, log_index: int, checkpoint_time: int
    ) -> None:
        """Hook after a shard restore+replay (the resilient cluster
        reconciles the recovered shard against the steal journal)."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _hooks(self, t: int) -> None:
        """Decision-point hooks, in recovery-safe order: checkpoint,
        fire faults, then migrate (migration re-checkpoints)."""
        if (
            self.checkpoint_every is not None
            and self._last_checkpoint_t is not None
            and t - self._last_checkpoint_t >= self.checkpoint_every
        ):
            self.checkpoint_all()
        if self.fault_injector is not None:
            self.fault_injector.maybe_fire(self, t)
        if (
            self.migration is not None
            and t - self._last_migrate_t >= self.migrate_every
        ):
            self._rebalance(t)
            self._last_migrate_t = t

    def _rebalance(self, t: int) -> None:
        """Apply one migration tick at cluster time ``t``."""
        stats = [
            shard.stats()
            if shard.alive
            else ShardStats(index=shard.index, m=shard.config.m, alive=False)
            for shard in self.shards
        ]
        moved = 0
        tracer = self.tracer
        emit = tracer is not None and tracer.enabled
        for move in self.migration.plan(stats):
            for spec in self.shards[move.src].take_queued(move.n):
                if emit:
                    tracer.event(
                        t,
                        "migrate",
                        spec.job_id,
                        {"src": move.src, "dst": move.dst},
                    )
                key = None
                if self._log_submissions:
                    entry_index = self.logs[move.dst].record(t, spec)
                    key = self._submit_key(move.dst, entry_index)
                self._deliver(move.dst, spec, t, key=key)
                moved += 1
        if moved:
            self.cluster_metrics.counter("migrations_total").inc(moved)
            self._stats_cache = None
            # keep the recovery invariant: the latest checkpoint must
            # postdate the migration, or a log replay would resurrect
            # jobs that migrated away
            if self.fault_injector is not None:
                self.checkpoint_all()

    def _router_stats(self) -> list[ShardStats]:
        """Stats for the router: exact in-process; cached (refreshed at
        deterministic submission indices) in process mode."""
        needs_stats = getattr(self.router, "needs_stats", True)
        if self.mode == "inprocess" or not needs_stats:
            if self.mode == "inprocess":
                return self._live_stats()
            return self._static_stats()
        if (
            self._stats_cache is None
            or self._submits_since_stats >= self.stats_refresh
        ):
            self._stats_cache = self._live_stats()
            self._submits_since_stats = 0
        return self._stats_cache

    def _live_stats(self) -> list[ShardStats]:
        return [
            shard.stats()
            if shard.alive
            else ShardStats(index=shard.index, m=shard.config.m, alive=False)
            for shard in self.shards
        ]

    def _static_stats(self) -> list[ShardStats]:
        return [
            ShardStats(index=shard.index, m=shard.config.m, alive=shard.alive)
            for shard in self.shards
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"t={self._now}" if self._started else "idle"
        return (
            f"ClusterService(m={self.m}, k={self.k}, mode={self.mode}, "
            f"router={self.router.name}, {state})"
        )
