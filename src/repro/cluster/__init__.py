"""Sharded multi-process serving: routed admission, migration, faults.

Scales the single-process :mod:`repro.service` layer out: ``m``
machines split into ``k`` independent machine-pool shards, each running
its own scheduler-S service, with jobs placed by a pluggable router at
submit time, queued work rebalanced by a migration policy, and killed
shards restored from JSON checkpoints plus submission-log replay.

Package map
-----------
* :mod:`repro.cluster.config` -- picklable shard recipes + partitioning.
* :mod:`repro.cluster.router` -- placement policies (round-robin,
  least-loaded, density-aware, consistent-hash).
* :mod:`repro.cluster.shard` -- in-process and worker-process shard
  handles over one command protocol.
* :mod:`repro.cluster.migration` -- queued-job rebalancing policies.
* :mod:`repro.cluster.service` -- the :class:`ClusterService` facade and
  merged :class:`ClusterResult`.
* :mod:`repro.cluster.faults` -- kill/recover fault-injection harness.
* :mod:`repro.cluster.elastic` -- :class:`ElasticCluster`, a cluster
  whose active shard count grows and shrinks live (the gateway's
  autoscaling substrate).
* :mod:`repro.cluster.coordinator` -- cluster-wide band-aware
  scheduling: the :class:`BandLedger` merged admission view, density-
  aware work-stealing of parked/starved *running* jobs
  (:class:`StealPlanner`), and Albers--Hellwig parallel candidate
  schedules (:class:`CandidateTrial`).  See ``docs/SCHEDULING.md``.
"""

from repro.cluster.config import (
    SCHEDULER_REGISTRY,
    ShardConfig,
    make_scheduler,
    partition_machines,
)
from repro.cluster.coordinator import (
    BandLedger,
    CandidateReport,
    CandidateTrial,
    Coordinator,
    StealMove,
    StealPlanner,
    coordinate,
)
from repro.cluster.elastic import ElasticCluster, ScaleEvent
from repro.cluster.faults import FaultInjector, FaultPlan, RecoveryEvent
from repro.cluster.migration import MigrationMove, MigrationPolicy, QueueBalancer
from repro.cluster.router import (
    BandAwareRouter,
    ConsistentHashRouter,
    DensityAwareRouter,
    LeastLoadedRouter,
    ROUTERS,
    RoundRobinRouter,
    Router,
    ShardStats,
    make_router,
)
from repro.cluster.service import ClusterResult, ClusterService
from repro.cluster.shard import (
    InProcessShard,
    ProcessShard,
    SHARD_ENV_FLAG,
    ShardHandle,
    make_shard,
)

__all__ = [
    "BandAwareRouter",
    "BandLedger",
    "CandidateReport",
    "CandidateTrial",
    "ClusterResult",
    "ClusterService",
    "ConsistentHashRouter",
    "Coordinator",
    "DensityAwareRouter",
    "ElasticCluster",
    "FaultInjector",
    "FaultPlan",
    "InProcessShard",
    "LeastLoadedRouter",
    "MigrationMove",
    "MigrationPolicy",
    "ProcessShard",
    "QueueBalancer",
    "ROUTERS",
    "RecoveryEvent",
    "RoundRobinRouter",
    "Router",
    "ScaleEvent",
    "SCHEDULER_REGISTRY",
    "SHARD_ENV_FLAG",
    "ShardConfig",
    "ShardHandle",
    "ShardStats",
    "StealMove",
    "StealPlanner",
    "coordinate",
    "make_router",
    "make_scheduler",
    "make_shard",
    "partition_machines",
]
