"""Elastic sharding: grow and shrink the active shard count live.

:class:`ElasticCluster` serves the same routed-admission interface as
:class:`~repro.cluster.service.ClusterService`, but the shard count is
a *dial*, not a constructor constant.  The cluster is built over
``k_max`` fixed-size shard units (``m`` must split evenly, so a shard's
machine count -- and with it S's per-pool allotments and densities --
never changes as the cluster resizes); at any moment the first
``k_active`` units form the *active prefix* that the router places new
jobs on.  Scaling reuses the PR 3 machinery rather than inventing a
parallel path:

* **scale-up** brings the next unit up through the shard *restore* path
  (an empty checkpoint -- exactly how fault recovery restarts a shard)
  and immediately *splits* the deepest active ingest queue into it with
  the migration primitives (``take_queued`` + deliver), so the new
  capacity absorbs backlog on its first tick;
* **scale-down** *drains* the highest active unit: it stops receiving
  submissions, its queued-but-unstarted jobs are re-routed across the
  remaining *healthy* prefix (a dead or degraded shard never receives a
  drained job), and its in-flight jobs finish where they are -- the
  shard keeps advancing as a lame duck until the run ends (or it is
  reactivated by a later scale-up, inheriting its lame-duck state).

Keeping the active set a *prefix* keeps every shipped router correct
unchanged: routers see stats for exactly the active units, and
positional and index-valued routing agree.  All decisions are pure
functions of shard stats at decision points, so a seeded run through an
autoscaled cluster is bit-reproducible -- the property the gateway
determinism tests pin down.

The scaling machinery lives in :class:`ElasticScalingMixin` so it
composes with either service base: :class:`ElasticCluster` mixes it
over the plain :class:`~repro.cluster.service.ClusterService` (no fault
injection -- submission-log replay against a moving shard set needs the
supervised recovery stack), while :class:`~repro.resilience.elastic.
SupervisedElasticCluster` mixes the *same* methods over the resilient
base, where scale-time moves are WAL-logged and re-checkpointed so
supervised recovery mid-resize strands nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.cluster.config import ShardConfig
from repro.cluster.router import Router, ShardStats
from repro.cluster.service import ClusterResult, ClusterService
from repro.errors import ClusterError, ShardFailedError
from repro.service.telemetry import MetricsRegistry, merge_registries
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class ScaleEvent:
    """One applied resize step (a single +1 or -1 of the active count)."""

    #: simulated time the step was applied
    time: int
    #: ``"up"`` or ``"down"``
    direction: str
    k_before: int
    k_after: int
    #: shard unit that was activated or drained
    shard: int
    #: queued jobs moved by the split (up) or the drain (down)
    moved: int


class ElasticScalingMixin:
    """Live-resizable active shard prefix, over any cluster base.

    A mixin of *methods only*: the host class calls
    :meth:`_init_elastic` after its own ``__init__`` (explicit call, no
    cooperative-kwargs MRO contortions).  Every scale-time job move
    goes through :meth:`_move_spec`, which WAL-logs the move under an
    idempotency key whenever the base logs submissions -- on the plain
    base that is off and the behaviour (and fingerprint) is unchanged;
    on the resilient base it keeps the recovery invariant that the log
    plus latest checkpoint always reconstructs exact shard contents.
    """

    def _init_elastic(self, m: int, k_max: int, k_initial: int) -> None:
        """Install the elastic state (call after the base ``__init__``)."""
        #: machines per shard unit (constant across resizes)
        self.unit_m = m // k_max
        self.k_active = k_initial
        #: applied resize steps, in order
        self.scale_events: list[ScaleEvent] = []
        #: unit indices ever activated (dormant units are excluded from
        #: supervision and from the finish drain)
        self._activated: set[int] = set(range(k_initial))
        self.cluster_metrics.gauge("active_shards").set(self.k_active)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring up the active prefix only (idempotent); units beyond
        ``k_active`` stay dormant until a scale-up activates them."""
        if self._started:
            return
        self.router.reset()
        for shard in self.shards[: self.k_active]:
            shard.start()
        self._started = True
        if self._log_submissions:
            # recovery must never have to guess (resilient base only)
            self.checkpoint_all()

    def _drainable(self, shard) -> bool:
        """Live shards drain; on a supervised base every *activated*
        unit drains (a dead-but-activated lame duck is recovered by the
        drain itself), while dormant units contribute nothing."""
        if getattr(self, "supervisor", None) is not None:
            return shard.index in self._activated
        return shard.alive

    def _annotate_result(self, result: ClusterResult) -> None:
        super()._annotate_result(result)
        result.extra["scale_events"] = list(self.scale_events)

    def supervised_shard_ids(self) -> set[int]:
        """Shards the supervisor should heartbeat: every unit ever
        activated (lame ducks included -- they still hold jobs), never
        the dormant tail (a never-started unit fails pings by design)."""
        return set(self._activated)

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale_to(self, k: int, t: Optional[int] = None) -> list[ScaleEvent]:
        """Resize the active prefix to ``k`` units, one step at a time.

        Returns the applied :class:`ScaleEvent` steps (empty when ``k``
        equals the current active count).
        """
        if not 1 <= k <= self.k:
            raise ClusterError(f"k must be in [1, {self.k}]")
        self.start()
        t = self._now if t is None else max(int(t), self._now)
        applied: list[ScaleEvent] = []
        while self.k_active < k:
            applied.append(self._scale_up_one(t))
        while self.k_active > k:
            applied.append(self._scale_down_one(t))
        if applied:
            self._stats_cache = None
            if self.coordinator is not None:
                # the active prefix changed under the band ledger
                self.coordinator.invalidate()
            self.cluster_metrics.gauge("active_shards").set(self.k_active)
        return applied

    def _move_spec(self, dst: int, spec: JobSpec, t: int) -> None:
        """Deliver one scale-time job move, logged when the base logs.

        Mirrors the migration path: the log append precedes the
        delivery, and the key is the log position, so a supervised
        recovery replays the move exactly once.
        """
        key = None
        if self._log_submissions:
            entry_index = self.logs[dst].record(t, spec)
            key = self._submit_key(dst, entry_index)
        self._deliver(dst, spec, t, key=key)

    def _post_scale_moves(self, moved: int) -> None:
        """Re-checkpoint after scale-time moves on a logging base: the
        latest checkpoint must postdate the move, or a donor's log
        replay would resurrect jobs that just migrated away."""
        if moved:
            self.cluster_metrics.counter("migrations_total").inc(moved)
            if self._log_submissions:
                self.checkpoint_all()

    def _scale_up_one(self, t: int) -> ScaleEvent:
        """Activate the next unit and split the deepest queue into it."""
        index = self.k_active
        shard = self.shards[index]
        if not shard.alive:
            # the recovery bring-up path with an empty checkpoint
            shard.restore(None)
            shard.advance_to(t)
        self._activated.add(index)
        stats = self._prefix_stats(self.k_active)
        donor = max(stats, key=lambda s: (s.queue_depth, -s.index))
        moved = 0
        if donor.alive and donor.queue_depth >= 2:
            for spec in self.shards[donor.index].take_queued(
                donor.queue_depth // 2
            ):
                self._move_spec(index, spec, t)
                moved += 1
        self.k_active = index + 1
        self.cluster_metrics.counter("scale_up_total").inc()
        self._post_scale_moves(moved)
        event = ScaleEvent(
            time=t,
            direction="up",
            k_before=index,
            k_after=self.k_active,
            shard=index,
            moved=moved,
        )
        self.scale_events.append(event)
        self._emit_scale(event)
        return event

    def _scale_down_one(self, t: int) -> ScaleEvent:
        """Drain the highest active unit back into the shrunken prefix.

        The drain re-checks shard health first: the victim's queued
        jobs are routed over the *healthy* remainder only (reindexed
        positionally, as the circuit-breaker router does, so positional
        routers stay correct), and if no healthy shard remains -- or
        the victim itself is down -- the drain is skipped and the jobs
        finish on the lame duck (or through its supervised recovery).
        """
        if self.k_active <= 1:
            raise ClusterError("cannot scale below one active shard")
        index = self.k_active - 1
        self.k_active = index
        stats = self._prefix_stats(index + 1)
        victim_stat = stats[index]
        healthy = [s for s in stats[:index] if s.alive]
        moved = 0
        if healthy and victim_stat.alive and victim_stat.queue_depth:
            routed = [replace(s, index=pos) for pos, s in enumerate(healthy)]
            queued = self._take_queued_safe(
                index, victim_stat.queue_depth, t
            )
            for spec in queued:
                pick = self.router.route(spec, routed)
                if not 0 <= pick < len(routed):
                    raise ClusterError(
                        f"router returned shard {pick} "
                        f"(healthy={len(routed)})"
                    )
                self._move_spec(healthy[pick].index, spec, t)
                routed[pick].queue_depth += 1
                moved += 1
        self.cluster_metrics.counter("scale_down_total").inc()
        self._post_scale_moves(moved)
        event = ScaleEvent(
            time=t,
            direction="down",
            k_before=index + 1,
            k_after=index,
            shard=index,
            moved=moved,
        )
        self.scale_events.append(event)
        self._emit_scale(event)
        return event

    def _take_queued_safe(self, index: int, n: int, t: int) -> list[JobSpec]:
        """Pop the victim's queue, surviving a crash mid-drain: on a
        supervised base the failure is routed through the supervisor
        (the restored shard keeps its queue as a lame duck); bases
        without one propagate."""
        try:
            return self.shards[index].take_queued(n)
        except ShardFailedError as exc:
            handler = getattr(self, "_supervise_failure", None)
            if handler is None:
                raise
            handler(index, t, exc)
            return []

    def _emit_scale(self, event: ScaleEvent) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                event.time,
                "migrate",
                None,
                {
                    "scale": event.direction,
                    "shard": event.shard,
                    "k": event.k_after,
                    "moved": event.moved,
                },
            )

    # ------------------------------------------------------------------
    # Stats and live telemetry
    # ------------------------------------------------------------------
    def _prefix_stats(self, k: int) -> list[ShardStats]:
        """Stats for the first ``k`` units, fault-tolerant: a dead,
        degraded, or mid-failure shard reports as a dead placeholder
        rather than raising into a routing decision."""
        degraded = getattr(
            getattr(self, "supervisor", None), "degraded", ()
        )
        stats: list[ShardStats] = []
        for shard in self.shards[:k]:
            if shard.alive and shard.index not in degraded:
                try:
                    stats.append(shard.stats())
                    continue
                except ShardFailedError:
                    pass
            stats.append(
                ShardStats(index=shard.index, m=shard.config.m, alive=False)
            )
        return stats

    def active_stats(self) -> list[ShardStats]:
        """Live stats for the active prefix (the autoscaler's input)."""
        self.start()
        return self._prefix_stats(self.k_active)

    def _router_stats(self) -> list[ShardStats]:
        """Routers only ever see the active prefix."""
        needs_stats = getattr(self.router, "needs_stats", True)
        if self.mode == "inprocess" or not needs_stats:
            if self.mode == "inprocess":
                return self._prefix_stats(self.k_active)
            return [
                ShardStats(index=s.index, m=s.config.m, alive=s.alive)
                for s in self.shards[: self.k_active]
            ]
        if (
            self._stats_cache is None
            or self._submits_since_stats >= self.stats_refresh
        ):
            self._stats_cache = self._prefix_stats(self.k_active)
            self._submits_since_stats = 0
        return self._stats_cache

    def live_metrics(self) -> MetricsRegistry:
        """Mid-run cluster telemetry roll-up (in-process shards only).

        Merges every live in-process shard's registry -- counters,
        gauges *and* histograms, so p99 admission latency comes from the
        same :class:`~repro.service.telemetry.MetricsRegistry` path the
        final result uses -- with the cluster-level counters.  Process-
        mode shards keep their registries worker-side and are skipped;
        their totals appear in the final :class:`ClusterResult` instead.
        """
        registries = [
            shard.service.metrics
            for shard in self.shards
            if shard.alive and getattr(shard, "service", None) is not None
        ]
        return merge_registries(registries + [self.cluster_metrics])


class ElasticCluster(ElasticScalingMixin, ClusterService):
    """Sharded serving with a live-resizable active shard prefix.

    Parameters
    ----------
    m:
        Total machines.  Must be divisible by ``k_max`` so every shard
        unit has the same machine count (resizing must not change any
        unit's pool size -- S's allotments depend on it).
    k_max:
        Number of shard units built (the scale-up ceiling).
    k_initial:
        Active units at start (default ``k_max``).
    config, router, mode, stats_refresh, tracer:
        As for :class:`~repro.cluster.service.ClusterService`.
    """

    def __init__(
        self,
        m: int,
        k_max: int,
        *,
        k_initial: Optional[int] = None,
        config: Optional[ShardConfig] = None,
        router: Union[Router, str] = "least-loaded",
        mode: str = "inprocess",
        stats_refresh: int = 32,
        tracer=None,
    ) -> None:
        k_initial = validate_elastic(m, k_max, k_initial)
        super().__init__(
            m,
            k_max,
            config=config,
            router=router,
            mode=mode,
            stats_refresh=stats_refresh,
            tracer=tracer,
        )
        self._init_elastic(m, k_max, k_initial)


def validate_elastic(m: int, k_max: int, k_initial: Optional[int]) -> int:
    """Check the elastic shape constraints; returns the resolved
    ``k_initial`` (shared by both elastic hosts)."""
    if k_max < 1:
        raise ClusterError("k_max must be >= 1")
    if m % k_max != 0:
        raise ClusterError(
            f"m={m} must divide evenly into k_max={k_max} shard units "
            "(elastic shards are fixed-size)"
        )
    k_initial = k_max if k_initial is None else int(k_initial)
    if not 1 <= k_initial <= k_max:
        raise ClusterError("k_initial must be in [1, k_max]")
    return k_initial
