"""Cluster-wide band-aware scheduling: close the sharding profit gap.

Partitioning ``m`` machines into ``k`` shards buys near-linear
throughput but fragments the paper's band condition (2): each shard
admits, parks and sheds against its own ``b * m/k`` band capacity,
blind to slack elsewhere.  BENCH_cluster.json quantifies the cost --
k=4 forfeits ~18% of the k=1 profit, k=8 ~32%.  This module is the
cluster-level scheduling layer that recovers most of it, in three
cooperating parts:

* **Shard-spanning admission** -- a :class:`BandLedger` mirrors every
  shard's started-job band loads (:class:`~repro.core.bands.
  DensityBands` per shard, refreshed at deterministic submission
  indices) so the band condition is evaluated against cluster-wide
  state *before* a shard-local admit/park/shed decision is finalized:
  the :class:`~repro.cluster.router.BandAwareRouter` asks the ledger
  which shards would actually *start* the job (delta-good for that
  pool and condition (2) satisfied there) and routes to the best of
  those, instead of discovering after the fact that the chosen shard
  parks it while another shard's band had room.

* **Density-aware work-stealing of queued and running jobs** -- a
  :class:`StealPlanner` extends the PR 3
  :class:`~repro.cluster.migration.QueueBalancer` pairing from queued
  jobs to jobs *inside* a donor shard's engine, migrated through the
  checkpoint-grade extract/inject path
  (:meth:`~repro.sim.engine.Simulator.extract_active` /
  :meth:`~repro.sim.engine.Simulator.inject_active`).  Victims are the
  jobs earning at zero rate where they are: *parked* jobs (band-blocked
  out of Q) and *starved* jobs (in Q, but beyond what ``m`` processors
  cover -- condition (2) caps each band at ``b*m`` yet Q's total
  allotment across bands can exceed ``m``).  A steal happens exactly
  when the donor's marginal band pressure exceeds a receiver's: the
  victim is worthless on the donor, and the receiver has both band
  room (condition (2) admits it) and processor room (its allotment
  starts executing immediately).

* **Parallel candidate schedules** (Albers--Hellwig, "Online Makespan
  Minimization with Parallel Schedules") -- a :class:`CandidateTrial`
  mirrors the submission stream into several shadow cluster
  configurations over the deterministic virtual clock, commits to the
  one with the highest *realized* profit after a fixed trial window,
  and serves the rest of the stream from the winner alone.

Every decision is a pure function of simulated state at deterministic
submission indices (ledger refreshes and steal ticks count
submissions, never wall time; process-mode reads are synchronous
fences on FIFO command pipes), so seeded coordinated runs are
bit-identical across repeats and across cluster modes -- the property
the coordinator test suite pins, including runs with running-job
steals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.cluster.router import BandAwareRouter, ShardStats
from repro.cluster.service import ClusterResult, ClusterService
from repro.core.bands import DensityBands
from repro.core.theory import Constants
from repro.errors import ClusterError, ShardFailedError
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class StealMove:
    """One planned migration of a job out of a donor shard's engine."""

    #: donor shard index
    src: int
    #: receiver shard index
    dst: int
    job_id: int
    #: ``"parked"`` (in P, band-blocked) or ``"starved"`` (in Q, zero
    #: processors under the allotment scan)
    kind: str
    #: the victim's density on the donor at planning time
    density: float
    #: receiver jobs displaced to make room (lowest density first);
    #: empty for a plain steal into existing band slack
    displaced: tuple[int, ...] = ()


class BandLedger:
    """Merged per-shard band state for shard-spanning admission.

    The ledger keeps one :class:`~repro.core.bands.DensityBands` mirror
    per shard -- rebuilt from shard
    :meth:`~repro.service.service.SchedulingService.coordination_view`
    dicts at deterministic submission indices -- plus each shard's total
    started allotment (its processor commitment).  Between refreshes,
    :meth:`note_admit` keeps the mirrors approximately current by
    optimistically inserting each routed job, so a burst within one
    refresh window does not pile onto a frozen minimum.
    """

    def __init__(self, constants: Constants, speed: float = 1.0) -> None:
        self.constants = constants
        self.speed = float(speed)
        self._bands: dict[int, DensityBands] = {}
        self._m: dict[int, int] = {}
        self._committed: dict[int, int] = {}
        #: True while the mirrors may disagree with live shard state
        #: (shard died or restarted since the last full refresh).  The
        #: :class:`~repro.cluster.router.BandAwareRouter` falls back to
        #: its consistent-hash anchor -- no diverts -- while stale, and
        #: the coordinator skips steal ticks (degraded routing mode).
        self.stale = False

    def refresh(self, views: dict[int, Optional[dict]]) -> None:
        """Rebuild the mirrors from fresh shard coordination views."""
        self._bands = {}
        self._m = {}
        self._committed = {}
        self.stale = False
        for index, view in sorted(views.items()):
            if view is None:
                continue
            bands = DensityBands()
            total = 0
            for job_id, density, allotment in view["started"]:
                if density > 0:
                    bands.insert(int(job_id), float(density), int(allotment))
                total += int(allotment)
            self._bands[index] = bands
            self._m[index] = int(view["m"])
            self._committed[index] = total

    def shard_state(self, spec: JobSpec, index: int) -> Optional[tuple]:
        """``(n, x, v, delta_good)`` for ``spec`` on shard ``index``.

        Mirrors :meth:`repro.core.sns.SNSScheduler.compute_state` (same
        speed scaling), or ``None`` for profit-function jobs / unknown
        shards.
        """
        rel = spec.relative_deadline
        if rel is None or index not in self._m:
            return None
        consts = self.constants
        work = spec.work / self.speed
        span = spec.span / self.speed
        m = self._m[index]
        n = consts.allotment(work, span, rel, m)
        x = consts.execution_bound(work, span, n)
        v = consts.density(spec.profit, x, n)
        return (n, x, v, consts.is_delta_good(rel, x))

    def admits(self, spec: JobSpec, index: int) -> bool:
        """Whether shard ``index`` would *start* the job right now:
        delta-good for its pool and condition (2) satisfied against the
        mirrored band loads."""
        state = self.shard_state(spec, index)
        if state is None:
            return False
        n, _x, v, good = state
        if not good or v <= 0:
            return False
        consts = self.constants
        return self._bands[index].can_insert(
            v, n, consts.c, consts.band_capacity(self._m[index])
        )

    def place(self, spec: JobSpec, stats: Sequence[ShardStats]) -> Optional[int]:
        """Best admitting shard for ``spec``, or ``None``.

        Among shards whose band condition admits the job cluster-wide,
        prefer those with free processor room (the job's allotment
        starts executing immediately instead of joining the starved
        tail), then lowest load, then lowest index.  ``None`` means no
        shard admits (or the ledger is empty) -- the router falls back.
        """
        best: Optional[tuple] = None
        for s in stats:
            if not s.alive or not self.admits(spec, s.index):
                continue
            n = self.shard_state(spec, s.index)[0]
            room = self._m[s.index] - self._committed[s.index]
            key = (0 if n <= room else 1, s.load, s.index)
            if best is None or key < best[0]:
                best = (key, s.index)
        return None if best is None else best[1]

    def note_admit(self, spec: JobSpec, index: int) -> None:
        """Optimistically mirror one routed job until the next refresh."""
        state = self.shard_state(spec, index)
        if state is None:
            return
        n, _x, v, good = state
        if not good or v <= 0:
            return
        bands = self._bands.get(index)
        if bands is not None:
            bands.insert(spec.job_id, v, n)
            self._committed[index] += n

    def merged_band_load(self, density: float) -> float:
        """Cluster-wide started allotment in the band ``[v, c*v)`` --
        the quantity sharding fragments (diagnostics / docs)."""
        c = self.constants.c
        return sum(
            bands.band_load(density, c * density)
            for bands in self._bands.values()
        )


class StealPlanner:
    """Density-aware planning of running-job steals across shards.

    Extends the :class:`~repro.cluster.migration.QueueBalancer` idea --
    pair overloaded donors with roomy receivers, greedily and
    deterministically -- to jobs *inside* donor engines.  Victims
    (parked or starved jobs, highest density first) move when a
    receiver admits them, in one of two ways:

    * **plain steal** -- the receiver has processor room and band
      condition (2) admits the victim into its existing slack; the
      stolen job starts executing immediately;
    * **displacement steal** -- no shard has open slack (the saturated
      steady state: every shard's bands fill with its locally-best
      jobs), but the victim's density exceeds the density of the
      receiver's *weakest started jobs* by at least ``margin``.  Up to
      ``max_displaced`` of those jobs are evicted back through the
      admission path (they re-park with their DAG progress intact and
      stay stealable), the victim takes the freed band room, and the
      cluster as a whole now runs the globally denser set.

    Both cases are the same decision: move exactly when the donor's
    marginal band pressure exceeds the receiver's -- the victim earns
    zero where it is, and whatever it displaces is worth ``margin``
    times less than what it adds.  Without displacement the planner
    plateaus far below the k=1 profit, because in overload every shard
    saturates and no "room" ever opens (measured in
    ``BENCH_cluster.json``: plain steals recover a few points of the
    ~18% k=4 gap; displacement closes it).

    Parameters
    ----------
    constants:
        The scheduler's :class:`~repro.core.theory.Constants`.
    speed:
        Machine speed (work/span are divided by it, as in
        :meth:`~repro.core.sns.SNSScheduler.compute_state`).
    batch:
        Cap on planned moves per steal tick.
    margin:
        Density advantage a victim needs over each job it displaces
        (``> 1``); higher steals less and keeps more local decisions.
    max_displaced:
        Cap on receiver jobs displaced per steal.
    """

    def __init__(
        self,
        constants: Constants,
        speed: float = 1.0,
        batch: int = 8,
        margin: float = 1.5,
        max_displaced: int = 2,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if margin <= 1.0:
            raise ValueError("margin must be > 1")
        if max_displaced < 0:
            raise ValueError("max_displaced must be >= 0")
        self.constants = constants
        self.speed = float(speed)
        self.batch = int(batch)
        self.margin = float(margin)
        self.max_displaced = int(max_displaced)

    def plan(
        self,
        views: dict[int, Optional[dict]],
        t: int,
        move_counts: Optional[dict[int, int]] = None,
        max_moves_per_job: Optional[int] = None,
    ) -> list[StealMove]:
        """Plan up to ``batch`` steals from the given shard views.

        ``move_counts`` / ``max_moves_per_job`` bound how often any one
        job may migrate over its lifetime (the coordinator passes its
        executed-move tally), so a job on the density margin cannot
        ping-pong between shards forever.
        """
        consts = self.constants
        bands: dict[int, DensityBands] = {}
        m: dict[int, int] = {}
        room: dict[int, int] = {}
        #: per shard, started entries ``(density, job_id, allotment)``
        #: ascending by density -- the displacement candidate order
        started: dict[int, list[tuple[float, int, int]]] = {}
        for index, view in sorted(views.items()):
            if view is None:
                continue
            mirror = DensityBands()
            total = 0
            entries: list[tuple[float, int, int]] = []
            for job_id, density, allotment in view["started"]:
                job_id, density, allotment = (
                    int(job_id), float(density), int(allotment)
                )
                if density > 0:
                    mirror.insert(job_id, density, allotment)
                    entries.append((density, job_id, allotment))
                total += allotment
            entries.sort()
            bands[index] = mirror
            m[index] = int(view["m"])
            room[index] = m[index] - total
            started[index] = entries

        victims: list[tuple[float, int, int, str, dict]] = []
        for index, view in sorted(views.items()):
            if view is None:
                continue
            for kind in ("parked", "starved"):
                for entry in view[kind]:
                    if entry["deadline"] is None or entry["density"] <= 0:
                        continue
                    if (
                        move_counts is not None
                        and max_moves_per_job is not None
                        and move_counts.get(entry["job_id"], 0)
                        >= max_moves_per_job
                    ):
                        continue
                    victims.append(
                        (entry["density"], index, entry["job_id"], kind, entry)
                    )
        # highest stranded value first; ties deterministic
        victims.sort(key=lambda v: (-v[0], v[1], v[2]))

        moves: list[StealMove] = []
        touched: set[int] = set()  # victims + displaced, this tick
        receivers = sorted(bands)
        # per-receiver admission state is a function of the pool size
        # alone, so with equal-size shards (the normal partition) each
        # victim's (n, x, v) is computed once, not once per receiver
        state_cache: dict[tuple, Optional[tuple]] = {}
        for density, src, job_id, kind, entry in victims:
            if len(moves) >= self.batch:
                break
            if job_id in touched:
                continue
            d_rem = entry["deadline"] - t
            if d_rem <= 0:
                continue
            work = entry["work"] / self.speed
            span = entry["span"] / self.speed
            placed: Optional[tuple] = None
            for r in receivers:
                if r == src:
                    continue
                key = (m[r], d_rem, work, span, entry["profit"])
                cached = state_cache.get(key)
                if cached is None and key not in state_cache:
                    n = consts.allotment(work, span, d_rem, m[r])
                    x = consts.execution_bound(work, span, n)
                    if not consts.is_delta_good(d_rem, x):
                        cached = None
                    else:
                        v = consts.density(entry["profit"], x, n)
                        cached = (n, v) if v > 0 else None
                    state_cache[key] = cached
                if cached is None:
                    continue
                n, v = cached
                capacity = consts.band_capacity(m[r])
                if n <= room[r] and bands[r].can_insert(
                    v, n, consts.c, capacity
                ):
                    placed = (r, v, n, ())
                    break
                if self.max_displaced == 0:
                    continue
                # displacement: evict the receiver's weakest started
                # jobs while the victim dominates them by ``margin``
                weakest: list[tuple[float, int, int]] = []
                for dv, did, da in started[r]:
                    if dv * self.margin >= v:
                        break  # ascending: no weaker candidates left
                    if did in touched:
                        continue
                    weakest.append((dv, did, da))
                    if len(weakest) >= self.max_displaced:
                        break
                evicted: list[tuple[int, float, int]] = []
                for dv, did, da in weakest:
                    bands[r].remove(did)
                    room[r] += da
                    evicted.append((did, dv, da))
                    if n <= room[r] and bands[r].can_insert(
                        v, n, consts.c, capacity
                    ):
                        break
                if evicted and n <= room[r] and bands[r].can_insert(
                    v, n, consts.c, capacity
                ):
                    placed = (r, v, n, tuple(did for did, _, _ in evicted))
                    break
                for did, dv, da in evicted:  # undo the trial eviction
                    bands[r].insert(did, dv, da)
                    room[r] -= da
            if placed is None:
                continue
            dst, v, n, displaced = placed
            moves.append(
                StealMove(
                    src=src,
                    dst=dst,
                    job_id=job_id,
                    kind=kind,
                    density=density,
                    displaced=displaced,
                )
            )
            bands[dst].insert(job_id, v, n)
            room[dst] -= n
            touched.add(job_id)
            touched.update(displaced)
            if kind == "starved" and job_id in bands[src]:
                # the donor's band entry frees with the extraction
                bands[src].remove(job_id)
                room[src] += int(entry["allotment"])
        return moves


class Coordinator:
    """Attach cluster-wide band-aware scheduling to a cluster.

    Constructing a coordinator hooks it into the cluster's submit path
    (:attr:`ClusterService.coordinator`): before each routing decision
    it refreshes the :class:`BandLedger` and runs a
    :class:`StealPlanner` tick at deterministic submission indices, and
    after each delivery it optimistically mirrors the routed job.  When
    the cluster's router is a
    :class:`~repro.cluster.router.BandAwareRouter`, the ledger is bound
    to it so routing itself becomes shard-spanning admission.

    Works with :class:`~repro.cluster.service.ClusterService`,
    :class:`~repro.cluster.elastic.ElasticCluster` (only the active
    prefix is read, routed to, or stolen between; resizes invalidate
    the ledger) and the resilient subclass (steals re-checkpoint when
    fault injection is on, so log replay never resurrects a stolen-away
    job).

    Parameters
    ----------
    cluster:
        The cluster to coordinate (any mode).
    refresh_every:
        Submissions between ledger refreshes.  In process mode each
        refresh is one synchronous fence per shard -- lower is fresher
        and slower.
    steal_every:
        Submissions between steal ticks (default: ``refresh_every``).
        A steal tick always re-reads fresh views first.
    steal_batch:
        Cap on steals per tick.
    steal_margin:
        Density advantage a victim needs over each receiver job it
        displaces (see :class:`StealPlanner`).
    max_displaced:
        Receiver jobs displaced per steal (0 disables displacement).
    max_moves_per_job:
        Lifetime cap on migrations of any one job (anti-ping-pong).
    constants:
        Override the :class:`~repro.core.theory.Constants` (default:
        derived from the shard template's scheduler).
    """

    def __init__(
        self,
        cluster: ClusterService,
        *,
        refresh_every: int = 64,
        steal_every: Optional[int] = None,
        steal_batch: int = 64,
        steal_margin: float = 3.0,
        max_displaced: int = 3,
        max_moves_per_job: int = 2,
        constants: Optional[Constants] = None,
    ) -> None:
        if refresh_every < 1:
            raise ClusterError("refresh_every must be >= 1")
        if max_moves_per_job < 1:
            raise ClusterError("max_moves_per_job must be >= 1")
        self.cluster = cluster
        template = cluster.shards[0].config
        if constants is None:
            scheduler = template.build_scheduler()
            constants = getattr(scheduler, "constants", None)
            if constants is None:
                constants = Constants.from_epsilon(1.0)
        self.constants = constants
        self.speed = float(template.speed)
        self.ledger = BandLedger(constants, self.speed)
        self.planner = StealPlanner(
            constants,
            self.speed,
            batch=steal_batch,
            margin=steal_margin,
            max_displaced=max_displaced,
        )
        self.refresh_every = int(refresh_every)
        self.steal_every = (
            self.refresh_every if steal_every is None else int(steal_every)
        )
        if self.steal_every < 1:
            raise ClusterError("steal_every must be >= 1")
        self.max_moves_per_job = int(max_moves_per_job)
        #: executed steals, in order
        self.steals: list[StealMove] = []
        self._move_counts: dict[int, int] = {}
        self._views: dict[int, Optional[dict]] = {}
        self._since_refresh: Optional[int] = None  # None = refresh now
        self._since_steal = 0
        #: submissions left in a forced degraded-routing window (ledger
        #: partition fault): refreshes and steals are suppressed, the
        #: band-aware router anchors, until the window drains
        self._partitioned = 0
        cluster.coordinator = self
        # unwrap router decorators (circuit breakers) to find the
        # band-aware router that needs the ledger
        router = cluster.router
        while router is not None and not isinstance(router, BandAwareRouter):
            router = getattr(router, "inner", None)
        if isinstance(router, BandAwareRouter):
            router.bind(self.ledger)

    # -- cluster hook points --------------------------------------------
    def before_route(self, t: int) -> None:
        """Run coordination work due at this submission index."""
        if self._partitioned > 0:
            # partitioned from shard state: no refresh, no steals; the
            # stale ledger keeps the router on its anchor until healed
            self._partitioned -= 1
            self._since_refresh = None
            return
        refreshed = False
        if (
            self._since_refresh is None
            or self._since_refresh >= self.refresh_every
        ):
            self._refresh(t)
            refreshed = True
        else:
            self._since_refresh += 1
        self._since_steal += 1
        if self._since_steal >= self.steal_every:
            if not refreshed:
                self._refresh(t)
            self._steal_tick(t)
            self._since_steal = 0

    def note_route(self, index: int, spec: JobSpec, t: int) -> None:
        """Mirror a delivered submission into the ledger."""
        self.ledger.note_admit(spec, index)

    def invalidate(self) -> None:
        """Force a ledger refresh at the next submission (topology
        changed: scale event, shard death or recovery).  Routing runs
        degraded -- anchor only, no diverts -- until the rebuild."""
        self._since_refresh = None
        self.ledger.stale = True

    def partition(self, submissions: int) -> None:
        """Cut the coordinator off from shard state for a window.

        Models a control-plane partition (the ``ledger-partition``
        chaos fault): for the next ``submissions`` routing decisions the
        ledger is stale, the band-aware router falls back to its
        consistent-hash anchor, and steal ticks are suppressed.  Data
        paths (submissions, advances) are unaffected -- degrade, don't
        die."""
        if submissions < 1:
            raise ClusterError("partition window must be >= 1 submissions")
        self._partitioned = int(submissions)
        self.ledger.stale = True

    # -- internals ------------------------------------------------------
    def _active_shards(self) -> list:
        k = getattr(self.cluster, "k_active", self.cluster.k)
        return [s for s in self.cluster.shards[:k] if s.alive]

    def _refresh(self, t: int = 0) -> None:
        # victim lists are capped at the steal batch: the planner never
        # uses more, and encoding the whole parked set every refresh is
        # what made coordination cost scale with overload depth
        limit = self.planner.batch
        views: dict[int, Optional[dict]] = {}
        failed = False
        for shard in self._active_shards():
            try:
                views[shard.index] = shard.coordination_view(limit)
            except ShardFailedError as exc:
                # shard died mid-refresh: supervise it if the cluster
                # can, drop its view, and keep the ledger degraded --
                # a partial rebuild must not be mistaken for a fresh one
                failed = True
                self._shard_failure(shard.index, t, exc)
        self._views = views
        self.ledger.refresh(self._views)
        self._since_refresh = 0
        if failed:
            self.ledger.stale = True
            self._since_refresh = None

    def _shard_failure(self, index: int, t: int, exc: ShardFailedError) -> None:
        """Route a mid-coordination shard failure into supervision.

        Clusters without supervision (plain :class:`ClusterService`) get
        the old behavior -- the failure propagates; resilient clusters
        restart or degrade the shard and coordination continues."""
        handler = getattr(self.cluster, "_supervise_failure", None)
        if handler is None:
            raise exc
        handler(index, t, exc)

    def _steal_tick(self, t: int) -> None:
        moves = self.planner.plan(
            self._views, t, self._move_counts, self.max_moves_per_job
        )
        if not moves:
            return
        cluster = self.cluster
        journal = getattr(cluster, "steal_journal", None)
        if journal is None:
            self._execute_steals(t, moves)
            return
        # Transactional path: journal intents before touching any
        # shard, hold resolution until the tick ends (a mid-tick
        # recovery must not settle transactions the tick is still
        # executing), then resolve whatever failures left pending.
        journal.in_tick = True
        try:
            self._execute_steals(t, moves)
        finally:
            journal.in_tick = False
            resolver = getattr(cluster, "resolve_steal_txns", None)
            if resolver is not None:
                resolver(t)
            journal.sync()

    def _execute_steals(self, t: int, moves: list[StealMove]) -> None:
        cluster = self.cluster
        shards = cluster.shards
        journal = getattr(cluster, "steal_journal", None)
        tracer = cluster.tracer
        emit = tracer is not None and tracer.enabled
        live = [
            move
            for move in moves
            if shards[move.src].alive and shards[move.dst].alive
        ]
        txn_ids: dict[int, int] = {}
        if journal is not None:
            for move in live:
                txn_ids[move.job_id] = journal.begin(
                    t=t, job_id=move.job_id, src=move.src, dst=move.dst,
                    kind=move.kind,
                )
                for did in move.displaced:
                    # displaced jobs are evicted from and readmitted to
                    # the same receiver: src == dst
                    txn_ids[did] = journal.begin(
                        t=t, job_id=did, src=move.dst, dst=move.dst,
                        kind="displace",
                    )
        # Phase 1 -- batched extraction, one exchange per shard: victims
        # come out of their donors, displaced jobs out of their
        # receivers.  Views were fenced at this same submission index
        # with no advance in between, so extraction only misses when a
        # shard died mid-tick.
        extract_ids: dict[int, list[int]] = {}
        for move in live:
            extract_ids.setdefault(move.src, []).append(move.job_id)
            for did in move.displaced:
                extract_ids.setdefault(move.dst, []).append(did)
        payloads: dict[int, Optional[dict]] = {}
        for index in sorted(extract_ids):
            ids = extract_ids[index]
            try:
                results = shards[index].extract_many(ids)
            except ShardFailedError as exc:
                results = [None] * len(ids)
                self._shard_failure(index, t, exc)
            for job_id, payload in zip(ids, results):
                payloads[job_id] = payload
                if journal is not None and payload is not None:
                    txn_id = txn_ids[job_id]
                    if journal.txns[txn_id].pending:
                        journal.transfer(txn_id, payload)
        # chaos hook: a steal-interrupt fault fires in the window
        # between extraction and injection -- the exact crash site the
        # transaction journal exists to survive
        interrupt = getattr(cluster, "consume_steal_interrupt", None)
        if interrupt is not None:
            target = interrupt()
            if target is not None and shards[target].alive:
                cluster.kill_shard(target)
        # Phase 2 -- batched injection, one exchange per receiver.  Per
        # move: the victim lands first (its arrival admission sees the
        # band room its displaced jobs just freed), then the displaced
        # jobs re-enter the same admission path (they re-park, keeping
        # DAG progress, and stay stealable).
        inject_lists: dict[int, list[tuple[int, dict]]] = {}
        executed = {"parked": 0, "starved": 0}
        displaced_total = 0
        for move in live:
            victim = payloads.get(move.job_id)
            evicted = [
                (did, payloads[did])
                for did in move.displaced
                if payloads.get(did) is not None
            ]
            queue = inject_lists.setdefault(move.dst, [])
            if victim is None:
                # victim vanished (donor died): undo the eviction
                queue.extend(evicted)
                if journal is not None:
                    txn_id = txn_ids[move.job_id]
                    if journal.txns[txn_id].pending:
                        journal.abort(txn_id, "victim-vanished")
                continue
            queue.append((move.job_id, victim))
            queue.extend(evicted)
            for did, _dp in evicted:
                self._move_counts[did] = self._move_counts.get(did, 0) + 1
            executed[move.kind] += 1
            displaced_total += len(evicted)
            self._move_counts[move.job_id] = (
                self._move_counts.get(move.job_id, 0) + 1
            )
            self.steals.append(move)
            if emit:
                tracer.event(
                    t,
                    "steal",
                    move.job_id,
                    {
                        "src": move.src,
                        "dst": move.dst,
                        "kind": move.kind,
                        "density": move.density,
                        "displaced": [did for did, _ in evicted],
                    },
                )
        for index in sorted(inject_lists):
            entries = inject_lists[index]
            if journal is not None:
                # a mid-tick recovery may already have settled some
                # transactions (reconciliation); injecting those
                # payloads again would duplicate the job
                entries = [
                    (jid, payload)
                    for jid, payload in entries
                    if journal.txns[txn_ids[jid]].pending
                ]
            if not entries:
                continue
            try:
                shards[index].inject_many([p for _jid, p in entries], t)
            except ShardFailedError as exc:
                # receiver died before injection: the journaled
                # transfer payloads keep the jobs durable; end-of-tick
                # resolution re-places them exactly once
                if emit:
                    tracer.event(
                        t, "steal-failed", None,
                        {"dst": index, "jobs": [jid for jid, _p in entries]},
                    )
                self._shard_failure(index, t, exc)
                continue
            if journal is not None:
                for jid, _payload in entries:
                    journal.commit(txn_ids[jid])
        total = executed["parked"] + executed["starved"]
        if total:
            metrics = cluster.cluster_metrics
            metrics.counter("steals_total").inc(total)
            for kind, count in executed.items():
                if count:
                    metrics.counter(f"steals_{kind}_total").inc(count)
            if displaced_total:
                metrics.counter("steals_displaced_total").inc(displaced_total)
            # shard state changed under the ledger's feet
            self.invalidate()
            # recovery invariant (same as queued migration): the latest
            # checkpoint must postdate the steal, or a donor log replay
            # would resurrect jobs that migrated away
            if cluster.fault_injector is not None:
                cluster.checkpoint_all()


def coordinate(
    cluster: ClusterService,
    *,
    refresh_every: int = 16,
    steal_every: Optional[int] = None,
    steal_batch: int = 8,
    steal_margin: float = 1.5,
    max_displaced: int = 2,
    max_moves_per_job: int = 8,
    constants: Optional[Constants] = None,
) -> Coordinator:
    """Attach a :class:`Coordinator` to ``cluster`` and return it."""
    return Coordinator(
        cluster,
        refresh_every=refresh_every,
        steal_every=steal_every,
        steal_batch=steal_batch,
        steal_margin=steal_margin,
        max_displaced=max_displaced,
        max_moves_per_job=max_moves_per_job,
        constants=constants,
    )


@dataclass
class CandidateReport:
    """Outcome of one shadow candidate at commit time."""

    name: str
    #: realized profit inside the trial window
    trial_profit: float
    committed: bool


class CandidateTrial:
    """Run candidate cluster configurations in parallel, commit the best.

    The Albers--Hellwig idea from "Online Makespan Minimization with
    Parallel Schedules": rather than betting on one router/partitioning
    up front, mirror the first ``trial_jobs`` submissions into every
    candidate cluster (all in-process, advancing on the same
    deterministic virtual clock), then commit to the candidate with the
    highest *realized* profit -- not a model, the actual simulated
    outcome -- and serve the rest of the stream from it alone.  Losers
    are discarded unfinished.

    The commit decision is a pure function of the submission stream
    (ties break to the earliest candidate), so trial runs are exactly
    as reproducible as single-cluster runs.  Candidate clusters must be
    in-process: shadow execution needs cheap mid-run profit reads, and
    burning worker processes on schedules that will be thrown away
    defeats the point.

    Parameters
    ----------
    candidates:
        ``(name, build)`` pairs; each ``build()`` returns a fresh
        in-process cluster (``ClusterService`` or a subclass).
    trial_jobs:
        Submissions mirrored before the commit decision.
    tracer:
        Optional trace recorder; receives one ``candidate-commit``
        event at the commit point.  (Per-candidate traces stay off
        during the window -- mirrored submissions would otherwise
        record duplicate lifecycles for the same job ids.)
    """

    def __init__(
        self,
        candidates: Sequence[tuple[str, Callable[[], ClusterService]]],
        *,
        trial_jobs: int = 256,
        tracer: Optional[Any] = None,
    ) -> None:
        if len(candidates) < 2:
            raise ClusterError("a candidate trial needs >= 2 candidates")
        if trial_jobs < 1:
            raise ClusterError("trial_jobs must be >= 1")
        self.names = [name for name, _ in candidates]
        self.clusters: list[ClusterService] = [
            build() for _, build in candidates
        ]
        for name, cluster in zip(self.names, self.clusters):
            if cluster.mode != "inprocess":
                raise ClusterError(
                    f"candidate {name!r} is {cluster.mode!r}; candidate "
                    "trials require in-process clusters"
                )
        self.trial_jobs = int(trial_jobs)
        self.tracer = tracer
        self.committed = False
        self.winner: Optional[ClusterService] = None
        self.winner_name: Optional[str] = None
        self.reports: list[CandidateReport] = []
        self._count = 0

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> int:
        """Mirror into every candidate (trial) or route on the winner.

        Returns the winner's chosen shard index after the commit; during
        the trial window, the first candidate's choice (informational).
        """
        if self.committed:
            return self.winner.submit(spec, t)
        index = -1
        for cluster in self.clusters:
            chosen = cluster.submit(spec, t)
            if index < 0:
                index = chosen
        self._count += 1
        if self._count >= self.trial_jobs:
            self.commit()
        return index

    def advance_to(self, t: int) -> int:
        """Advance the winner (or every candidate, during the trial)."""
        if self.committed:
            return self.winner.advance_to(t)
        out = 0
        for cluster in self.clusters:
            out = cluster.advance_to(t)
        return out

    def commit(self) -> CandidateReport:
        """Pick the highest-realized-profit candidate and drop the rest."""
        if self.committed:
            return next(r for r in self.reports if r.committed)
        profits = [cluster.profit_so_far() for cluster in self.clusters]
        best = max(range(len(profits)), key=lambda i: (profits[i], -i))
        self.winner = self.clusters[best]
        self.winner_name = self.names[best]
        self.reports = [
            CandidateReport(name=name, trial_profit=p, committed=(i == best))
            for i, (name, p) in enumerate(zip(self.names, profits))
        ]
        self.committed = True
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                self.winner.now,
                "candidate-commit",
                None,
                {
                    "winner": self.winner_name,
                    "profits": {
                        name: round(p, 6)
                        for name, p in zip(self.names, profits)
                    },
                    "trial_jobs": self._count,
                },
            )
        return self.reports[best]

    def finish(self) -> ClusterResult:
        """Commit (if the stream ended inside the window), drain the
        winner, and annotate its result with the trial reports."""
        if not self.committed:
            self.commit()
        result = self.winner.finish()
        result.extra["candidate_trial"] = [
            {
                "name": r.name,
                "trial_profit": r.trial_profit,
                "committed": r.committed,
            }
            for r in self.reports
        ]
        return result

    def run_stream(self, specs: Iterable[JobSpec]) -> ClusterResult:
        """Drive a whole arrival sequence through the trial."""
        ordered = sorted(specs, key=lambda sp: (sp.arrival, sp.job_id))
        for spec in ordered:
            self.submit(spec, t=spec.arrival)
        return self.finish()
