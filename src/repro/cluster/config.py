"""Shard configuration: picklable recipes for building shard services.

A cluster shard may live in another process, so a shard cannot hold a
live scheduler object -- it holds a :class:`ShardConfig`, a plain
JSON/pickle-compatible recipe (scheduler *name* plus constructor
kwargs, machine count, queue bound, shed policy, ...) from which the
shard -- wherever it runs -- builds its own
:class:`~repro.service.service.SchedulingService`.  The same recipe is
reused verbatim when a killed shard is restored, which is what makes
checkpoint recovery deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.errors import ClusterError, ScenarioError
from repro.service.queue import SHED_POLICIES, make_shed_policy
from repro.service.service import SchedulingService
from repro.service.telemetry import MetricsRegistry
from repro.sim.backends import SERVICE_BACKENDS
from repro.sim.scheduler import Scheduler

class _SchedulerRegistryView:
    """Lazy ``{name: factory}`` view over the shared component registry.

    Kept for compatibility with older call sites that iterate
    ``SCHEDULER_REGISTRY`` for the scheduler name list; resolution
    itself goes through :data:`repro.scenarios.registry.REGISTRY`, so
    every registered scheduler (S, the baselines, the ablations) is
    buildable in a shard worker process by name.
    """

    def _registry(self):
        # deferred so repro.cluster does not import the scheduler stack
        # at module-import time in worker processes that never use it
        from repro.scenarios.components import install_default_components
        from repro.scenarios.registry import REGISTRY

        install_default_components()
        return REGISTRY

    def __getitem__(self, name: str) -> Callable[..., Scheduler]:
        try:
            return self._registry().get("scheduler", name).factory
        except ScenarioError:
            raise KeyError(name) from None

    def __contains__(self, name: object) -> bool:
        return self._registry().has("scheduler", str(name))

    def __iter__(self):
        return iter(self._registry().names("scheduler"))

    def __len__(self) -> int:
        return len(self._registry().names("scheduler"))

    def keys(self):
        return self._registry().names("scheduler")


#: Scheduler factories buildable from a ``(name, kwargs)`` recipe in a
#: shard worker process.  Keys match ``repro-serve --scheduler``.
SCHEDULER_REGISTRY = _SchedulerRegistryView()


def make_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Build a scheduler from its registry name and constructor kwargs."""
    from repro.scenarios.components import install_default_components
    from repro.scenarios.registry import REGISTRY

    install_default_components()
    try:
        return REGISTRY.create("scheduler", name, **kwargs)
    except ScenarioError as exc:
        raise ClusterError(str(exc)) from None


@dataclass(frozen=True)
class ShardConfig:
    """Everything needed to (re)build one shard's service, picklable.

    ``scheduler`` / ``scheduler_kwargs`` name a
    :data:`SCHEDULER_REGISTRY` entry; the remaining fields mirror the
    :class:`~repro.service.service.SchedulingService` constructor.
    """

    m: int
    scheduler: str = "sns"
    scheduler_kwargs: dict[str, Any] = field(default_factory=dict)
    capacity: int = 1024
    shed_policy: str = "reject-newest"
    max_in_flight: Optional[int] = None
    speed: float = 1.0
    horizon: Optional[int] = None
    preemption_overhead: float = 0.0
    sample_every: Optional[int] = None
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ClusterError("shard machine count must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ClusterError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"known: {sorted(SHED_POLICIES)}"
            )
        if self.engine not in SERVICE_BACKENDS:
            valid = ", ".join(SERVICE_BACKENDS)
            raise ClusterError(
                f"shard engine must be one of: {valid}"
                f" (got {self.engine!r})"
            )

    def with_machines(self, m: int) -> "ShardConfig":
        """Copy of this config for a shard of ``m`` machines."""
        return replace(self, m=m)

    def build_scheduler(self) -> Scheduler:
        """Fresh scheduler instance from the recipe."""
        return make_scheduler(self.scheduler, **self.scheduler_kwargs)

    def build_service(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[Any] = None,
    ) -> SchedulingService:
        """Fresh :class:`SchedulingService` from the recipe."""
        return SchedulingService(
            m=self.m,
            scheduler=self.build_scheduler(),
            capacity=self.capacity,
            shed_policy=make_shed_policy(self.shed_policy),
            max_in_flight=self.max_in_flight,
            speed=self.speed,
            horizon=self.horizon,
            preemption_overhead=self.preemption_overhead,
            metrics=metrics,
            sample_every=self.sample_every,
            recorder=recorder,
            engine=self.engine,
        )


def partition_machines(m: int, k: int) -> list[int]:
    """Split ``m`` machines into ``k`` shard sizes, as even as possible.

    The first ``m % k`` shards get the extra machine, so the split is
    deterministic and every shard has at least one machine.

    >>> partition_machines(10, 4)
    [3, 3, 2, 2]
    """
    if k < 1:
        raise ClusterError("shard count must be >= 1")
    if m < k:
        raise ClusterError(f"cannot split {m} machines into {k} shards")
    base, extra = divmod(m, k)
    return [base + 1 if i < extra else base for i in range(k)]
