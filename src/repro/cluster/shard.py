"""Shard handles: one scheduling service per machine-pool shard.

A *shard* is one :class:`~repro.service.service.SchedulingService` over
a slice of the cluster's machines.  The cluster talks to every shard
through the same small handle interface so callers never branch on
deployment mode:

* :class:`InProcessShard` -- the service lives in this process.  Fully
  deterministic and zero-overhead; the mode the equivalence tests pin.
* :class:`ProcessShard` -- the service lives in a worker process, driven
  over a command pipe.  Submissions and clock advances are *fire and
  forget* (the parent streams commands while workers execute) and are
  batched -- buffered up to :data:`BATCH_SIZE` per pipe message -- so
  per-job IPC cost is a fraction of a pipe round-trip.  Stats/snapshot/
  finish calls are synchronous fences that flush the buffer first:
  because each worker applies its command stream in FIFO order, every
  reply is a deterministic function of the commands sent so far, so
  process-mode runs are as reproducible as in-process ones.

Worker processes set the ``REPRO_CLUSTER_SHARD`` environment variable
so nested machinery (e.g. :func:`repro.analysis.sweep.resolve_workers`)
knows not to oversubscribe the host by spawning its own pools.

Both handles share the kill/restore contract the fault harness uses:
:meth:`kill` abandons the shard's state outright (simulating a crash),
and :meth:`restore` rebuilds it from a service snapshot (or from
scratch), after which the cluster replays the submission-log tail.

The resilience layer (:mod:`repro.resilience`) adds three disciplines
on top of the same protocol:

* **idempotency keys** -- ``submit`` accepts an optional key; a shard
  skips keys it has already applied, so replayed or re-sent batches
  never double-admit (exactly-once admission over at-least-once
  delivery);
* **at-most-once sync RPC** -- with an
  :class:`~repro.resilience.rpc.RpcPolicy` attached, synchronous calls
  are sequence-tagged, bounded by per-call deadlines, and retried with
  backoff; the worker caches its last reply per sequence number so a
  retry of an executed call returns the cache instead of re-executing;
* **liveness probes** -- :meth:`ShardHandle.ping` round-trips a
  heartbeat under a deadline, distinguishing *crash* (process dead,
  pipe broken -- :class:`~repro.errors.ShardFailedError`) from *hang*
  (no reply in time -- :class:`~repro.errors.ShardTimeoutError`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Optional, Sequence

from repro.cluster.config import ShardConfig
from repro.cluster.router import ShardStats
from repro.errors import ClusterError, ShardFailedError, ShardTimeoutError
from repro.service.service import SchedulingService, ServiceResult, ShedRecord
from repro.service.snapshot import service_from_dict, service_to_dict
from repro.service.telemetry import MetricsRegistry
from repro.sim.engine import (
    SimulationResult,
    _counters_from_dict,
    _record_from_dict,
)
from repro.sim.jobs import JobSpec

#: Environment flag set inside shard worker processes (see
#: :func:`repro.analysis.sweep.resolve_workers`).
SHARD_ENV_FLAG = "REPRO_CLUSTER_SHARD"

#: Fire-and-forget commands buffered per pipe message.  Batching
#: amortizes the pickle-frame and syscall cost of the command pipe;
#: order within and across batches is FIFO, so results are unchanged.
BATCH_SIZE = 64


class ShardHandle:
    """Uniform interface over in-process and worker-process shards."""

    def __init__(self, index: int, config: ShardConfig) -> None:
        self.index = index
        self.config = config
        self.alive = False
        #: shard-tagged trace view (see repro.observability.recorder);
        #: attached by the cluster before start()
        self.tracer: Optional[Any] = None

    def attach_tracer(self, tracer: Optional[Any]) -> None:
        """Attach this shard's trace view; the next (re)start wires it
        into the shard's service.

        In-process shards record every service/engine event shard-
        tagged; process-mode shards keep the tracer parent-side (the
        cluster still records routing, checkpoint and recovery events
        for them, but not in-worker lifecycle events).
        """
        self.tracer = tracer

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Bring the shard up with a fresh service."""
        raise NotImplementedError

    def kill(self) -> None:
        """Crash the shard: its live state is lost, not drained."""
        raise NotImplementedError

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Bring the shard back up from a service snapshot (``None``
        restarts it empty); the caller replays the submission-log tail."""
        raise NotImplementedError

    # -- streaming ------------------------------------------------------
    def submit(self, spec: JobSpec, t: int, key: Optional[str] = None) -> None:
        """Submit one job at simulated time ``t`` (may be asynchronous).

        ``key`` is an optional idempotency key: a submission whose key
        the shard has already applied is silently skipped, so replays
        and re-sent batches admit each job exactly once.
        """
        raise NotImplementedError

    def advance_to(self, t: int) -> None:
        """Advance the shard clock to at least ``t`` (may be async)."""
        raise NotImplementedError

    # -- liveness -------------------------------------------------------
    def ping(self, timeout: float) -> float:
        """Heartbeat probe: returns the observed latency in seconds.

        Raises :class:`~repro.errors.ShardFailedError` when the shard
        is dead (crash) and :class:`~repro.errors.ShardTimeoutError`
        when it does not answer within ``timeout`` (hang).
        """
        raise NotImplementedError

    def drop_pipe(self) -> None:
        """Sever the shard's command channel without a clean shutdown
        (chaos injection: in-flight commands are lost; the failure is
        only observed at the next use or heartbeat)."""
        raise NotImplementedError

    # -- synchronous fences ---------------------------------------------
    def stats(self) -> ShardStats:
        """Current load stats (synchronous; drains pending commands)."""
        raise NotImplementedError

    def take_queued(self, n: int) -> list[JobSpec]:
        """Pop up to ``n`` newest queued-but-unstarted jobs (migration)."""
        raise NotImplementedError

    def coordination_view(
        self, limit: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """Band/queue state for the cluster coordinator (synchronous).

        ``limit`` caps the parked/starved victim lists to the highest-
        density entries; ``None`` when the shard's scheduler exposes no
        band state."""
        raise NotImplementedError

    def extract_running(self, job_id: int) -> Optional[dict[str, Any]]:
        """Pull a live job out of the shard's engine (steal donor side).

        Synchronous; returns the migration payload, or ``None`` when the
        job is no longer live on this shard."""
        raise NotImplementedError

    def forget_pending(self, job_id: int) -> Optional[JobSpec]:
        """Withdraw a submitted-but-unreleased job from the engine
        (recovery reconciliation; synchronous).  Returns the withdrawn
        spec, or ``None`` when the job is not pending here."""
        raise NotImplementedError

    def inject_running(self, payload: dict[str, Any], t: int) -> None:
        """Install an extracted job into this shard's engine at ``t``
        (steal receiver side; synchronous)."""
        raise NotImplementedError

    def extract_many(
        self, job_ids: Sequence[int]
    ) -> list[Optional[dict[str, Any]]]:
        """Pull several live jobs out in one exchange (one round trip
        in process mode), in the given order."""
        raise NotImplementedError

    def inject_many(
        self, payloads: Sequence[dict[str, Any]], t: int
    ) -> None:
        """Install several extracted jobs in order, in one exchange."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible checkpoint of the shard's whole service."""
        raise NotImplementedError

    def finish(self) -> ServiceResult:
        """Drain and close the shard, returning its service result."""
        raise NotImplementedError

    def _require_alive(self) -> None:
        if not self.alive:
            raise ShardFailedError(
                f"shard {self.index} is not alive", shard=self.index
            )


class InProcessShard(ShardHandle):
    """Shard whose service runs in the calling process."""

    def __init__(self, index: int, config: ShardConfig) -> None:
        super().__init__(index, config)
        self.service: Optional[SchedulingService] = None
        self._seen_keys: set[str] = set()
        #: chaos flags -- an in-process shard cannot *really* hang the
        #: caller, so the harness marks it hung/slow and the liveness
        #: probe reports accordingly (see repro.resilience.chaos)
        self.chaos_hung = False
        self.chaos_latency = 0.0

    def start(self) -> None:
        """Build and start a fresh service from the config."""
        self.service = self.config.build_service()
        if self.tracer is not None:
            self.service.attach_tracer(self.tracer)
        self.service.start()
        self.alive = True
        self._seen_keys = set()
        self.chaos_hung = False
        self.chaos_latency = 0.0

    def kill(self) -> None:
        """Drop the service object on the floor (simulated crash)."""
        self.service = None
        self.alive = False
        self.chaos_hung = False
        self.chaos_latency = 0.0

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Rebuild from a snapshot, or start empty when ``None``."""
        if snapshot is None:
            self.start()
            return
        self.service = service_from_dict(
            snapshot, self.config.build_scheduler()
        )
        if self.tracer is not None:
            self.service.attach_tracer(self.tracer)
        self.alive = True
        self._seen_keys = set()
        self.chaos_hung = False
        self.chaos_latency = 0.0

    def submit(self, spec: JobSpec, t: int, key: Optional[str] = None) -> None:
        """Feed the job straight into the service."""
        self._require_alive()
        if self.chaos_hung:
            raise ShardTimeoutError(
                f"shard {self.index} did not accept the submission in time",
                shard=self.index,
            )
        if key is not None:
            if key in self._seen_keys:
                return
            self._seen_keys.add(key)
        self.service.submit(spec, t=max(t, self.service.now))

    def advance_to(self, t: int) -> None:
        """Advance the service clock (no-op when already past ``t``)."""
        self._require_alive()
        if self.chaos_hung:
            raise ShardTimeoutError(
                f"shard {self.index} did not advance in time", shard=self.index
            )
        if t > self.service.now:
            self.service.advance_to(t)

    def ping(self, timeout: float) -> float:
        """Simulated heartbeat: dead raises crash, hung raises timeout."""
        self._require_alive()
        if self.chaos_hung:
            raise ShardTimeoutError(
                f"shard {self.index} missed its heartbeat "
                f"(deadline {timeout}s)",
                shard=self.index,
            )
        return self.chaos_latency

    def drop_pipe(self) -> None:
        """No pipe in-process: equivalent to losing the live state."""
        self.kill()

    def stats(self) -> ShardStats:
        """Exact live stats."""
        self._require_alive()
        service = self.service
        return ShardStats(
            index=self.index,
            m=service.sim.m,
            now=service.now,
            queue_depth=service.queue.depth,
            in_flight=service.in_flight,
            completed=service.sim.counters.completions,
            alive=True,
        )

    def take_queued(self, n: int) -> list[JobSpec]:
        """Pop newest queued jobs off the ingest queue."""
        self._require_alive()
        return [entry.spec for entry in self.service.queue.take_newest(n)]

    def coordination_view(
        self, limit: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """Exact live band/queue state."""
        self._require_alive()
        return self.service.coordination_view(limit)

    def extract_running(self, job_id: int) -> Optional[dict[str, Any]]:
        """Pull a live job straight out of the service."""
        self._require_alive()
        return self.service.extract_running(job_id)

    def forget_pending(self, job_id: int) -> Optional[JobSpec]:
        """Withdraw a pending job straight from the service."""
        self._require_alive()
        return self.service.forget_pending(job_id)

    def inject_running(self, payload: dict[str, Any], t: int) -> None:
        """Install an extracted job into the service."""
        self._require_alive()
        self.service.inject_running(payload, t=max(t, self.service.now))

    def extract_many(
        self, job_ids: Sequence[int]
    ) -> list[Optional[dict[str, Any]]]:
        """Pull several live jobs straight out of the service."""
        self._require_alive()
        return [self.service.extract_running(j) for j in job_ids]

    def inject_many(
        self, payloads: Sequence[dict[str, Any]], t: int
    ) -> None:
        """Install several extracted jobs in submission order."""
        self._require_alive()
        t = max(t, self.service.now)
        for payload in payloads:
            self.service.inject_running(payload, t=t)

    def snapshot(self) -> dict[str, Any]:
        """Serialize the whole service."""
        self._require_alive()
        return service_to_dict(self.service)

    def finish(self) -> ServiceResult:
        """Drain and close; the shard is no longer alive afterwards."""
        self._require_alive()
        result = self.service.finish()
        self.alive = False
        return result


def _result_to_payload(result: ServiceResult) -> dict[str, Any]:
    """Flatten a ServiceResult into a picklable payload (worker side)."""
    from repro.sim.engine import _counters_to_dict, _record_to_dict

    sim = result.result
    return {
        "m": sim.m,
        "speed": sim.speed,
        "records": [_record_to_dict(rec) for rec in sim.records.values()],
        "counters": _counters_to_dict(sim.counters),
        "end_time": sim.end_time,
        "shed": [
            [rec.job_id, rec.time, rec.reason, rec.density, rec.profit]
            for rec in result.shed
        ],
        "metrics": result.metrics.state_to_dict(),
        "samples": result.metrics.samples,
    }


def _result_from_payload(data: dict[str, Any]) -> ServiceResult:
    """Rebuild a ServiceResult from a worker payload (parent side)."""
    records = {}
    for entry in data["records"]:
        rec = _record_from_dict(entry)
        records[rec.job_id] = rec
    metrics = MetricsRegistry()
    metrics.restore_from_dict(data["metrics"])
    metrics.samples = list(data["samples"])
    return ServiceResult(
        result=SimulationResult(
            m=int(data["m"]),
            speed=float(data["speed"]),
            records=records,
            counters=_counters_from_dict(data["counters"]),
            end_time=int(data["end_time"]),
        ),
        shed=[
            ShedRecord(
                job_id=int(job_id),
                time=int(time),
                reason=str(reason),
                density=float(density),
                profit=float(profit),
            )
            for job_id, time, reason, density, profit in data["shed"]
        ],
        metrics=metrics,
    )


def _shard_worker(conn, config: ShardConfig) -> None:
    """Worker-process main loop: apply piped commands to one service.

    The first command must be ``("start",)`` or ``("restore", data)``.
    Submissions, advances and chaos sleeps are applied without
    replying; synchronous commands arrive wrapped as
    ``("call", seq, inner)`` and reply ``("ok", seq, payload)`` /
    ``("err", seq, message)``.  The worker caches its last reply, so a
    duplicate ``call`` (a parent retry after a timeout) is answered
    from cache instead of executing twice -- at-most-once execution
    over at-least-once delivery.  Submissions carrying an idempotency
    key are applied at most once per key.  ``finish`` replies then ends
    the loop.  Any exception is reported and kills the worker.
    """
    os.environ[SHARD_ENV_FLAG] = "1"
    service: Optional[SchedulingService] = None
    seen_keys: set[str] = set()

    def apply_async(command: tuple) -> None:
        op = command[0]
        if op == "submit":
            key = command[3] if len(command) > 3 else None
            if key is not None:
                if key in seen_keys:
                    return
                seen_keys.add(key)
            service.submit(command[1], t=max(command[2], service.now))
        elif op == "advance":
            if command[1] > service.now:
                service.advance_to(command[1])
        elif op == "sleep":  # chaos: stall the worker (hang / slow RPC)
            time.sleep(command[1])
        else:
            raise ClusterError(f"command {op!r} not allowed in a batch")

    def apply_sync(command: tuple) -> Any:
        op = command[0]
        if op == "stats":
            return {
                "now": service.now,
                "queue_depth": service.queue.depth,
                "in_flight": service.in_flight,
                "completed": service.sim.counters.completions,
            }
        if op == "take":
            taken = service.queue.take_newest(command[1])
            return [entry.spec for entry in taken]
        if op == "coord":
            limit = command[1] if len(command) > 1 else None
            return service.coordination_view(limit)
        if op == "extract":
            return service.extract_running(command[1])
        if op == "forget":
            return service.forget_pending(command[1])
        if op == "extract_many":
            return [service.extract_running(j) for j in command[1]]
        if op == "inject":
            service.inject_running(
                command[1], t=max(command[2], service.now)
            )
            return True
        if op == "inject_many":
            t = max(command[2], service.now)
            for payload in command[1]:
                service.inject_running(payload, t=t)
            return True
        if op == "snapshot":
            return service_to_dict(service)
        if op == "ping":
            return {"now": service.now if service is not None else -1}
        if op == "finish":
            return _result_to_payload(service.finish())
        raise ClusterError(f"unknown shard command {op!r}")

    last_seq = -1
    last_reply: Optional[tuple] = None
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "start":
                service = config.build_service()
                service.start()
                seen_keys = set()
            elif op == "restore":
                service = service_from_dict(
                    command[1], config.build_scheduler()
                )
                seen_keys = set()
            elif op in ("submit", "advance", "sleep"):
                apply_async(command)
            elif op == "batch":
                for sub in command[1]:
                    apply_async(sub)
            elif op == "call":
                seq, inner = command[1], command[2]
                if seq == last_seq and last_reply is not None:
                    conn.send(last_reply)
                    continue
                last_reply = ("ok", seq, apply_sync(inner))
                last_seq = seq
                conn.send(last_reply)
                if inner[0] == "finish":
                    return
            elif op == "stop":
                return
            else:
                raise ClusterError(f"unknown shard command {op!r}")
    except EOFError:
        return
    except BaseException as exc:  # report, then die
        try:
            conn.send(("err", None, f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _mp_context():
    """``fork`` where the platform has it (cheap; no re-import), else
    ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessShard(ShardHandle):
    """Shard whose service runs in a dedicated worker process.

    With ``rpc`` left at ``None`` (the default) synchronous calls block
    forever -- PR 3's deterministic behaviour.  The resilient cluster
    attaches an :class:`~repro.resilience.rpc.RpcPolicy`, which bounds
    every call with a deadline and retries timed-out calls; sequence
    tags plus the worker's reply cache keep retried calls at-most-once.
    """

    def __init__(self, index: int, config: ShardConfig) -> None:
        super().__init__(index, config)
        self._process = None
        self._conn = None
        self._buffer: list[tuple] = []
        #: deadline/retry policy; ``None`` = legacy blocking RPC
        self.rpc = None
        self._seq = 0

    # -- plumbing -------------------------------------------------------
    def _spawn(self, first_command: tuple) -> None:
        ctx = _mp_context()
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=_shard_worker,
            args=(child, self.config),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        process.start()
        child.close()
        self._process = process
        self._conn = parent
        self.alive = True
        self._conn.send(first_command)

    def _flush(self) -> None:
        """Push buffered fire-and-forget commands in one pipe message."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        try:
            if len(batch) == 1:
                self._conn.send(batch[0])
            else:
                self._conn.send(("batch", batch))
        except (BrokenPipeError, OSError) as exc:
            self.alive = False
            raise ShardFailedError(
                f"shard {self.index} worker died", shard=self.index
            ) from exc

    def _enqueue(self, command: tuple) -> None:
        """Buffer an async command, flushing at :data:`BATCH_SIZE`."""
        self._require_alive()
        self._buffer.append(command)
        if len(self._buffer) >= BATCH_SIZE:
            self._flush()

    def _recv_reply(self, seq: int, timeout: Optional[float]) -> Any:
        """Wait for the reply tagged ``seq``, skipping stale replies.

        A reply with a lower sequence number is a late answer to a call
        that already timed out (and whose retry was answered from the
        worker's cache) -- discarding it keeps the pipe synchronized.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._conn.poll(remaining):
                    raise ShardTimeoutError(
                        f"shard {self.index} did not reply within "
                        f"{timeout}s",
                        shard=self.index,
                    )
            status, rseq, payload = self._conn.recv()
            if rseq is not None and rseq < seq:
                continue  # stale reply from a timed-out attempt
            if status != "ok":
                self.alive = False
                raise ShardFailedError(
                    f"shard {self.index} failed: {payload}", shard=self.index
                )
            return payload

    def _call(self, command: tuple, *, timeout: Optional[float] = None) -> Any:
        """Flush, send a synchronous command, and return its payload.

        ``timeout`` overrides the policy's ``call_timeout`` (the finish
        drain passes ``finish_timeout``).  Without a policy the call
        blocks until the worker answers.
        """
        self._require_alive()
        self._flush()
        self._seq += 1
        seq = self._seq
        wrapped = ("call", seq, command)
        if timeout is None and self.rpc is not None:
            timeout = self.rpc.call_timeout
        attempts = 1 + (self.rpc.retries if self.rpc is not None else 0)
        last_timeout: Optional[ShardTimeoutError] = None
        for attempt in range(attempts):
            if attempt > 0:
                time.sleep(self.rpc.backoff(attempt - 1))
            try:
                self._conn.send(wrapped)
                return self._recv_reply(seq, timeout)
            except ShardTimeoutError as exc:
                last_timeout = exc
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.alive = False
                raise ShardFailedError(
                    f"shard {self.index} worker died mid-command",
                    shard=self.index,
                ) from exc
        raise last_timeout

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker and start its service."""
        self._spawn(("start",))

    def kill(self) -> None:
        """Terminate the worker without draining (simulated crash).

        Buffered commands are dropped with it -- exactly what a crash
        does to in-flight traffic; the cluster's submission log is the
        durable copy that recovery replays.
        """
        self._buffer.clear()
        if self._process is not None:
            self._process.terminate()
            self._process.join(timeout=5)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already severed
                pass
        self._process = None
        self._conn = None
        self.alive = False

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Spawn a fresh worker from a snapshot (or empty)."""
        if snapshot is None:
            self.start()
        else:
            self._spawn(("restore", snapshot))

    # -- streaming (fire and forget, batched) ----------------------------
    def submit(self, spec: JobSpec, t: int, key: Optional[str] = None) -> None:
        """Buffer one submission for the worker; no reply awaited."""
        self._enqueue(("submit", spec, t, key))

    def advance_to(self, t: int) -> None:
        """Buffer a clock advance for the worker; no reply awaited."""
        self._enqueue(("advance", t))

    # -- liveness / chaos -----------------------------------------------
    def ping(self, timeout: float) -> float:
        """Round-trip a heartbeat under ``timeout``; returns latency.

        A dead worker process raises
        :class:`~repro.errors.ShardFailedError` immediately; a live one
        that fails to reply in time (hung, or drowning in backlog)
        raises :class:`~repro.errors.ShardTimeoutError`.  The probe is
        single-shot -- no retries -- so detection latency is bounded by
        the deadline itself.
        """
        self._require_alive()
        if self._process is not None and not self._process.is_alive():
            self.alive = False
            raise ShardFailedError(
                f"shard {self.index} worker process is dead",
                shard=self.index,
            )
        started = time.monotonic()
        self._flush()
        self._seq += 1
        seq = self._seq
        try:
            self._conn.send(("call", seq, ("ping",)))
            self._recv_reply(seq, timeout)
        except (EOFError, BrokenPipeError, OSError) as exc:
            self.alive = False
            raise ShardFailedError(
                f"shard {self.index} worker died mid-heartbeat",
                shard=self.index,
            ) from exc
        return time.monotonic() - started

    def hang(self, seconds: float) -> None:
        """Chaos: make the worker sleep, stalling its command stream."""
        self._enqueue(("sleep", seconds))
        self._flush()

    def drop_pipe(self) -> None:
        """Chaos: close the parent end of the command pipe.

        The worker exits on EOF; the parent only notices at its next
        send or heartbeat, which models an abrupt network partition.
        """
        self._buffer.clear()
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already severed
                pass

    # -- synchronous fences ---------------------------------------------
    def stats(self) -> ShardStats:
        """Round-trip stats; deterministic (worker drains its queue first)."""
        data = self._call(("stats",))
        return ShardStats(
            index=self.index,
            m=self.config.m,
            now=int(data["now"]),
            queue_depth=int(data["queue_depth"]),
            in_flight=int(data["in_flight"]),
            completed=int(data["completed"]),
            alive=True,
        )

    def take_queued(self, n: int) -> list[JobSpec]:
        """Round-trip migration pop."""
        return list(self._call(("take", n)))

    def coordination_view(
        self, limit: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """Round-trip band/queue state (a deterministic sync fence)."""
        return self._call(("coord", limit))

    def extract_running(self, job_id: int) -> Optional[dict[str, Any]]:
        """Round-trip steal extraction."""
        return self._call(("extract", job_id))

    def forget_pending(self, job_id: int) -> Optional[JobSpec]:
        """Round-trip pending-job withdrawal."""
        return self._call(("forget", job_id))

    def inject_running(self, payload: dict[str, Any], t: int) -> None:
        """Round-trip steal injection."""
        self._call(("inject", payload, t))

    def extract_many(
        self, job_ids: Sequence[int]
    ) -> list[Optional[dict[str, Any]]]:
        """Batch steal extraction: one round trip for all ids."""
        return self._call(("extract_many", list(job_ids)))

    def inject_many(
        self, payloads: Sequence[dict[str, Any]], t: int
    ) -> None:
        """Batch steal injection: one round trip for all payloads."""
        self._call(("inject_many", list(payloads), t))

    def snapshot(self) -> dict[str, Any]:
        """Round-trip service checkpoint."""
        return self._call(("snapshot",))

    def finish(self) -> ServiceResult:
        """Drain the worker's service and reap the process."""
        timeout = self.rpc.finish_timeout if self.rpc is not None else None
        payload = self._call(("finish",), timeout=timeout)
        result = _result_from_payload(payload)
        self._process.join(timeout=10)
        self._conn.close()
        self._process = None
        self._conn = None
        self.alive = False
        return result


def make_shard(index: int, config: ShardConfig, mode: str) -> ShardHandle:
    """Build a shard handle for ``mode`` (``"inprocess"``/``"process"``)."""
    if mode == "inprocess":
        return InProcessShard(index, config)
    if mode == "process":
        return ProcessShard(index, config)
    raise ClusterError(
        f"unknown cluster mode {mode!r}; known: ['inprocess', 'process']"
    )
