"""Shard handles: one scheduling service per machine-pool shard.

A *shard* is one :class:`~repro.service.service.SchedulingService` over
a slice of the cluster's machines.  The cluster talks to every shard
through the same small handle interface so callers never branch on
deployment mode:

* :class:`InProcessShard` -- the service lives in this process.  Fully
  deterministic and zero-overhead; the mode the equivalence tests pin.
* :class:`ProcessShard` -- the service lives in a worker process, driven
  over a command pipe.  Submissions and clock advances are *fire and
  forget* (the parent streams commands while workers execute) and are
  batched -- buffered up to :data:`BATCH_SIZE` per pipe message -- so
  per-job IPC cost is a fraction of a pipe round-trip.  Stats/snapshot/
  finish calls are synchronous fences that flush the buffer first:
  because each worker applies its command stream in FIFO order, every
  reply is a deterministic function of the commands sent so far, so
  process-mode runs are as reproducible as in-process ones.

Worker processes set the ``REPRO_CLUSTER_SHARD`` environment variable
so nested machinery (e.g. :func:`repro.analysis.sweep.resolve_workers`)
knows not to oversubscribe the host by spawning its own pools.

Both handles share the kill/restore contract the fault harness uses:
:meth:`kill` abandons the shard's state outright (simulating a crash),
and :meth:`restore` rebuilds it from a service snapshot (or from
scratch), after which the cluster replays the submission-log tail.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Optional

from repro.cluster.config import ShardConfig
from repro.cluster.router import ShardStats
from repro.errors import ClusterError
from repro.service.service import SchedulingService, ServiceResult, ShedRecord
from repro.service.snapshot import service_from_dict, service_to_dict
from repro.service.telemetry import MetricsRegistry
from repro.sim.engine import (
    SimulationResult,
    _counters_from_dict,
    _record_from_dict,
)
from repro.sim.jobs import JobSpec

#: Environment flag set inside shard worker processes (see
#: :func:`repro.analysis.sweep.resolve_workers`).
SHARD_ENV_FLAG = "REPRO_CLUSTER_SHARD"

#: Fire-and-forget commands buffered per pipe message.  Batching
#: amortizes the pickle-frame and syscall cost of the command pipe;
#: order within and across batches is FIFO, so results are unchanged.
BATCH_SIZE = 64


class ShardHandle:
    """Uniform interface over in-process and worker-process shards."""

    def __init__(self, index: int, config: ShardConfig) -> None:
        self.index = index
        self.config = config
        self.alive = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Bring the shard up with a fresh service."""
        raise NotImplementedError

    def kill(self) -> None:
        """Crash the shard: its live state is lost, not drained."""
        raise NotImplementedError

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Bring the shard back up from a service snapshot (``None``
        restarts it empty); the caller replays the submission-log tail."""
        raise NotImplementedError

    # -- streaming ------------------------------------------------------
    def submit(self, spec: JobSpec, t: int) -> None:
        """Submit one job at simulated time ``t`` (may be asynchronous)."""
        raise NotImplementedError

    def advance_to(self, t: int) -> None:
        """Advance the shard clock to at least ``t`` (may be async)."""
        raise NotImplementedError

    # -- synchronous fences ---------------------------------------------
    def stats(self) -> ShardStats:
        """Current load stats (synchronous; drains pending commands)."""
        raise NotImplementedError

    def take_queued(self, n: int) -> list[JobSpec]:
        """Pop up to ``n`` newest queued-but-unstarted jobs (migration)."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible checkpoint of the shard's whole service."""
        raise NotImplementedError

    def finish(self) -> ServiceResult:
        """Drain and close the shard, returning its service result."""
        raise NotImplementedError

    def _require_alive(self) -> None:
        if not self.alive:
            raise ClusterError(f"shard {self.index} is not alive")


class InProcessShard(ShardHandle):
    """Shard whose service runs in the calling process."""

    def __init__(self, index: int, config: ShardConfig) -> None:
        super().__init__(index, config)
        self.service: Optional[SchedulingService] = None

    def start(self) -> None:
        """Build and start a fresh service from the config."""
        self.service = self.config.build_service()
        self.service.start()
        self.alive = True

    def kill(self) -> None:
        """Drop the service object on the floor (simulated crash)."""
        self.service = None
        self.alive = False

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Rebuild from a snapshot, or start empty when ``None``."""
        if snapshot is None:
            self.start()
            return
        self.service = service_from_dict(
            snapshot, self.config.build_scheduler()
        )
        self.alive = True

    def submit(self, spec: JobSpec, t: int) -> None:
        """Feed the job straight into the service."""
        self._require_alive()
        self.service.submit(spec, t=max(t, self.service.now))

    def advance_to(self, t: int) -> None:
        """Advance the service clock (no-op when already past ``t``)."""
        self._require_alive()
        if t > self.service.now:
            self.service.advance_to(t)

    def stats(self) -> ShardStats:
        """Exact live stats."""
        self._require_alive()
        service = self.service
        return ShardStats(
            index=self.index,
            m=service.sim.m,
            now=service.now,
            queue_depth=service.queue.depth,
            in_flight=service.in_flight,
            completed=service.sim.counters.completions,
            alive=True,
        )

    def take_queued(self, n: int) -> list[JobSpec]:
        """Pop newest queued jobs off the ingest queue."""
        self._require_alive()
        return [entry.spec for entry in self.service.queue.take_newest(n)]

    def snapshot(self) -> dict[str, Any]:
        """Serialize the whole service."""
        self._require_alive()
        return service_to_dict(self.service)

    def finish(self) -> ServiceResult:
        """Drain and close; the shard is no longer alive afterwards."""
        self._require_alive()
        result = self.service.finish()
        self.alive = False
        return result


def _result_to_payload(result: ServiceResult) -> dict[str, Any]:
    """Flatten a ServiceResult into a picklable payload (worker side)."""
    from repro.sim.engine import _counters_to_dict, _record_to_dict

    sim = result.result
    return {
        "m": sim.m,
        "speed": sim.speed,
        "records": [_record_to_dict(rec) for rec in sim.records.values()],
        "counters": _counters_to_dict(sim.counters),
        "end_time": sim.end_time,
        "shed": [
            [rec.job_id, rec.time, rec.reason, rec.density, rec.profit]
            for rec in result.shed
        ],
        "metrics": result.metrics.state_to_dict(),
        "samples": result.metrics.samples,
    }


def _result_from_payload(data: dict[str, Any]) -> ServiceResult:
    """Rebuild a ServiceResult from a worker payload (parent side)."""
    records = {}
    for entry in data["records"]:
        rec = _record_from_dict(entry)
        records[rec.job_id] = rec
    metrics = MetricsRegistry()
    metrics.restore_from_dict(data["metrics"])
    metrics.samples = list(data["samples"])
    return ServiceResult(
        result=SimulationResult(
            m=int(data["m"]),
            speed=float(data["speed"]),
            records=records,
            counters=_counters_from_dict(data["counters"]),
            end_time=int(data["end_time"]),
        ),
        shed=[
            ShedRecord(
                job_id=int(job_id),
                time=int(time),
                reason=str(reason),
                density=float(density),
                profit=float(profit),
            )
            for job_id, time, reason, density, profit in data["shed"]
        ],
        metrics=metrics,
    )


def _shard_worker(conn, config: ShardConfig) -> None:
    """Worker-process main loop: apply piped commands to one service.

    The first command must be ``("start",)`` or ``("restore", data)``.
    Submissions and advances are applied without replying; ``stats`` /
    ``take`` / ``snapshot`` reply ``("ok", payload)`` and ``finish``
    replies then ends the loop.  Any exception is reported as
    ``("err", message)`` and kills the worker.
    """
    os.environ[SHARD_ENV_FLAG] = "1"
    service: Optional[SchedulingService] = None

    def apply_async(command: tuple) -> None:
        op = command[0]
        if op == "submit":
            service.submit(command[1], t=max(command[2], service.now))
        elif op == "advance":
            if command[1] > service.now:
                service.advance_to(command[1])
        else:
            raise ClusterError(f"command {op!r} not allowed in a batch")

    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "start":
                service = config.build_service()
                service.start()
            elif op == "restore":
                service = service_from_dict(
                    command[1], config.build_scheduler()
                )
            elif op in ("submit", "advance"):
                apply_async(command)
            elif op == "batch":
                for sub in command[1]:
                    apply_async(sub)
            elif op == "stats":
                conn.send(
                    (
                        "ok",
                        {
                            "now": service.now,
                            "queue_depth": service.queue.depth,
                            "in_flight": service.in_flight,
                            "completed": service.sim.counters.completions,
                        },
                    )
                )
            elif op == "take":
                taken = service.queue.take_newest(command[1])
                conn.send(("ok", [entry.spec for entry in taken]))
            elif op == "snapshot":
                conn.send(("ok", service_to_dict(service)))
            elif op == "finish":
                conn.send(("ok", _result_to_payload(service.finish())))
                return
            elif op == "stop":
                return
            else:
                raise ClusterError(f"unknown shard command {op!r}")
    except EOFError:
        return
    except BaseException as exc:  # report, then die
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _mp_context():
    """``fork`` where the platform has it (cheap; no re-import), else
    ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessShard(ShardHandle):
    """Shard whose service runs in a dedicated worker process."""

    def __init__(self, index: int, config: ShardConfig) -> None:
        super().__init__(index, config)
        self._process = None
        self._conn = None
        self._buffer: list[tuple] = []

    # -- plumbing -------------------------------------------------------
    def _spawn(self, first_command: tuple) -> None:
        ctx = _mp_context()
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=_shard_worker,
            args=(child, self.config),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        process.start()
        child.close()
        self._process = process
        self._conn = parent
        self.alive = True
        self._conn.send(first_command)

    def _flush(self) -> None:
        """Push buffered fire-and-forget commands in one pipe message."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        try:
            if len(batch) == 1:
                self._conn.send(batch[0])
            else:
                self._conn.send(("batch", batch))
        except (BrokenPipeError, OSError) as exc:
            self.alive = False
            raise ClusterError(f"shard {self.index} worker died") from exc

    def _enqueue(self, command: tuple) -> None:
        """Buffer an async command, flushing at :data:`BATCH_SIZE`."""
        self._require_alive()
        self._buffer.append(command)
        if len(self._buffer) >= BATCH_SIZE:
            self._flush()

    def _call(self, command: tuple) -> Any:
        """Flush, send a synchronous command, and return its payload."""
        self._require_alive()
        self._flush()
        try:
            self._conn.send(command)
            status, payload = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self.alive = False
            raise ClusterError(
                f"shard {self.index} worker died mid-command"
            ) from exc
        if status != "ok":
            self.alive = False
            raise ClusterError(f"shard {self.index} failed: {payload}")
        return payload

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker and start its service."""
        self._spawn(("start",))

    def kill(self) -> None:
        """Terminate the worker without draining (simulated crash).

        Buffered commands are dropped with it -- exactly what a crash
        does to in-flight traffic; the cluster's submission log is the
        durable copy that recovery replays.
        """
        self._buffer.clear()
        if self._process is not None:
            self._process.terminate()
            self._process.join(timeout=5)
        if self._conn is not None:
            self._conn.close()
        self._process = None
        self._conn = None
        self.alive = False

    def restore(self, snapshot: Optional[dict[str, Any]]) -> None:
        """Spawn a fresh worker from a snapshot (or empty)."""
        if snapshot is None:
            self.start()
        else:
            self._spawn(("restore", snapshot))

    # -- streaming (fire and forget, batched) ----------------------------
    def submit(self, spec: JobSpec, t: int) -> None:
        """Buffer one submission for the worker; no reply awaited."""
        self._enqueue(("submit", spec, t))

    def advance_to(self, t: int) -> None:
        """Buffer a clock advance for the worker; no reply awaited."""
        self._enqueue(("advance", t))

    # -- synchronous fences ---------------------------------------------
    def stats(self) -> ShardStats:
        """Round-trip stats; deterministic (worker drains its queue first)."""
        data = self._call(("stats",))
        return ShardStats(
            index=self.index,
            m=self.config.m,
            now=int(data["now"]),
            queue_depth=int(data["queue_depth"]),
            in_flight=int(data["in_flight"]),
            completed=int(data["completed"]),
            alive=True,
        )

    def take_queued(self, n: int) -> list[JobSpec]:
        """Round-trip migration pop."""
        return list(self._call(("take", n)))

    def snapshot(self) -> dict[str, Any]:
        """Round-trip service checkpoint."""
        return self._call(("snapshot",))

    def finish(self) -> ServiceResult:
        """Drain the worker's service and reap the process."""
        payload = self._call(("finish",))
        result = _result_from_payload(payload)
        self._process.join(timeout=10)
        self._conn.close()
        self._process = None
        self._conn = None
        self.alive = False
        return result


def make_shard(index: int, config: ShardConfig, mode: str) -> ShardHandle:
    """Build a shard handle for ``mode`` (``"inprocess"``/``"process"``)."""
    if mode == "inprocess":
        return InProcessShard(index, config)
    if mode == "process":
        return ProcessShard(index, config)
    raise ClusterError(
        f"unknown cluster mode {mode!r}; known: ['inprocess', 'process']"
    )
