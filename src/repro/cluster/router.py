"""Routing policies: which shard admits a submitted job.

Scheduler S makes sharding natural: a job's allotment ``n_i`` and
density ``v_i`` are computed at arrival from ``(W_i, L_i, D_i, p_i)``
alone, so placement needs no cross-shard scheduler state -- a router
only looks at the job and (optionally) cheap per-shard load stats.

Four deterministic policies ship:

* :class:`RoundRobinRouter` -- cycle through shards in submission order;
* :class:`LeastLoadedRouter` -- fewest jobs pending (queued + in
  flight), ties to the lowest shard index;
* :class:`DensityAwareRouter` -- balance the *value mass* (sum of S's
  densities ``v_i``) routed to each shard, so every shard competes for
  a similar amount of profit instead of a similar job count;
* :class:`ConsistentHashRouter` -- hash ring over job ids (stable md5,
  never Python's randomized ``hash``), so a job's placement depends on
  its id alone: adding shards moves only ``~1/k`` of the id space, and
  the induced partition of a trace is reproducible across processes --
  the property the cluster determinism tests pin down.

All routers see the same :class:`ShardStats` view in either cluster
mode; in multiprocessing mode the stats are refreshed at deterministic
submission indices, so routing decisions are identical to the
in-process run over the same trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ClusterError
from repro.sim.jobs import JobSpec


@dataclass
class ShardStats:
    """Cheap per-shard load summary a router may consult."""

    index: int
    #: machines in the shard
    m: int
    #: shard's simulated clock
    now: int = 0
    #: jobs buffered in the ingest queue
    queue_depth: int = 0
    #: jobs inside the engine (released, unfinished)
    in_flight: int = 0
    #: jobs the shard has completed
    completed: int = 0
    #: whether the shard currently accepts submissions
    alive: bool = True

    @property
    def load(self) -> int:
        """Jobs pending on the shard (queued + in flight)."""
        return self.queue_depth + self.in_flight


class Router:
    """Chooses the shard index for each submitted job."""

    #: registry name (see :data:`ROUTERS`)
    name = "abstract"
    #: whether the router reads live load fields (queue depth, in
    #: flight); stats-free routers skip stats refreshes in process mode
    needs_stats = True

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """Return the index of the shard that should admit ``spec``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run routing state (new stream)."""


class RoundRobinRouter(Router):
    """Cycle through shards in submission order."""

    name = "round-robin"
    needs_stats = False

    def __init__(self) -> None:
        self._next = 0

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """Next shard in the cycle."""
        index = self._next % len(stats)
        self._next = index + 1
        return index

    def reset(self) -> None:
        """Restart the cycle at shard 0."""
        self._next = 0


class LeastLoadedRouter(Router):
    """Fewest pending jobs (queued + in flight); ties to lowest index."""

    name = "least-loaded"

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """Shard with the minimum :attr:`ShardStats.load`."""
        return min(stats, key=lambda s: (s.load, s.index)).index


class DensityAwareRouter(Router):
    """Balance S's value mass: route to the shard with the least
    accumulated density ``sum(v_i)`` of jobs sent there so far.

    Density is the exact quantity scheduler S orders its admission on
    (:func:`repro.service.queue.sns_density`), so this router equalizes
    the *profit at stake* per shard rather than the job count --
    under skewed profit distributions a count-balancing router can pile
    most of the value onto one shard and shed it there.
    """

    name = "density-aware"
    needs_stats = False

    def __init__(self) -> None:
        self._mass: list[float] = []

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """Shard with the least routed density mass; ties to lowest index."""
        from repro.core.theory import Constants
        from repro.service.queue import sns_density

        if len(self._mass) != len(stats):
            self._mass = [0.0] * len(stats)
        index = min(
            range(len(stats)), key=lambda i: (self._mass[i], i)
        )
        self._mass[index] += sns_density(
            spec, stats[index].m, Constants.from_epsilon(1.0)
        )
        return index

    def reset(self) -> None:
        """Forget accumulated density mass."""
        self._mass = []


class ConsistentHashRouter(Router):
    """Hash ring over job ids with virtual nodes (stable md5 hashing).

    Placement is a pure function of ``(job_id, shard count)``: the same
    job lands on the same shard in every process and every run, and the
    router needs no load stats at all.  This is the router the
    determinism pin uses -- a k-shard cluster run equals k independent
    service runs over the partition this router induces.
    """

    name = "consistent-hash"
    needs_stats = False

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ClusterError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._ring: list[tuple[int, int]] = []
        self._ring_k = 0

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big"
        )

    def _build_ring(self, k: int) -> None:
        points = [
            (self._hash(f"shard-{index}#{replica}"), index)
            for index in range(k)
            for replica in range(self.replicas)
        ]
        points.sort()
        self._ring = points
        self._ring_k = k

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """First ring point clockwise from the hash of the job id."""
        if self._ring_k != len(stats):
            self._build_ring(len(stats))
        key = self._hash(f"job-{spec.job_id}")
        ring = self._ring
        lo, hi = 0, len(ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if ring[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return ring[lo % len(ring)][1]


class BandAwareRouter(Router):
    """Anchored band-condition routing (coordinator-fed).

    The cluster coordinator binds a
    :class:`~repro.cluster.coordinator.BandLedger` to this router.
    Every job gets a stable *anchor* shard from an internal
    :class:`ConsistentHashRouter`; the anchor wins unless the ledger
    says the anchor would **not** start the job (not delta-good there,
    or its band is full per the merged cluster-wide view) *and* some
    other shard would -- only then does the job divert, to the ledger's
    best admitting shard.  No ledger bound, or no shard admitting,
    falls back to the anchor.

    Anchoring matters: always chasing the globally-best band (or worse,
    the least-loaded shard) funnels similar-density jobs onto whichever
    shard currently looks best, collapsing the per-shard density
    diversity that hash partitioning preserves -- measured on the
    cluster bench it *loses* profit versus plain consistent hashing.
    Diverting only jobs their anchor would strand keeps the hash
    partition's diversity and spends the merged band view exactly where
    it helps.
    """

    name = "band-aware"
    needs_stats = True

    def __init__(self) -> None:
        self._anchor = ConsistentHashRouter()
        self._ledger = None

    def bind(self, ledger) -> None:
        """Attach the coordinator's band ledger (``None`` detaches)."""
        self._ledger = ledger

    def route(self, spec: JobSpec, stats: Sequence[ShardStats]) -> int:
        """The anchor shard, unless it strands the job and another
        shard admits it.

        A *stale* ledger (shard died or restarted since the last merged
        refresh, or the coordinator is partitioned from shard state) is
        worse than no ledger: its mirrors describe a topology that no
        longer exists, so diverts chase phantom band room.  Degraded
        routing mode anchors every job until the ledger is rebuilt.
        """
        anchor = self._anchor.route(spec, stats)
        ledger = self._ledger
        if (
            ledger is None
            or getattr(ledger, "stale", False)
            or ledger.admits(spec, anchor)
        ):
            return anchor
        choice = ledger.place(spec, stats)
        return anchor if choice is None else choice

    def reset(self) -> None:
        """Reset the anchor ring (new stream)."""
        self._anchor = ConsistentHashRouter()


#: Router registry by name, for CLI flags and benchmarks.
ROUTERS: dict[str, type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    DensityAwareRouter.name: DensityAwareRouter,
    ConsistentHashRouter.name: ConsistentHashRouter,
    BandAwareRouter.name: BandAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a router by registry name."""
    try:
        return ROUTERS[name]()
    except KeyError:
        raise ClusterError(
            f"unknown router {name!r}; known: {sorted(ROUTERS)}"
        ) from None
